"""White-box spatio-temporal event rules.

Each rule maps a zone/motion reading of the trajectory to event
intervals:

- **net_play** — the player stays in the net zone for a minimum duration.
- **rally** — sustained fast lateral movement in the back of the court
  with direction changes (chasing the ball side to side).
- **service** — a still stance in the baseline zone held for a minimum
  duration (the serve ritual).
- **baseline_play** — presence in the baseline zone that is neither a
  rally nor a service.

These are the rules the paper implements "as white- and blackbox
detectors within the FDE"; thresholds are exposed for the E5 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.events.quantize import CourtZones

__all__ = ["DetectedEvent", "RuleEventDetector"]


@dataclass(frozen=True)
class DetectedEvent:
    """An event interval recognised in a shot.

    Attributes:
        start: first frame of the event, shot-relative.
        stop: one past the last frame.
        label: event label.
        confidence: detector-specific confidence in ``(0, 1]``.
    """

    start: int
    stop: int
    label: str
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(f"invalid event interval [{self.start}, {self.stop})")
        if not 0 < self.confidence <= 1:
            raise ValueError(f"confidence must be in (0, 1], got {self.confidence}")

    @property
    def length(self) -> int:
        return self.stop - self.start


def _bridge_gaps(flags: np.ndarray, max_gap: int) -> np.ndarray:
    """Fill False gaps of at most *max_gap* frames between True runs."""
    out = flags.copy()
    n = len(flags)
    i = 0
    while i < n:
        if not out[i]:
            gap_start = i
            while i < n and not out[i]:
                i += 1
            gap_len = i - gap_start
            if 0 < gap_start and i < n and gap_len <= max_gap:
                out[gap_start:i] = True
        else:
            i += 1
    return out


def _runs(flags: np.ndarray, min_length: int) -> list[tuple[int, int]]:
    """Maximal runs of True in *flags* that last at least *min_length*."""
    runs: list[tuple[int, int]] = []
    start = None
    for i, flag in enumerate(flags):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            if i - start >= min_length:
                runs.append((start, i))
            start = None
    if start is not None and len(flags) - start >= min_length:
        runs.append((start, len(flags)))
    return runs


class RuleEventDetector:
    """Detect events in one shot's trajectory with spatio-temporal rules.

    Args:
        zones: court zoning for the shot.
        min_net_frames: minimum stay in the net zone to call net play.
        min_service_frames: minimum still stance to call a service.
        min_rally_frames: minimum span of sustained lateral movement.
        still_speed: lateral speed below which the player is "still".
        rally_speed: mean lateral speed above which movement is rally-like.
        smooth: half-width of the median filter applied to positions
            (suppresses single-frame tracker jitter).
    """

    def __init__(
        self,
        zones: CourtZones,
        min_net_frames: int = 8,
        min_service_frames: int = 6,
        min_rally_frames: int = 12,
        still_speed: float = 0.7,
        rally_speed: float = 1.2,
        smooth: int = 1,
    ):
        if min(min_net_frames, min_service_frames, min_rally_frames) < 1:
            raise ValueError("minimum durations must be >= 1 frame")
        self.zones = zones
        self.min_net_frames = min_net_frames
        self.min_service_frames = min_service_frames
        self.min_rally_frames = min_rally_frames
        self.still_speed = still_speed
        self.rally_speed = rally_speed
        self.smooth = smooth

    def _smooth(self, values: np.ndarray) -> np.ndarray:
        if self.smooth < 1 or len(values) < 3:
            return values
        k = self.smooth
        out = values.copy()
        for i in range(len(values)):
            lo = max(0, i - k)
            hi = min(len(values), i + k + 1)
            out[i] = np.median(values[lo:hi])
        return out

    def detect(self, trajectory: list[tuple[float, float] | None]) -> list[DetectedEvent]:
        """All events found in a shot trajectory.

        ``None`` entries (frames where the tracker lost the player) break
        runs, so events never span tracking gaps.
        """
        n = len(trajectory)
        if n == 0:
            return []
        valid = np.array([p is not None for p in trajectory])
        rows = np.array([p[0] if p is not None else np.nan for p in trajectory])
        cols = np.array([p[1] if p is not None else np.nan for p in trajectory])
        rows = self._smooth(rows)
        cols = self._smooth(cols)
        speeds = np.abs(np.diff(cols, prepend=cols[:1]))

        in_net = valid & (rows <= self.zones.net_zone_limit)
        in_baseline = valid & (rows >= self.zones.baseline_zone_limit)
        in_side_band = valid & (
            (cols <= self.zones.left_band_limit) | (cols >= self.zones.right_band_limit)
        )
        still = valid & (speeds < self.still_speed)

        events: list[DetectedEvent] = []

        for start, stop in _runs(in_net, self.min_net_frames):
            events.append(DetectedEvent(start, stop, "net_play"))

        # Service: still stance at the baseline corner (side band).
        service_spans = _runs(
            _bridge_gaps(in_baseline & in_side_band & still, max_gap=2),
            self.min_service_frames,
        )
        for start, stop in service_spans:
            events.append(DetectedEvent(start, stop, "service"))

        # Rally: sustained movement behind the net zone with at least one
        # direction change; mean speed over the window must be rally-like.
        # Brief slow-downs (the turnarounds themselves) are bridged so a
        # side-to-side run registers as one movement span.
        moving = valid & ~in_net & (speeds >= self.still_speed)
        moving = _bridge_gaps(moving, max_gap=4)
        for start, stop in _runs(moving, self.min_rally_frames):
            window_speed = float(np.nanmean(speeds[start:stop]))
            direction_changes = self._direction_changes(cols[start:stop])
            if window_speed >= self.rally_speed and direction_changes >= 1:
                events.append(DetectedEvent(start, stop, "rally"))

        # Baseline play: time in the baseline zone not already explained.
        explained = np.zeros(n, dtype=bool)
        for event in events:
            explained[event.start : event.stop] = True
        for start, stop in _runs(in_baseline & ~explained, self.min_rally_frames):
            events.append(DetectedEvent(start, stop, "baseline_play"))

        return sorted(events, key=lambda e: (e.start, e.label))

    @staticmethod
    def _direction_changes(cols: np.ndarray) -> int:
        """Number of lateral direction reversals in a column series."""
        deltas = np.diff(cols)
        signs = np.sign(deltas[np.abs(deltas) > 0.2])
        if len(signs) < 2:
            return 0
        return int(np.sum(signs[1:] != signs[:-1]))
