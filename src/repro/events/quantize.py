"""Trajectory quantisation: positions -> court zones -> symbols.

The event layer reasons about *where* the player is (net zone, midcourt,
baseline) and *how* the player moves laterally (still, slow, fast).  The
9-symbol product alphabet feeds the discrete HMMs; the zones feed the
white-box rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CourtZones", "TrajectoryQuantizer", "N_SYMBOLS", "ZONE_NAMES", "SIDE_NAMES", "MOTION_NAMES"]

ZONE_NAMES = ("net", "mid", "baseline")
SIDE_NAMES = ("left", "center", "right")
MOTION_NAMES = ("still", "slow", "fast")

#: Size of the observation alphabet: zone x lateral motion.
N_SYMBOLS = len(ZONE_NAMES) * len(MOTION_NAMES)


@dataclass(frozen=True)
class CourtZones:
    """Zoning of the near court half.

    Vertically, the near half runs from the net row down to the near
    baseline and splits into the net zone (the paper's "approaching the
    net" region), midcourt, and the baseline zone.  Laterally the court
    splits into left / center / right bands (service stances happen in
    the side bands).

    Attributes:
        net_row: top of the near half (the net).
        baseline_row: bottom of the near half (the near baseline).
        left_col: left edge of the court surface.
        right_col: right edge of the court surface.
        net_fraction: fraction of the half counted as the net zone.
        baseline_fraction: fraction counted as the baseline zone.
        side_fraction: fraction of the court width in each side band.
    """

    net_row: float
    baseline_row: float
    left_col: float
    right_col: float
    net_fraction: float = 0.35
    baseline_fraction: float = 0.30
    side_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.baseline_row <= self.net_row:
            raise ValueError("baseline_row must lie below net_row")
        if self.right_col <= self.left_col:
            raise ValueError("right_col must lie right of left_col")
        if not 0 < self.net_fraction < 1 or not 0 < self.baseline_fraction < 1:
            raise ValueError("zone fractions must be in (0, 1)")
        if self.net_fraction + self.baseline_fraction >= 1:
            raise ValueError("net and baseline zones must leave room for midcourt")
        if not 0 < self.side_fraction < 0.5:
            raise ValueError("side_fraction must be in (0, 0.5)")

    @classmethod
    def from_court_bounds(cls, bounds: tuple[int, int, int, int], **kwargs) -> "CourtZones":
        """Zones from a court bounding box, taking the near (lower) half.

        The net sits at the vertical midpoint of the full court box.
        """
        r0, c0, r1, c1 = bounds
        return cls(
            net_row=(r0 + r1) / 2.0,
            baseline_row=float(r1),
            left_col=float(c0),
            right_col=float(c1),
            **kwargs,
        )

    @property
    def depth(self) -> float:
        """Vertical extent of the near half in pixels."""
        return self.baseline_row - self.net_row

    @property
    def net_zone_limit(self) -> float:
        """Rows above this (closer to the net) are the net zone."""
        return self.net_row + self.net_fraction * self.depth

    @property
    def baseline_zone_limit(self) -> float:
        """Rows below this are the baseline zone."""
        return self.baseline_row - self.baseline_fraction * self.depth

    @property
    def width(self) -> float:
        """Lateral extent of the court in pixels."""
        return self.right_col - self.left_col

    @property
    def left_band_limit(self) -> float:
        """Columns left of this are the left band."""
        return self.left_col + self.side_fraction * self.width

    @property
    def right_band_limit(self) -> float:
        """Columns right of this are the right band."""
        return self.right_col - self.side_fraction * self.width

    def zone(self, row: float) -> int:
        """Zone index of a row: 0 = net, 1 = mid, 2 = baseline."""
        if row <= self.net_zone_limit:
            return 0
        if row >= self.baseline_zone_limit:
            return 2
        return 1

    def side(self, col: float) -> int:
        """Side index of a column: 0 = left, 1 = center, 2 = right."""
        if col <= self.left_band_limit:
            return 0
        if col >= self.right_band_limit:
            return 2
        return 1


class TrajectoryQuantizer:
    """Quantise a trajectory into the 9-symbol zone x motion alphabet.

    Args:
        zones: the court zoning.
        slow_speed: lateral speed (px/frame) separating still from slow.
        fast_speed: lateral speed separating slow from fast.
        smooth: half-width of a median filter applied to the positions
            before quantisation — suppresses tracker jitter, the same
            pre-processing the white-box rules apply.  0 disables.
    """

    def __init__(
        self,
        zones: CourtZones,
        slow_speed: float = 0.6,
        fast_speed: float = 1.8,
        smooth: int = 1,
    ):
        if not 0 < slow_speed < fast_speed:
            raise ValueError("need 0 < slow_speed < fast_speed")
        if smooth < 0:
            raise ValueError(f"smooth must be >= 0, got {smooth}")
        self.zones = zones
        self.slow_speed = slow_speed
        self.fast_speed = fast_speed
        self.smooth = smooth

    def _smooth(self, values: np.ndarray) -> np.ndarray:
        if self.smooth < 1 or len(values) < 3:
            return values
        k = self.smooth
        out = values.copy()
        for i in range(len(values)):
            lo = max(0, i - k)
            hi = min(len(values), i + k + 1)
            out[i] = np.median(values[lo:hi])
        return out

    def motion_class(self, lateral_speed: float) -> int:
        """Motion index: 0 = still, 1 = slow, 2 = fast."""
        speed = abs(lateral_speed)
        if speed < self.slow_speed:
            return 0
        if speed < self.fast_speed:
            return 1
        return 2

    def symbols(self, trajectory: list[tuple[float, float]]) -> np.ndarray:
        """Symbol sequence for a trajectory of ``(row, col)`` positions.

        The lateral speed at frame ``t`` is ``|col[t] - col[t-1]|``
        (0 for the first frame).  Symbol = ``zone * 3 + motion``.
        """
        if not trajectory:
            return np.zeros(0, dtype=np.int64)
        rows = self._smooth(np.array([p[0] for p in trajectory], dtype=np.float64))
        cols = self._smooth(np.array([p[1] for p in trajectory], dtype=np.float64))
        speeds = np.abs(np.diff(cols, prepend=cols[0]))
        out = np.empty(len(trajectory), dtype=np.int64)
        for t in range(len(trajectory)):
            out[t] = self.zones.zone(float(rows[t])) * len(MOTION_NAMES) + self.motion_class(
                float(speeds[t])
            )
        return out
