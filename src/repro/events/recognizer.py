"""Shot-level event recognisers: rules vs HMM.

A tennis shot realises a dominant event (rally, net play, service,
baseline play).  The rule recogniser derives the label from rule-detected
intervals; the HMM recogniser trains one model per label and classifies a
shot by maximum likelihood of its symbol sequence — the integration the
companion paper [Petković & Jonker 2001] demonstrates.
"""

from __future__ import annotations

import numpy as np

from repro.events.hmm import DiscreteHMM
from repro.events.quantize import N_SYMBOLS, TrajectoryQuantizer
from repro.events.rules import DetectedEvent, RuleEventDetector

__all__ = [
    "EVENT_LABELS",
    "RuleBasedRecognizer",
    "HmmRecognizer",
    "CombinedRecognizer",
    "train_hmm_recognizer",
]

#: The shot-level event labels (aligned with the generator's scripts:
#: rally, net_approach -> net_play, service, baseline_play).
EVENT_LABELS = ("rally", "net_play", "service", "baseline_play")


class RuleBasedRecognizer:
    """Label a shot from its rule-detected event intervals.

    The label is the event whose detected intervals cover the most
    frames, with net play given precedence on ties (approaching the net
    is the marked, short-lived event the queries care about).
    """

    def __init__(self, detector: RuleEventDetector):
        self.detector = detector

    def intervals(self, trajectory: list[tuple[float, float] | None]) -> list[DetectedEvent]:
        """The raw rule-detected intervals for a trajectory."""
        return self.detector.detect(trajectory)

    def classify(self, trajectory: list[tuple[float, float] | None]) -> str | None:
        """Dominant event label of the shot, or ``None`` when nothing fires."""
        events = self.detector.detect(trajectory)
        if not events:
            return None
        coverage: dict[str, int] = {}
        for event in events:
            coverage[event.label] = coverage.get(event.label, 0) + event.length
        if "net_play" in coverage:
            return "net_play"
        return max(coverage, key=lambda label: coverage[label])


class HmmRecognizer:
    """Maximum-likelihood shot classification with per-label HMMs."""

    def __init__(self, quantizer: TrajectoryQuantizer, models: dict[str, DiscreteHMM]):
        if not models:
            raise ValueError("need at least one event model")
        self.quantizer = quantizer
        self.models = models

    def log_likelihoods(self, trajectory: list[tuple[float, float]]) -> dict[str, float]:
        """Per-label log-likelihood of the trajectory's symbol sequence."""
        cleaned = [p for p in trajectory if p is not None]
        if not cleaned:
            return {label: float("-inf") for label in self.models}
        symbols = self.quantizer.symbols(cleaned)
        return {
            label: model.log_likelihood(symbols) for label, model in self.models.items()
        }

    def classify(self, trajectory: list[tuple[float, float]]) -> str | None:
        """The label whose HMM gives the trajectory the highest likelihood."""
        scores = self.log_likelihoods(trajectory)
        if all(score == float("-inf") for score in scores.values()):
            return None
        return max(scores, key=lambda label: scores[label])


class CombinedRecognizer:
    """Integrated spatio-temporal + stochastic recognition.

    The companion paper's title is the contract: *integrating
    spatio-temporal and stochastic recognition of events*.  The
    combination uses the HMM's decision when it is confident (its
    best-vs-second-best log-likelihood margin is large) and falls back
    to the deterministic rules otherwise — rules are exact on clean
    trajectories, HMMs are robust on noisy ones.

    Args:
        rules: the rule-based shot recogniser.
        hmm: the trained HMM recogniser.
        margin: log-likelihood margin above which the HMM decides alone.
    """

    def __init__(
        self,
        rules: RuleBasedRecognizer,
        hmm: HmmRecognizer,
        margin: float = 20.0,
    ):
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        self.rules = rules
        self.hmm = hmm
        self.margin = margin

    def classify(self, trajectory: list[tuple[float, float] | None]) -> str | None:
        """Combined shot-level label."""
        scores = self.hmm.log_likelihoods(trajectory)
        finite = sorted(
            (s for s in scores.values() if s != float("-inf")), reverse=True
        )
        hmm_label = (
            max(scores, key=lambda label: scores[label]) if finite else None
        )
        hmm_margin = finite[0] - finite[1] if len(finite) >= 2 else 0.0
        rule_label = self.rules.classify(trajectory)

        if rule_label is None:
            return hmm_label
        if hmm_label is None:
            return rule_label
        if rule_label == hmm_label:
            return rule_label
        return hmm_label if hmm_margin >= self.margin else rule_label


def train_hmm_recognizer(
    quantizer: TrajectoryQuantizer,
    training: dict[str, list[list[tuple[float, float]]]],
    n_states: int = 3,
    n_iterations: int = 25,
    seed: int = 0,
    noise_augment: tuple[float, ...] = (0.0, 1.0, 2.0),
) -> HmmRecognizer:
    """Train one HMM per event label from labelled trajectories.

    Args:
        quantizer: trajectory quantiser shared by training and inference.
        training: label -> list of trajectories realising that event.
        n_states: hidden states per model.
        n_iterations: Baum-Welch iterations.
        seed: model initialisation seed.
        noise_augment: observation-noise sigmas used to augment the
            training set — the stochastic recogniser learns from
            realistic (noisy) tracker output, which is what makes it
            degrade gracefully where hard-threshold rules break.
            ``(0.0,)`` trains on the raw trajectories only.

    Returns:
        A ready :class:`HmmRecognizer`.
    """
    if not training:
        raise ValueError("training set is empty")
    if not noise_augment:
        raise ValueError("noise_augment needs at least one sigma (use (0.0,))")
    rng = np.random.default_rng(seed)
    models: dict[str, DiscreteHMM] = {}
    for index, (label, trajectories) in enumerate(sorted(training.items())):
        if not trajectories:
            raise ValueError(f"no training trajectories for label {label!r}")
        sequences = []
        for trajectory in trajectories:
            for sigma in noise_augment:
                if sigma == 0.0:
                    noisy = trajectory
                else:
                    noisy = [
                        (p[0] + rng.normal(0, sigma), p[1] + rng.normal(0, sigma))
                        for p in trajectory
                    ]
                sequences.append(quantizer.symbols(noisy))
        model = DiscreteHMM(
            n_states=n_states,
            n_symbols=N_SYMBOLS,
            rng=np.random.default_rng(seed + index),
        )
        model.fit(sequences, n_iterations=n_iterations)
        models[label] = model
    return HmmRecognizer(quantizer, models)
