"""Discrete hidden Markov models.

The stochastic event recogniser of Petković & Jonker (2001) models each
event class with an HMM over quantised trajectory symbols and classifies
by maximum likelihood.  This is a complete discrete-HMM implementation:
scaled forward/backward, Viterbi decoding, and Baum–Welch training over
multiple observation sequences.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DiscreteHMM"]


class DiscreteHMM:
    """A discrete-observation HMM.

    Args:
        n_states: number of hidden states.
        n_symbols: observation alphabet size.
        rng: randomness source for initialisation (training is
            deterministic given the rng state).

    Attributes:
        start: initial state distribution, shape ``(n_states,)``.
        transition: row-stochastic transition matrix ``(n_states, n_states)``.
        emission: row-stochastic emission matrix ``(n_states, n_symbols)``.
    """

    #: Probability floor applied after each Baum-Welch update so no
    #: transition/emission collapses to exactly zero (keeps unseen symbols
    #: scoreable with finite log-likelihood).
    _FLOOR = 1e-6

    def __init__(
        self,
        n_states: int,
        n_symbols: int,
        rng: np.random.Generator | None = None,
    ):
        if n_states < 1 or n_symbols < 1:
            raise ValueError("n_states and n_symbols must be >= 1")
        self.n_states = n_states
        self.n_symbols = n_symbols
        rng = rng or np.random.default_rng(0)
        self.start = self._normalise(rng.random(n_states) + 0.5)
        self.transition = self._normalise(rng.random((n_states, n_states)) + 0.5)
        self.emission = self._normalise(rng.random((n_states, n_symbols)) + 0.5)

    @staticmethod
    def _normalise(arr: np.ndarray) -> np.ndarray:
        arr = np.asarray(arr, dtype=np.float64)
        if arr.ndim == 1:
            return arr / arr.sum()
        return arr / arr.sum(axis=1, keepdims=True)

    def _check_sequence(self, sequence: np.ndarray) -> np.ndarray:
        seq = np.asarray(sequence, dtype=np.int64)
        if seq.ndim != 1 or len(seq) == 0:
            raise ValueError("observation sequence must be a non-empty 1-D array")
        if seq.min() < 0 or seq.max() >= self.n_symbols:
            raise ValueError(
                f"symbols must be in 0..{self.n_symbols - 1}, got range "
                f"[{seq.min()}, {seq.max()}]"
            )
        return seq

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #

    def _forward(self, seq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Scaled forward pass: returns (alpha, scales)."""
        t_len = len(seq)
        alpha = np.zeros((t_len, self.n_states))
        scales = np.zeros(t_len)
        alpha[0] = self.start * self.emission[:, seq[0]]
        scales[0] = alpha[0].sum() or np.finfo(float).tiny
        alpha[0] /= scales[0]
        for t in range(1, t_len):
            alpha[t] = (alpha[t - 1] @ self.transition) * self.emission[:, seq[t]]
            scales[t] = alpha[t].sum() or np.finfo(float).tiny
            alpha[t] /= scales[t]
        return alpha, scales

    def _backward(self, seq: np.ndarray, scales: np.ndarray) -> np.ndarray:
        """Scaled backward pass using the forward scales."""
        t_len = len(seq)
        beta = np.zeros((t_len, self.n_states))
        beta[-1] = 1.0
        for t in range(t_len - 2, -1, -1):
            beta[t] = self.transition @ (self.emission[:, seq[t + 1]] * beta[t + 1])
            beta[t] /= scales[t + 1]
        return beta

    def log_likelihood(self, sequence: np.ndarray) -> float:
        """Log P(sequence | model)."""
        seq = self._check_sequence(sequence)
        _alpha, scales = self._forward(seq)
        return float(np.log(scales).sum())

    def viterbi(self, sequence: np.ndarray) -> np.ndarray:
        """Most probable hidden state path (log-space Viterbi)."""
        seq = self._check_sequence(sequence)
        with np.errstate(divide="ignore"):
            log_start = np.log(self.start)
            log_trans = np.log(self.transition)
            log_emit = np.log(self.emission)
        t_len = len(seq)
        delta = np.zeros((t_len, self.n_states))
        psi = np.zeros((t_len, self.n_states), dtype=np.int64)
        delta[0] = log_start + log_emit[:, seq[0]]
        for t in range(1, t_len):
            candidates = delta[t - 1][:, None] + log_trans
            psi[t] = candidates.argmax(axis=0)
            delta[t] = candidates.max(axis=0) + log_emit[:, seq[t]]
        path = np.zeros(t_len, dtype=np.int64)
        path[-1] = int(delta[-1].argmax())
        for t in range(t_len - 2, -1, -1):
            path[t] = psi[t + 1][path[t + 1]]
        return path

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def fit(
        self,
        sequences: list[np.ndarray],
        n_iterations: int = 30,
        tolerance: float = 1e-4,
    ) -> list[float]:
        """Baum–Welch over multiple sequences.

        Args:
            sequences: training observation sequences.
            n_iterations: maximum EM iterations.
            tolerance: stop when total log-likelihood improves less than
                this between iterations.

        Returns:
            Total log-likelihood after each iteration (non-decreasing up
            to numerical error — a property the tests assert).
        """
        if not sequences:
            raise ValueError("need at least one training sequence")
        checked = [self._check_sequence(s) for s in sequences]
        history: list[float] = []
        for _ in range(n_iterations):
            total_ll = 0.0
            start_acc = np.zeros(self.n_states)
            trans_acc = np.zeros((self.n_states, self.n_states))
            emit_acc = np.zeros((self.n_states, self.n_symbols))
            state_acc = np.zeros(self.n_states)

            for seq in checked:
                alpha, scales = self._forward(seq)
                beta = self._backward(seq, scales)
                total_ll += float(np.log(scales).sum())

                gamma = alpha * beta
                gamma /= gamma.sum(axis=1, keepdims=True)
                start_acc += gamma[0]
                for t in range(len(seq) - 1):
                    xi = (
                        alpha[t][:, None]
                        * self.transition
                        * self.emission[:, seq[t + 1]][None, :]
                        * beta[t + 1][None, :]
                    )
                    total = xi.sum()
                    if total > 0:
                        trans_acc += xi / total
                for t, symbol in enumerate(seq):
                    emit_acc[:, symbol] += gamma[t]
                state_acc += gamma.sum(axis=0)

            self.start = self._normalise(start_acc + self._FLOOR)
            self.transition = self._normalise(trans_acc + self._FLOOR)
            self.emission = self._normalise(emit_acc + self._FLOOR)

            history.append(total_ll)
            if len(history) >= 2 and abs(history[-1] - history[-2]) < tolerance:
                break
        return history
