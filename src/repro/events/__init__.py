"""Event recognition from player trajectories.

"Player's positions and their transitions over time are related to
particular events (net-playing, rally, etc.) using rules.  These rules,
which use spatio-temporal relations, are implemented as white- and
blackbox detectors within the FDE."

The companion work (Petković & Jonker, *Content-based video retrieval by
integrating spatio-temporal and stochastic recognition of events*, 2001)
adds a stochastic recogniser; we implement both:

- :mod:`repro.events.quantize` — trajectories to court zones and
  observation symbols.
- :mod:`repro.events.rules` — white-box spatio-temporal rule detectors
  (net play, rally, service, baseline play).
- :mod:`repro.events.hmm` — discrete hidden Markov models
  (forward/backward, Viterbi, Baum–Welch).
- :mod:`repro.events.recognizer` — shot-level recognisers: rule-based,
  HMM maximum-likelihood, and a combined voter.
"""

from repro.events.quantize import CourtZones, TrajectoryQuantizer, N_SYMBOLS
from repro.events.rules import DetectedEvent, RuleEventDetector
from repro.events.hmm import DiscreteHMM
from repro.events.recognizer import (
    EVENT_LABELS,
    RuleBasedRecognizer,
    HmmRecognizer,
    CombinedRecognizer,
    train_hmm_recognizer,
)

__all__ = [
    "CourtZones",
    "TrajectoryQuantizer",
    "N_SYMBOLS",
    "DetectedEvent",
    "RuleEventDetector",
    "DiscreteHMM",
    "EVENT_LABELS",
    "RuleBasedRecognizer",
    "HmmRecognizer",
    "CombinedRecognizer",
    "train_hmm_recognizer",
]
