"""Player segmentation and tracking — the paper's *tennis detector*.

The paper: "Using estimated statistics of the tennis field color, the
algorithm does the initial quadratic segmentation of the first image of a
video sequence classified as a playing shot.  In the next frames, we
predict the player position and search for a similar region in the
neighborhood of the initially detected player."

- :mod:`repro.tracking.court_model` — estimation of the court colour
  statistics from the shot itself.
- :mod:`repro.tracking.segmentation` — "not court" segmentation and the
  initial player detection in the near court half.
- :mod:`repro.tracking.predictor` — position predictors (static,
  constant-velocity, Kalman).
- :mod:`repro.tracking.tracker` — the predict-and-search region tracker.
- :mod:`repro.tracking.shape` — per-frame shape features of the player
  blob (mass centre, area, bounding box, orientation, eccentricity,
  dominant colour).
"""

from repro.tracking.court_model import CourtColorModel
from repro.tracking.segmentation import (
    not_court_mask,
    clean_mask,
    initial_player_region,
)
from repro.tracking.predictor import (
    StaticPredictor,
    ConstantVelocityPredictor,
    KalmanPredictor,
)
from repro.tracking.tracker import PlayerTracker, Track, TrackPoint
from repro.tracking.shape import PlayerObservation, observe_player

__all__ = [
    "CourtColorModel",
    "not_court_mask",
    "clean_mask",
    "initial_player_region",
    "StaticPredictor",
    "ConstantVelocityPredictor",
    "KalmanPredictor",
    "PlayerTracker",
    "Track",
    "TrackPoint",
    "PlayerObservation",
    "observe_player",
]
