"""Position predictors for the predict-and-search tracker.

"In the next frames, we predict the player position and search for a
similar region in the neighborhood" — the quality of that prediction
determines how small the search window can be.  Three predictors of
increasing sophistication support the E4 ablation:

- :class:`StaticPredictor` — tomorrow is like today.
- :class:`ConstantVelocityPredictor` — linear extrapolation of the last step.
- :class:`KalmanPredictor` — constant-velocity Kalman filter, which
  smooths measurement noise instead of amplifying it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StaticPredictor", "ConstantVelocityPredictor", "KalmanPredictor"]


class StaticPredictor:
    """Predicts the player stays where it was last seen."""

    def __init__(self) -> None:
        self._last: tuple[float, float] | None = None

    def update(self, position: tuple[float, float]) -> None:
        """Record an observed position."""
        self._last = position

    def predict(self) -> tuple[float, float] | None:
        """Predicted position for the next frame (None before any update)."""
        return self._last


class ConstantVelocityPredictor:
    """Linear extrapolation from the last two observed positions."""

    def __init__(self) -> None:
        self._last: tuple[float, float] | None = None
        self._velocity = (0.0, 0.0)

    def update(self, position: tuple[float, float]) -> None:
        if self._last is not None:
            self._velocity = (
                position[0] - self._last[0],
                position[1] - self._last[1],
            )
        self._last = position

    def predict(self) -> tuple[float, float] | None:
        if self._last is None:
            return None
        return (
            self._last[0] + self._velocity[0],
            self._last[1] + self._velocity[1],
        )


class KalmanPredictor:
    """Constant-velocity Kalman filter over (row, col, v_row, v_col).

    Args:
        process_noise: acceleration noise std (pixels/frame^2); larger
            values let the filter follow direction changes faster.
        measurement_noise: centroid measurement noise std (pixels).
    """

    def __init__(self, process_noise: float = 1.0, measurement_noise: float = 1.5):
        if process_noise <= 0 or measurement_noise <= 0:
            raise ValueError("noise parameters must be positive")
        self._state: np.ndarray | None = None  # (row, col, v_row, v_col)
        self._cov = np.eye(4) * 10.0
        # State transition: position advances by velocity each frame.
        self._f = np.array(
            [
                [1.0, 0.0, 1.0, 0.0],
                [0.0, 1.0, 0.0, 1.0],
                [0.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        self._h = np.array(
            [
                [1.0, 0.0, 0.0, 0.0],
                [0.0, 1.0, 0.0, 0.0],
            ]
        )
        q = process_noise**2
        # Discrete white-acceleration model (simplified block form).
        self._q = np.diag([q / 4.0, q / 4.0, q, q])
        self._r = np.eye(2) * measurement_noise**2

    def update(self, position: tuple[float, float]) -> None:
        """Fuse an observed centroid into the filter."""
        z = np.asarray(position, dtype=np.float64)
        if self._state is None:
            self._state = np.array([z[0], z[1], 0.0, 0.0])
            return
        # Predict step.
        state = self._f @ self._state
        cov = self._f @ self._cov @ self._f.T + self._q
        # Update step.
        innovation = z - self._h @ state
        s = self._h @ cov @ self._h.T + self._r
        gain = cov @ self._h.T @ np.linalg.inv(s)
        self._state = state + gain @ innovation
        self._cov = (np.eye(4) - gain @ self._h) @ cov

    def predict(self) -> tuple[float, float] | None:
        """One-step-ahead position prediction."""
        if self._state is None:
            return None
        ahead = self._f @ self._state
        return float(ahead[0]), float(ahead[1])

    @property
    def velocity(self) -> tuple[float, float]:
        """Current velocity estimate (pixels/frame)."""
        if self._state is None:
            return 0.0, 0.0
        return float(self._state[2]), float(self._state[3])
