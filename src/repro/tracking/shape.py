"""Per-frame player observations: shape features + dominant colour.

"Besides the player's position, we extract the dominant color, and
standard shape features such as the mass center, the area, the bounding
box, the orientation, and the eccentricity."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vision.moments import ShapeFeatures, shape_features
from repro.vision.regions import Region

__all__ = ["PlayerObservation", "observe_player"]


@dataclass(frozen=True)
class PlayerObservation:
    """Everything extracted about the player in one frame.

    Attributes:
        position: blob centroid ``(row, col)`` — the tracked position.
        shape: central-moment shape features of the blob.
        dominant_color: mean RGB of the blob pixels (the player's kit
            colour; the paper stores it as a per-player feature).
    """

    position: tuple[float, float]
    shape: ShapeFeatures
    dominant_color: tuple[float, float, float]


def observe_player(
    frame: np.ndarray, mask: np.ndarray, region: Region
) -> PlayerObservation:
    """Build a :class:`PlayerObservation` for a segmented player *region*.

    Args:
        frame: the RGB frame.
        mask: the cleaned not-court mask the region was found in.
        region: the player blob (frame coordinates).
    """
    r0, c0, r1, c1 = region.bbox
    local_mask = np.zeros_like(mask)
    local_mask[r0:r1, c0:c1] = mask[r0:r1, c0:c1]
    shape = shape_features(local_mask)
    if shape is None:
        raise ValueError("player region produced an empty mask")
    pixels = frame[local_mask]
    color = pixels.mean(axis=0) if len(pixels) else np.zeros(3)
    return PlayerObservation(
        position=shape.centroid,
        shape=shape,
        dominant_color=(float(color[0]), float(color[1]), float(color[2])),
    )
