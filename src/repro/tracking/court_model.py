"""Court colour statistics.

"Using estimated statistics of the tennis field color" — the tracker does
not assume a known court colour; it estimates mean and spread of the
court surface from a frame of the playing shot itself, which makes it
robust to camera gain differences between shots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vision.color import ensure_rgb

__all__ = ["CourtColorModel"]


@dataclass(frozen=True)
class CourtColorModel:
    """Gaussian-ish model of the court surface colour.

    Attributes:
        mean: RGB mean of court pixels.
        std: per-channel standard deviation of court pixels (floored so a
            perfectly flat surface still yields a usable threshold).
    """

    mean: np.ndarray
    std: np.ndarray

    _STD_FLOOR = 4.0

    @classmethod
    def estimate(
        cls,
        frame: np.ndarray,
        tolerance: float = 45.0,
        seed_box: tuple[float, float, float, float] = (0.55, 0.30, 0.90, 0.70),
    ) -> "CourtColorModel":
        """Estimate the model from one frame of a court shot.

        The seed colour is the per-channel median of the *seed_box* patch
        (fractions ``(row_from, col_from, row_to, col_to)`` of the frame).
        In a broadcast court shot the lower-central area is almost pure
        playing surface — the same domain knowledge the paper's tennis
        detector applies.  Statistics are then computed over all frame
        pixels within *tolerance* of the seed, capturing the true noise
        spread of the surface.
        """
        rgb = ensure_rgb(frame).astype(np.float64)
        h, w, _ = rgb.shape
        r0, c0 = int(seed_box[0] * h), int(seed_box[1] * w)
        r1, c1 = max(r0 + 1, int(seed_box[2] * h)), max(c0 + 1, int(seed_box[3] * w))
        patch = rgb[r0:r1, c0:c1].reshape(-1, 3)
        seed = np.median(patch, axis=0)
        dist = np.sqrt(((rgb - seed.reshape(1, 1, 3)) ** 2).sum(axis=-1))
        member = dist <= tolerance
        if not member.any():
            # Degenerate frame; fall back to the seed with floor spread.
            return cls(mean=seed, std=np.full(3, cls._STD_FLOOR))
        pixels = rgb[member]
        std = np.maximum(pixels.std(axis=0), cls._STD_FLOOR)
        return cls(mean=pixels.mean(axis=0), std=std)

    def distance(self, frame: np.ndarray) -> np.ndarray:
        """Per-pixel normalised distance from the court colour.

        Each channel difference is scaled by that channel's std, so the
        result is a Mahalanobis-style distance (diagonal covariance).
        The squared distance is expanded per channel — the same
        left-to-right sum as a reduction over the 3-wide channel axis,
        which NumPy evaluates far slower; this runs per tracked frame,
        so it is on the tennis detector's hot path.
        """
        rgb = ensure_rgb(frame).astype(np.float64)
        s0 = (rgb[..., 0] - self.mean[0]) / self.std[0]
        s1 = (rgb[..., 1] - self.mean[1]) / self.std[1]
        s2 = (rgb[..., 2] - self.mean[2]) / self.std[2]
        return np.sqrt(s0 * s0 + s1 * s1 + s2 * s2)

    def is_court(self, frame: np.ndarray, k: float = 4.0) -> np.ndarray:
        """Boolean mask of pixels within *k* scaled stds of the court colour."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        return self.distance(frame) <= k
