"""Player segmentation from court colour statistics.

The "initial quadratic segmentation": the near half of the court (the
quadrant the broadcast tracks) is segmented into court / not-court using
the estimated colour statistics; thin structures (court lines, the net
band) are removed by a morphological opening, and the largest remaining
blob is the player.
"""

from __future__ import annotations

import numpy as np

from repro.tracking.court_model import CourtColorModel
from repro.vision.morphology import closing, opening
from repro.vision.regions import Region, regions_in

__all__ = [
    "not_court_mask",
    "clean_mask",
    "court_bounds",
    "restrict_to_bounds",
    "initial_player_region",
    "SearchWindow",
]


def court_bounds(
    frame: np.ndarray, model: CourtColorModel, k: float = 4.0, inset: int = 2
) -> tuple[int, int, int, int] | None:
    """Bounding box of the court surface in the frame.

    The largest court-coloured region is the playing surface; its bounding
    box (shrunk by *inset* pixels to drop the boundary lines) bounds every
    player search.  Returns ``(row_min, col_min, row_max, col_max)`` or
    ``None`` when no court region exists.
    """
    court = model.is_court(frame, k=k)
    # Court lines and the net band carve the surface into panels; a
    # closing bridges those thin gaps so the surface is one region.
    court = closing(court, size=5)
    regions = regions_in(court, min_area=64)
    if not regions:
        return None
    surface = max(regions, key=lambda r: r.area)
    r0, c0, r1, c1 = surface.bbox
    r0, c0 = r0 + inset, c0 + inset
    r1, c1 = r1 - inset, c1 - inset
    if r0 >= r1 or c0 >= c1:
        return None
    return r0, c0, r1, c1


def not_court_mask(
    frame: np.ndarray, model: CourtColorModel, k: float = 4.0
) -> np.ndarray:
    """Boolean mask of pixels that are NOT court-coloured."""
    return ~model.is_court(frame, k=k)


def clean_mask(mask: np.ndarray, open_size: int = 3) -> np.ndarray:
    """Remove thin line/net structures from a not-court mask."""
    return opening(mask, size=open_size)


class SearchWindow:
    """An axis-aligned search window, clipped to the frame.

    Args:
        centre: ``(row, col)`` centre of the window.
        half_size: half the window side length in pixels.
        shape: frame shape ``(H, W)`` used for clipping.
    """

    def __init__(self, centre: tuple[float, float], half_size: int, shape: tuple[int, int]):
        if half_size < 1:
            raise ValueError(f"half_size must be >= 1, got {half_size}")
        h, w = shape
        row, col = centre
        self.row_min = max(0, int(row - half_size))
        self.row_max = min(h, int(row + half_size) + 1)
        self.col_min = max(0, int(col - half_size))
        self.col_max = min(w, int(col + half_size) + 1)

    @property
    def empty(self) -> bool:
        return self.row_min >= self.row_max or self.col_min >= self.col_max

    def crop(self, array: np.ndarray) -> np.ndarray:
        """Slice *array* (2-D or 3-D) to the window."""
        return array[self.row_min : self.row_max, self.col_min : self.col_max]

    def to_frame(self, region: Region) -> Region:
        """Translate a region found in window coordinates back to the frame."""
        r0, c0, r1, c1 = region.bbox
        return Region(
            label=region.label,
            area=region.area,
            bbox=(r0 + self.row_min, c0 + self.col_min, r1 + self.row_min, c1 + self.col_min),
            centroid=(
                region.centroid[0] + self.row_min,
                region.centroid[1] + self.col_min,
            ),
        )


def restrict_to_bounds(mask: np.ndarray, bounds: tuple[int, int, int, int]) -> np.ndarray:
    """Zero a mask outside ``(row_min, col_min, row_max, col_max)``."""
    r0, c0, r1, c1 = bounds
    restricted = np.zeros_like(mask)
    restricted[r0:r1, c0:c1] = mask[r0:r1, c0:c1]
    return restricted


def initial_player_region(
    frame: np.ndarray,
    model: CourtColorModel,
    bounds: tuple[int, int, int, int],
    k: float = 4.0,
    min_area: int = 12,
    open_size: int = 3,
) -> Region | None:
    """Find the player blob inside *bounds* (the near court half).

    Args:
        frame: first frame of the playing shot.
        model: estimated court colour statistics.
        bounds: ``(row_min, col_min, row_max, col_max)`` search area —
            the near half of the court surface.
        k: court-colour threshold in scaled stds.
        min_area: smallest blob accepted as a player (rejects residue the
            opening missed).
        open_size: structuring element of the cleaning opening.

    Returns:
        The largest qualifying region in frame coordinates, or ``None``.
    """
    r0, c0, r1, c1 = bounds
    h, w = frame.shape[:2]
    if not (0 <= r0 < r1 <= h and 0 <= c0 < c1 <= w):
        raise ValueError(f"invalid bounds {bounds} for frame {h}x{w}")
    mask = clean_mask(not_court_mask(frame, model, k=k), open_size=open_size)
    banded = restrict_to_bounds(mask, bounds)
    regions = regions_in(banded, min_area=min_area)
    if not regions:
        return None
    return max(regions, key=lambda r: r.area)
