"""The predict-and-search player tracker.

For a shot classified as tennis, the tracker:

1. estimates court colour statistics from the first frame,
2. finds the player by initial segmentation of the near court half,
3. for each following frame predicts the player position and searches a
   window around the prediction for the most similar not-court region,
4. re-acquires by full near-half segmentation when the track is lost.

The output :class:`Track` carries a :class:`TrackPoint` per frame with
the blob position and the full shape observation (or a miss marker).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tracking.court_model import CourtColorModel
from repro.tracking.predictor import KalmanPredictor
from repro.tracking.segmentation import (
    SearchWindow,
    clean_mask,
    court_bounds,
    initial_player_region,
    not_court_mask,
    restrict_to_bounds,
)
from repro.tracking.shape import PlayerObservation, observe_player
from repro.vision.regions import Region, regions_in

__all__ = ["PlayerTracker", "Track", "TrackPoint"]


@dataclass(frozen=True)
class TrackPoint:
    """Tracker output for one frame.

    Attributes:
        frame: frame index within the shot.
        found: whether the player was located this frame.
        observation: the player observation (``None`` when not found).
    """

    frame: int
    found: bool
    observation: PlayerObservation | None = None

    @property
    def position(self) -> tuple[float, float] | None:
        return self.observation.position if self.observation else None


@dataclass
class Track:
    """A complete track through one shot."""

    points: list[TrackPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def positions(self) -> list[tuple[float, float] | None]:
        """Per-frame positions (None where the player was lost)."""
        return [p.position for p in self.points]

    @property
    def found_fraction(self) -> float:
        """Fraction of frames where the player was located."""
        if not self.points:
            return 0.0
        return sum(p.found for p in self.points) / len(self.points)

    def mean_error(self, truth: list[tuple[float, float]]) -> float:
        """Mean Euclidean error against a ground-truth trajectory.

        Frames where the player was not found are excluded from the mean;
        combine with ``found_fraction`` for the full picture.
        """
        if len(truth) != len(self.points):
            raise ValueError(
                f"truth has {len(truth)} frames, track has {len(self.points)}"
            )
        errors = [
            float(np.hypot(p.position[0] - t[0], p.position[1] - t[1]))
            for p, t in zip(self.points, truth)
            if p.position is not None
        ]
        return float(np.mean(errors)) if errors else float("inf")


class PlayerTracker:
    """Track the near player through a tennis shot.

    Args:
        search_half_size: half-size (pixels) of the window searched around
            the predicted position.
        predictor_factory: zero-argument callable building a fresh
            predictor per shot (defaults to a Kalman filter).
        court_k: court-colour threshold in scaled stds.
        min_area: smallest blob accepted as the player.
        open_size: morphological opening element size.
    """

    def __init__(
        self,
        search_half_size: int = 14,
        predictor_factory=KalmanPredictor,
        court_k: float = 4.0,
        min_area: int = 12,
        open_size: int = 3,
        max_color_std: float = 15.0,
        half: str = "near",
    ):
        if search_half_size < 2:
            raise ValueError(f"search_half_size must be >= 2, got {search_half_size}")
        if max_color_std <= 0:
            raise ValueError(f"max_color_std must be positive, got {max_color_std}")
        if half not in ("near", "far"):
            raise ValueError(f"half must be 'near' or 'far', got {half!r}")
        self.search_half_size = search_half_size
        self.predictor_factory = predictor_factory
        self.court_k = court_k
        self.min_area = min_area
        self.open_size = open_size
        self.max_color_std = max_color_std
        self.half = half

    @staticmethod
    def _near_half(bounds: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
        """The lower (near) half of the court bounding box."""
        r0, c0, r1, c1 = bounds
        return (r0 + r1) // 2, c0, r1, c1

    @staticmethod
    def _far_half(bounds: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
        """The upper (far) half of the court bounding box."""
        r0, c0, r1, c1 = bounds
        return r0, c0, (r0 + r1) // 2, c1

    def _search_half(self, bounds: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
        return self._far_half(bounds) if self.half == "far" else self._near_half(bounds)

    def _acquire(
        self,
        frame: np.ndarray,
        model: CourtColorModel,
        bounds: tuple[int, int, int, int],
    ) -> Region | None:
        """Full near-half segmentation (initial detection / re-acquisition)."""
        return initial_player_region(
            frame,
            model,
            bounds=self._search_half(bounds),
            k=self.court_k,
            min_area=self.min_area,
            open_size=self.open_size,
        )

    def _search(
        self,
        frame: np.ndarray,
        model: CourtColorModel,
        bounds: tuple[int, int, int, int],
        prediction: tuple[float, float],
    ) -> tuple[Region | None, np.ndarray]:
        """Search the window around *prediction* for the player blob.

        Returns the best region (frame coordinates) and the cleaned
        court-restricted mask it was found in.
        """
        mask = restrict_to_bounds(
            clean_mask(
                not_court_mask(frame, model, k=self.court_k), open_size=self.open_size
            ),
            bounds,
        )
        window = SearchWindow(
            prediction, self.search_half_size, (frame.shape[0], frame.shape[1])
        )
        if window.empty:
            return None, mask
        local = window.crop(mask)
        regions = regions_in(local, min_area=self.min_area)
        if not regions:
            return None, mask
        # The most similar region: nearest centroid to the prediction.
        def distance(region: Region) -> float:
            centre = window.to_frame(region).centroid
            return float(
                np.hypot(centre[0] - prediction[0], centre[1] - prediction[1])
            )

        best = min(regions, key=distance)
        return window.to_frame(best), mask

    def track(self, frames: list[np.ndarray]) -> Track:
        """Track the player through the frames of one tennis shot."""
        if not frames:
            raise ValueError("cannot track an empty shot")
        model = CourtColorModel.estimate(frames[0])
        if float(model.std.max()) > self.max_color_std:
            # No coherent field colour (not actually a court shot): the
            # "court" model would cover arbitrary pixels, so every frame
            # is a miss rather than a fabricated track.
            return Track(
                points=[TrackPoint(frame=i, found=False) for i in range(len(frames))]
            )
        bounds = court_bounds(frames[0], model, k=self.court_k)
        if bounds is None:
            # No court surface: every frame is a miss (not a tennis shot).
            return Track(points=[TrackPoint(frame=i, found=False) for i in range(len(frames))])
        predictor = self.predictor_factory()
        track = Track()

        for index, frame in enumerate(frames):
            prediction = predictor.predict()
            region: Region | None = None
            mask: np.ndarray | None = None
            if prediction is not None:
                region, mask = self._search(frame, model, bounds, prediction)
            if region is None:
                region = self._acquire(frame, model, bounds)
                mask = restrict_to_bounds(
                    clean_mask(
                        not_court_mask(frame, model, k=self.court_k),
                        open_size=self.open_size,
                    ),
                    self._search_half(bounds),
                )
            if region is None:
                track.points.append(TrackPoint(frame=index, found=False))
                continue
            observation = observe_player(frame, mask, region)
            predictor.update(observation.position)
            track.points.append(
                TrackPoint(frame=index, found=True, observation=observation)
            )
        return track
