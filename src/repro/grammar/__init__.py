"""The Acoi feature grammar system and Feature Detector Engine (FDE).

Contribution (1) of the paper: "a flexible solution for extraction and
querying of meta-data from multimedia documents" — the Acoi system of
Windhouwer, Schmidt & Kersten.  "The feature grammar ... describes the
relationships between meta-data and detectors in a set of grammar
rules. ... to populate the meta-index the feature grammar is used to
generate a parser: the Feature Detector Engine (FDE).  This FDE
triggers the execution of the associated detectors."

- :mod:`repro.grammar.grammar` — the feature grammar language: detector
  declarations with input/output meta-data tokens and guards,
- :mod:`repro.grammar.detectors` — the detector registry (white/black
  box) with versioning,
- :mod:`repro.grammar.runtime` — the fault-tolerance runtime: error
  taxonomy, retry/timeout policies, failure isolation (fail-fast /
  skip-subtree / quarantine) and indexing health reports,
- :mod:`repro.grammar.fde` — the engine: dependency DAG, topological
  scheduling, per-video output caching, incremental revalidation,
- :mod:`repro.grammar.tennis` — the tennis feature grammar of Figure 1
  with its detector implementations,
- :mod:`repro.grammar.dot` — DAG export (regenerates Figure 1).
"""

from repro.grammar.grammar import (
    FeatureGrammar,
    DetectorDecl,
    FeatureGrammarError,
    parse_feature_grammar,
)
from repro.grammar.detectors import DetectorRegistry, IndexingContext
from repro.grammar.runtime import (
    DetectorError,
    TransientDetectorError,
    PermanentDetectorError,
    DetectorTimeoutError,
    DeadlineExceededError,
    MissingTokenError,
    IsolationPolicy,
    RunPolicy,
    DetectorRunner,
    DetectorStatus,
    DetectorOutcome,
    IndexingHealthReport,
)
from repro.grammar.fde import FeatureDetectorEngine, RevalidationReport
from repro.grammar.tennis import TENNIS_FEATURE_GRAMMAR, build_tennis_fde
from repro.grammar.dot import to_dot, figure_one

__all__ = [
    "FeatureGrammar",
    "DetectorDecl",
    "FeatureGrammarError",
    "parse_feature_grammar",
    "DetectorRegistry",
    "IndexingContext",
    "DetectorError",
    "TransientDetectorError",
    "PermanentDetectorError",
    "DetectorTimeoutError",
    "DeadlineExceededError",
    "MissingTokenError",
    "IsolationPolicy",
    "RunPolicy",
    "DetectorRunner",
    "DetectorStatus",
    "DetectorOutcome",
    "IndexingHealthReport",
    "FeatureDetectorEngine",
    "RevalidationReport",
    "TENNIS_FEATURE_GRAMMAR",
    "build_tennis_fde",
    "to_dot",
    "figure_one",
]
