"""Detector registry and indexing context.

A detector implementation is a callable ``fn(context)`` that reads the
tokens its declaration consumes from ``context.tokens`` and writes the
tokens it produces.  The registry versions each implementation, which is
what incremental revalidation keys on: bumping a version marks the
detector (and its meta-data) stale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.model import CobraModel
from repro.grammar.runtime import MissingTokenError

__all__ = ["IndexingContext", "DetectorRegistry"]


@dataclass
class IndexingContext:
    """Everything a detector sees while indexing one multimedia object.

    Attributes:
        clip: the raw object (the axiom token's value) — a
            :class:`~repro.video.frames.VideoClip` for video grammars,
            any raw object with ``name``/``fps``/``__len__`` otherwise
            (e.g. an :class:`~repro.audio.signal.AudioSignal`).
        model: the COBRA meta-index being populated.
        video_id: meta-index id of this object's raw-layer record.
        tokens: meta-data blackboard: token name -> value.  The grammar's
            axiom token maps to the raw object.
        axiom: the axiom token name (default ``video``).
        invocations: per-detector run counter (benchmark bookkeeping).
        current_detector: name of the detector the registry is currently
            running (set by :meth:`DetectorRegistry.run`), so failures
            raised from shared helpers can be attributed.
        health: the :class:`~repro.grammar.runtime.IndexingHealthReport`
            of the pass that produced this context (set by the FDE).
    """

    clip: object
    model: CobraModel
    video_id: int
    tokens: dict[str, object] = field(default_factory=dict)
    invocations: dict[str, int] = field(default_factory=dict)
    axiom: str = "video"
    current_detector: str | None = None
    health: object | None = None

    def __post_init__(self) -> None:
        self.tokens.setdefault(self.axiom, self.clip)

    def require(self, token: str):
        """Read an input token, failing loudly when a dependency is missing."""
        if token not in self.tokens:
            requester = (
                f"detector {self.current_detector!r}"
                if self.current_detector
                else "a detector"
            )
            raise MissingTokenError(
                f"{requester} requires token {token!r}, which is not "
                "available — was its producer run?",
                detector=self.current_detector,
            )
        return self.tokens[token]


@dataclass
class _Registration:
    fn: Callable[[IndexingContext], None]
    kind: str
    version: int


class DetectorRegistry:
    """Named detector implementations with versions."""

    def __init__(self) -> None:
        self._entries: dict[str, _Registration] = {}

    def register(
        self,
        name: str,
        fn: Callable[[IndexingContext], None],
        kind: str = "black",
        version: int = 1,
    ) -> None:
        """Register (or replace) the implementation of *name*.

        Replacing an existing registration bumps the version unless a
        higher one is given explicitly.
        """
        if kind not in ("white", "black"):
            raise ValueError(f"kind must be white/black, got {kind!r}")
        if name in self._entries:
            version = max(version, self._entries[name].version + 1)
        self._entries[name] = _Registration(fn=fn, kind=kind, version=version)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def fn(self, name: str) -> Callable[[IndexingContext], None]:
        if name not in self._entries:
            raise KeyError(f"no detector implementation registered for {name!r}")
        return self._entries[name].fn

    def kind(self, name: str) -> str:
        return self._entries[name].kind

    def version(self, name: str) -> int:
        return self._entries[name].version

    def bump_version(self, name: str) -> int:
        """Mark *name* changed (e.g. retuned thresholds); returns new version."""
        if name not in self._entries:
            raise KeyError(f"no detector implementation registered for {name!r}")
        self._entries[name].version += 1
        return self._entries[name].version

    def wrap(self, name: str, wrapper) -> None:
        """Replace *name*'s callable with ``wrapper(current_fn)``.

        Unlike :meth:`register`, the version is untouched: wrapping is
        for instrumentation and fault injection, which must not look
        like an implementation change to the revalidation machinery.
        """
        if name not in self._entries:
            raise KeyError(f"no detector implementation registered for {name!r}")
        self._entries[name].fn = wrapper(self._entries[name].fn)

    def run(self, name: str, context: IndexingContext) -> None:
        """Invoke a detector and count the invocation."""
        previous = context.current_detector
        context.current_detector = name
        try:
            self.fn(name)(context)
        finally:
            context.current_detector = previous
        context.invocations[name] = context.invocations.get(name, 0) + 1
