"""DAG export: regenerating Figure 1.

The paper's only figure shows the tennis FDE's detector dependencies.
:func:`figure_one` rebuilds that graph from the tennis feature grammar
and renders it as Graphviz DOT text — the machine-checkable equivalent
of the figure (the E1 benchmark asserts its nodes, edges and execution
order).
"""

from __future__ import annotations

import networkx as nx

__all__ = ["to_dot", "figure_one"]


def to_dot(graph: nx.DiGraph, title: str = "fde") -> str:
    """Render a detector dependency DAG as Graphviz DOT text.

    White-box detectors are drawn as ellipses, black-box as boxes, the
    axiom as a plain node; guarded edges are labelled with the guard.
    """
    lines = [f"digraph {title} {{", "  rankdir=TB;"]
    for node in sorted(graph.nodes):
        kind = graph.nodes[node].get("kind", "black")
        if kind == "axiom":
            shape = "plaintext"
        elif kind == "white":
            shape = "ellipse"
        else:
            shape = "box"
        lines.append(f'  "{node}" [shape={shape}];')
    for source, target in sorted(graph.edges):
        token = graph.edges[source, target].get("token", "")
        guard = graph.nodes[target].get("guard")
        label = token
        if guard is not None:
            label = f"{token} [{guard[0]}={guard[1]}]"
        lines.append(f'  "{source}" -> "{target}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def figure_one() -> str:
    """The DOT rendering of the paper's Figure 1 (tennis FDE)."""
    from repro.grammar.tennis import build_tennis_fde

    fde = build_tennis_fde()
    return to_dot(fde.dependency_graph(), title="tennis_fde")
