"""Wave-scheduling primitives for the parallel Feature Detector Engine.

The FDE walks the detector dependency DAG (Figure 1 of the paper) in a
deterministic topological order.  Independent branches of that DAG —
audio vs. vision features, sibling extractors over the same token — are
embarrassingly parallel, but naive concurrency would destroy a property
the storage layer depends on: meta-index identifiers are handed out by
per-layer sequential counters, so the *order* of model mutations decides
the bytes of every snapshot.

This module provides the pieces that make concurrency deterministic:

- :func:`wave_partition` — split the DAG into *waves* (all detectors at
  the same longest-path depth, lexicographically ordered).  Detectors in
  one wave are mutually independent; the concatenation of the waves is
  the engine's canonical execution order, identical for sequential and
  parallel runs.
- :class:`WaveTurnstile` — the commit gate of one wave.  Detector *i*
  of the wave may first touch the shared meta-index only once detectors
  ``0..i-1`` have finished, so model mutations happen in canonical order
  even though detector *compute* overlaps freely.
- :class:`GatedModel` — a transparent model proxy that blocks on the
  turnstile at the first attribute access and then delegates verbatim.

Deadlock freedom: waves are submitted to a FIFO thread pool in turnstile
order, so the lowest-ranked unfinished detector of a wave has always
been started and never waits on anything unfinished.  Every other
detector waits only on lower ranks, which finish first.
"""

from __future__ import annotations

import threading

import networkx as nx

__all__ = ["wave_partition", "WaveTurnstile", "GatedModel"]


def wave_partition(graph: nx.DiGraph, axiom: str) -> list[list[str]]:
    """Partition the detector DAG into dependency waves.

    A detector's wave is its longest-path depth from the axiom; within a
    wave, detectors are sorted lexicographically.  Every detector's
    producers live in strictly earlier waves, so the detectors of one
    wave are mutually independent and may run concurrently.

    Args:
        graph: the dependency DAG (axiom plus detectors).
        axiom: the axiom node, excluded from the partition.

    Returns:
        Waves in dependency order; flattening them yields the canonical
        execution order.
    """
    depth: dict[str, int] = {}
    for node in nx.topological_sort(graph):
        preds = list(graph.predecessors(node))
        depth[node] = max((depth[p] for p in preds), default=-1) + 1
    buckets: dict[int, list[str]] = {}
    for node, level in depth.items():
        if node == axiom:
            continue
        buckets.setdefault(level, []).append(node)
    return [sorted(buckets[level]) for level in sorted(buckets)]


class WaveTurnstile:
    """Commit-order gate for the detectors of one wave.

    Args:
        order: the wave's runnable detectors, in canonical order.  Rank
            *i* may pass :meth:`wait_turn` only once ranks ``0..i-1``
            have called :meth:`finish`.
    """

    def __init__(self, order: list[str]):
        self._rank = {name: index for index, name in enumerate(order)}
        self._finished: set[int] = set()
        self._prefix_done = 0
        self._cond = threading.Condition()

    def wait_turn(self, name: str) -> None:
        """Block until every lower-ranked detector of the wave finished."""
        rank = self._rank[name]
        with self._cond:
            self._cond.wait_for(lambda: self._prefix_done >= rank)

    def finish(self, name: str) -> None:
        """Mark *name* finished, releasing the next rank(s) in line.

        Must be called exactly once per detector, success or failure —
        schedulers call it from a ``finally`` block.
        """
        with self._cond:
            self._finished.add(self._rank[name])
            while self._prefix_done in self._finished:
                self._prefix_done += 1
            self._cond.notify_all()


class GatedModel:
    """Meta-index proxy that defers first access to the commit turn.

    Detector compute (segmentation, tracking, classification) runs
    freely in parallel; the moment the detector reaches for the shared
    model — to register a shot, object or event — it waits for its wave
    turn, so identifier assignment is byte-identical to a sequential
    pass.  After the first access every attribute delegates verbatim.
    """

    __slots__ = ("_model", "_gate", "_name")

    def __init__(self, model, gate: WaveTurnstile, name: str):
        self._model = model
        self._gate = gate
        self._name = name

    def __getattr__(self, attr: str):
        self._gate.wait_turn(self._name)
        return getattr(self._model, attr)
