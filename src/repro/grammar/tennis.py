"""The tennis feature grammar (Figure 1) and its detectors.

"A tennis feature grammar with rules that describe the execution order
of and dependencies between several feature, object or event extraction
algorithms has been developed (see Figure 1)."

The chain the paper describes:

1. **segment** — shot boundaries from colour-histogram differences and
   four-way shot classification (tennis / close-up / audience / other);
2. **tennis** — for shots classified tennis: player segmentation from
   court colour statistics and predict-and-search tracking;
3. **shape** — per-object shape features (mass centre, area, bounding
   box, orientation, eccentricity) and dominant colour;
4. **rules** (white box) — spatio-temporal event rules (net play, rally,
   service, baseline play) evaluated by the COBRA grammar engine.

``build_tennis_fde`` wires these concrete implementations to the
grammar and returns a ready engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.defaults import tennis_grammar
from repro.core.inference import GrammarEventDetector
from repro.core.model import CobraModel
from repro.events.quantize import CourtZones
from repro.grammar.detectors import DetectorRegistry, IndexingContext
from repro.grammar.fde import FeatureDetectorEngine
from repro.grammar.grammar import FeatureGrammar, parse_feature_grammar
from repro.shots.boundary import TwinComparisonDetector
from repro.shots.segmenter import DetectedShot, SegmentDetector
from repro.tracking.court_model import CourtColorModel
from repro.tracking.segmentation import court_bounds
from repro.tracking.tracker import PlayerTracker, Track
from repro.video.shots import ShotCategory

__all__ = [
    "TENNIS_FEATURE_GRAMMAR",
    "TrackedPlayer",
    "build_tennis_fde",
    "shot_features_dict",
    "track_shot_player",
    "player_shape_summary",
    "detect_player_events",
]

TENNIS_FEATURE_GRAMMAR = """
FEATURE GRAMMAR tennis ;

# The segment detector is implemented externally (black box): it finds
# shot boundaries with colour-histogram differences and classifies each
# shot as tennis / close-up / audience / other.
DETECTOR segment BLACK : video -> shot ;

# The tennis detector runs only on shots classified as tennis: initial
# quadratic segmentation from court colour statistics, then
# predict-and-search tracking of the player.
DETECTOR tennis BLACK : shot WHEN category = tennis -> player ;

# Shape features of the segmented player's binary representation.
DETECTOR shape BLACK : player -> shape ;

# Spatio-temporal event rules (white box: interpreted grammar rules).
DETECTOR rules WHITE : player, shape -> event ;
"""


@dataclass
class TrackedPlayer:
    """The ``player`` token: one tracked player per tennis shot."""

    shot: DetectedShot
    shot_id: int
    object_id: int
    track: Track
    zones: CourtZones | None


def shot_features_dict(shot: DetectedShot) -> dict[str, float]:
    """The feature-layer attribute dict stored for a detected shot."""
    return {
        "court_coverage": shot.features.court_coverage,
        "skin_ratio": shot.features.skin_ratio,
        "entropy": shot.features.entropy,
        "mean": shot.features.mean,
        "variance": shot.features.variance,
    }


def track_shot_player(
    model: CobraModel,
    frames,
    shot: DetectedShot,
    shot_id: int,
    tracker: PlayerTracker,
    far_tracker: PlayerTracker | None = None,
) -> TrackedPlayer:
    """Track the player(s) of one tennis shot and register the objects.

    Shared by the batch ``tennis`` detector and the streaming session so
    both produce byte-identical object-layer entities: near player first
    (the ``player`` object drives events), then the optional far player.
    """
    track = tracker.track(frames)
    color_model = CourtColorModel.estimate(frames[0])
    bounds = court_bounds(frames[0], color_model)
    zones = CourtZones.from_court_bounds(bounds) if bounds else None
    obj = model.add_object(
        shot_id,
        label="player",
        trajectory=track.positions,
    )
    if far_tracker is not None:
        far_track = far_tracker.track(frames)
        model.add_object(
            shot_id,
            label="player_far",
            trajectory=far_track.positions,
        )
    return TrackedPlayer(
        shot=shot,
        shot_id=shot_id,
        object_id=obj.object_id,
        track=track,
        zones=zones,
    )


def player_shape_summary(player: TrackedPlayer) -> dict:
    """Aggregate shape statistics of one tracked player."""
    observations = [
        p.observation for p in player.track.points if p.observation is not None
    ]
    if observations:
        areas = [o.shape.area for o in observations]
        colors = np.array([o.dominant_color for o in observations])
        return {
            "object_id": player.object_id,
            "mean_area": float(np.mean(areas)),
            "mean_eccentricity": float(
                np.mean([o.shape.eccentricity for o in observations])
            ),
            "mean_aspect_ratio": float(
                np.mean([o.shape.aspect_ratio for o in observations])
            ),
            "dominant_color": tuple(colors.mean(axis=0)),
        }
    return {
        "object_id": player.object_id,
        "mean_area": 0.0,
        "mean_eccentricity": 0.0,
        "mean_aspect_ratio": 0.0,
        "dominant_color": (0.0, 0.0, 0.0),
    }


def detect_player_events(model: CobraModel, player: TrackedPlayer, grammar) -> list:
    """Run the event grammar over one player's trajectory and register
    the resulting event-layer entities."""
    if player.zones is None:
        return []
    detector = GrammarEventDetector(grammar, player.zones)
    events = []
    for detected in detector.detect(player.track.positions):
        event = model.add_event(
            player.shot_id,
            label=detected.label,
            start=player.shot.start + detected.start,
            stop=player.shot.start + detected.stop,
            confidence=detected.confidence,
            object_id=player.object_id,
        )
        events.append(event)
    return events


def _segment_impl(segmenter: SegmentDetector):
    """Build the segment detector: clip -> classified shots + ShotRecords."""

    def run(context: IndexingContext) -> None:
        context.model.clear_shots_of_video(context.video_id)
        clip = context.require("video")
        shots = segmenter.detect(clip)
        records = []
        for shot in shots:
            record = context.model.add_shot(
                context.video_id,
                start=shot.start,
                stop=shot.stop,
                category=shot.category,
                features=shot_features_dict(shot),
            )
            records.append((shot, record.shot_id))
        context.tokens["shot"] = records

    return run


def _tennis_impl(tracker: PlayerTracker, far_tracker: PlayerTracker | None = None):
    """Build the tennis detector: tennis shots -> tracked players.

    With *far_tracker* set, the far-court player is tracked too and
    registered as a second object-layer entity (``player_far``); events
    remain driven by the near player, the broadcast's primary subject.
    """

    def run(context: IndexingContext) -> None:
        context.model.clear_objects_of_video(context.video_id)
        clip = context.require("video")
        players: list[TrackedPlayer] = []
        for shot, shot_id in context.require("shot"):
            if shot.category != ShotCategory.TENNIS:
                continue
            frames = [clip[i] for i in range(shot.start, shot.stop)]
            players.append(
                track_shot_player(
                    context.model, frames, shot, shot_id, tracker, far_tracker
                )
            )
        context.tokens["player"] = players

    return run


def _shape_impl():
    """Build the shape detector: aggregate per-track shape statistics."""

    def run(context: IndexingContext) -> None:
        context.tokens["shape"] = [
            player_shape_summary(player) for player in context.require("player")
        ]

    return run


def _rules_impl(concept_grammar=None):
    """Build the white-box event detector: grammar rules over trajectories."""
    grammar = concept_grammar or tennis_grammar()

    def run(context: IndexingContext) -> None:
        context.model.clear_events_of_video(context.video_id)
        events = []
        for player in context.require("player"):
            events.extend(detect_player_events(context.model, player, grammar))
        context.tokens["event"] = events

    return run


def build_tennis_fde(
    model: CobraModel | None = None,
    segmenter: SegmentDetector | None = None,
    tracker: PlayerTracker | None = None,
    concept_grammar=None,
    track_far: bool = False,
    policy=None,
    runner=None,
) -> FeatureDetectorEngine:
    """Construct the tennis FDE with default (or supplied) detectors.

    Args:
        model: the meta-index to populate.
        segmenter: segment detector override (defaults to the
            twin-comparison boundary detector + rule classifier).
        tracker: player tracker override.
        concept_grammar: COBRA event grammar override.
        track_far: also track the far-court player (a second
            object-layer entity per tennis shot).
        policy: fault-tolerance :class:`~repro.grammar.runtime.RunPolicy`
            (default fail-fast, no retries).
        runner: :class:`~repro.grammar.runtime.DetectorRunner` factory
            taking the registry (e.g. ``lambda reg: DetectorRunner(reg,
            policy, clock=fake, sleep=fake.sleep)``); overrides *policy*.

    Returns:
        A ready :class:`~repro.grammar.fde.FeatureDetectorEngine`.
    """
    grammar: FeatureGrammar = parse_feature_grammar(TENNIS_FEATURE_GRAMMAR)
    registry = DetectorRegistry()
    registry.register(
        "segment",
        _segment_impl(segmenter or SegmentDetector(boundary_detector=TwinComparisonDetector())),
        kind="black",
    )
    far_tracker = PlayerTracker(half="far", min_area=8) if track_far else None
    registry.register(
        "tennis",
        _tennis_impl(tracker or PlayerTracker(), far_tracker=far_tracker),
        kind="black",
    )
    registry.register("shape", _shape_impl(), kind="black")
    registry.register("rules", _rules_impl(concept_grammar), kind="white")
    return FeatureDetectorEngine(
        grammar,
        registry,
        model=model,
        policy=policy,
        runner=runner(registry) if runner is not None else None,
    )
