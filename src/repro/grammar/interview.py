"""The interview (audio) feature grammar.

The second instantiation of the Acoi framework, proving the paper's
claim that feature grammars manage "extraction and querying of meta-data
from multimedia documents in general": the same FDE machinery drives an
*audio* pipeline — word segmentation, keyword spotting, and a white-box
mention detector — over interview recordings.

The axiom is ``audio`` (an :class:`~repro.audio.signal.AudioSignal`);
the meta-index records the recording as a raw-layer object with one
``interview`` segment, and each spotted keyword as an event on the
sample timeline.
"""

from __future__ import annotations

from repro.audio.segmenter import segment_words
from repro.audio.signal import AudioSignal
from repro.audio.spotting import KeywordSpotter
from repro.core.model import CobraModel
from repro.grammar.detectors import DetectorRegistry, IndexingContext
from repro.grammar.fde import FeatureDetectorEngine
from repro.grammar.grammar import parse_feature_grammar

__all__ = ["INTERVIEW_FEATURE_GRAMMAR", "TENNIS_KEYWORDS", "build_interview_fde"]

INTERVIEW_FEATURE_GRAMMAR = """
FEATURE GRAMMAR interview ;
AXIOM audio ;

# Word segmentation by short-time energy (black box).
DETECTOR words BLACK : audio -> word_segment ;

# Keyword spotting: classify each segment against the vocabulary.
DETECTOR spot BLACK : word_segment -> word ;

# Mention extraction: which domain keywords occur where (white box —
# it only interprets the keyword list).
DETECTOR mentions WHITE : word -> mention ;
"""

#: The tennis terms the digital library spots in interview audio.
TENNIS_KEYWORDS = (
    "net",
    "volley",
    "rally",
    "serve",
    "baseline",
    "champion",
    "melbourne",
)


def _words_impl():
    def run(context: IndexingContext) -> None:
        context.model.clear_shots_of_video(context.video_id)
        signal: AudioSignal = context.require("audio")
        segments = segment_words(signal)
        shot = context.model.add_shot(
            context.video_id, start=0, stop=len(signal), category="interview"
        )
        context.tokens["word_segment"] = (shot.shot_id, segments)

    return run


def _spot_impl(spotter: KeywordSpotter):
    def run(context: IndexingContext) -> None:
        signal: AudioSignal = context.require("audio")
        shot_id, segments = context.require("word_segment")
        words = [
            (segment, spotter.classify_segment(signal, segment)[0])
            for segment in segments
        ]
        context.tokens["word"] = (shot_id, words)

    return run


def _mentions_impl(keywords: tuple[str, ...]):
    wanted = {k.lower() for k in keywords}

    def run(context: IndexingContext) -> None:
        context.model.clear_events_of_video(context.video_id)
        shot_id, words = context.require("word")
        mentions = []
        for segment, word in words:
            if word in wanted:
                event = context.model.add_event(
                    shot_id,
                    label=f"mention:{word}",
                    start=segment.start,
                    stop=segment.stop,
                )
                mentions.append(event)
        context.tokens["mention"] = mentions

    return run


def build_interview_fde(
    vocabulary: list[str],
    keywords: tuple[str, ...] = TENNIS_KEYWORDS,
    model: CobraModel | None = None,
) -> FeatureDetectorEngine:
    """Construct the interview FDE.

    Args:
        vocabulary: the words the spotter can recognise (typically the
            corpus vocabulary).
        keywords: the domain terms registered as mention events.
        model: the meta-index to populate.
    """
    grammar = parse_feature_grammar(INTERVIEW_FEATURE_GRAMMAR)
    registry = DetectorRegistry()
    registry.register("words", _words_impl(), kind="black")
    registry.register("spot", _spot_impl(KeywordSpotter(vocabulary)), kind="black")
    registry.register("mentions", _mentions_impl(keywords), kind="white")
    return FeatureDetectorEngine(grammar, registry, model=model)
