"""Fault-tolerance runtime for the Feature Detector Engine.

The paper's FDE drives a DAG of extraction detectors over every video in
the library.  At collection scale individual detectors *will* fail —
corrupt frames, empty shots, flaky black-box binaries — and an
all-or-nothing pipeline silently loses every layer of meta-data for the
video.  This module is the runtime the engine schedules detectors
through instead of calling them directly:

- an **error taxonomy** (:class:`DetectorError` and its ``Transient`` /
  ``Permanent`` / ``Timeout`` subclasses) that retry decisions key on;
- a :class:`RunPolicy` configuring per-detector retries, exponential
  backoff, per-attempt timeouts and a per-video deadline budget — with
  injectable ``clock``/``sleep`` so every test is deterministic;
- a :class:`DetectorRunner` that executes one detector under the policy
  and reports a :class:`DetectorOutcome` instead of letting exceptions
  tear down the whole video;
- three **failure-isolation policies** (:class:`IsolationPolicy`):
  ``fail_fast`` (the pre-runtime behaviour: roll the video back),
  ``skip_subtree`` (a permanently-failing detector marks itself and its
  DAG descendants skipped; upstream meta-data is committed and the
  video is flagged *degraded*), and ``quarantine`` (``skip_subtree``
  plus engine-wide disabling of a detector that fails on K consecutive
  videos, until its registered version changes);
- an :class:`IndexingHealthReport` accounting for attempts, retries,
  skips, quarantines and elapsed time per detector.

Timeouts are enforced *cooperatively*: the runner measures each attempt
with the injected clock and classifies an over-budget attempt as a
:class:`DetectorTimeoutError` (retryable).  Detectors are plain Python
callables, so the runner cannot pre-empt one mid-flight — the budget
bounds what the engine accepts, not what a runaway attempt consumes.
Detector attempts therefore run *at least once* per retry: detector
implementations must tolerate re-execution (the tennis detectors do, by
clearing their model layer on entry).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "DetectorError",
    "TransientDetectorError",
    "PermanentDetectorError",
    "DetectorTimeoutError",
    "DeadlineExceededError",
    "MissingTokenError",
    "classify_error",
    "IsolationPolicy",
    "RunPolicy",
    "DetectorStatus",
    "DetectorOutcome",
    "IndexingHealthReport",
    "DetectorRunner",
    "aggregate_health",
    "format_health_table",
]


# ---------------------------------------------------------------------- #
# Error taxonomy
# ---------------------------------------------------------------------- #


class DetectorError(Exception):
    """Base class of classified detector failures.

    Args:
        message: human-readable description.
        detector: name of the detector the failure is attributed to.
    """

    def __init__(self, message: str, *, detector: str | None = None):
        super().__init__(message)
        self.detector = detector


class TransientDetectorError(DetectorError):
    """A failure worth retrying (flaky black box, resource hiccup)."""


class PermanentDetectorError(DetectorError):
    """A failure no retry will fix (bad input, broken implementation)."""


class DetectorTimeoutError(DetectorError):
    """An attempt exceeded its wall-clock budget (retryable)."""


class DeadlineExceededError(DetectorError):
    """The per-video deadline budget ran out before this detector ran."""


class MissingTokenError(PermanentDetectorError, KeyError):
    """A detector required a token no upstream detector produced.

    Subclasses :class:`KeyError` for backward compatibility with
    pre-runtime callers; classified *permanent* because re-running the
    same detector cannot conjure the missing input.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return Exception.__str__(self)


def classify_error(exc: BaseException) -> str:
    """Map an exception to ``"transient"``/``"permanent"``/``"timeout"``.

    The taxonomy classes map to themselves; builtin ``TimeoutError`` is a
    timeout and ``ConnectionError``/``InterruptedError`` are transient
    (black-box detectors talk to external processes); everything else is
    permanent — deterministic Python code does not heal on retry.
    """
    if isinstance(exc, DetectorTimeoutError):
        return "timeout"
    if isinstance(exc, TransientDetectorError):
        return "transient"
    if isinstance(exc, PermanentDetectorError):
        return "permanent"
    if isinstance(exc, TimeoutError):
        return "timeout"
    if isinstance(exc, (ConnectionError, InterruptedError)):
        return "transient"
    return "permanent"


# ---------------------------------------------------------------------- #
# Policy
# ---------------------------------------------------------------------- #


class IsolationPolicy(str, Enum):
    """What a permanent detector failure does to the rest of the video."""

    FAIL_FAST = "fail_fast"
    SKIP_SUBTREE = "skip_subtree"
    QUARANTINE = "quarantine"


@dataclass(frozen=True)
class RunPolicy:
    """Retry/timeout/isolation configuration for the detector runner.

    Attributes:
        max_retries: extra attempts after the first, for transient and
            timeout failures (permanent failures never retry).
        per_detector_retries: per-detector override of ``max_retries``.
        backoff_base: sleep before the first retry, in seconds.
        backoff_factor: multiplier per further retry (exponential).
        max_backoff: cap on any single backoff sleep.
        timeout: per-attempt wall-clock budget in seconds (``None`` =
            unbounded); enforced cooperatively by the runner's clock.
        per_detector_timeout: per-detector override of ``timeout``.
        deadline: per-video wall-clock budget in seconds (``None`` =
            unbounded).  Once spent, remaining detectors are not started.
        isolation: failure-isolation policy (default ``fail_fast`` — the
            historical all-or-nothing behaviour).
        quarantine_after: under ``quarantine``, disable a detector
            engine-wide after it fails on this many consecutive videos.
        max_workers: thread-pool width for the engine's wave scheduler
            (``1`` = the historical strictly-sequential walk).  Whatever
            the width, detector outputs, health reports and meta-index
            identifiers are byte-identical to a sequential pass — see
            :mod:`repro.grammar.schedule`.
    """

    max_retries: int = 0
    per_detector_retries: dict[str, int] = field(default_factory=dict)
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    max_backoff: float = 30.0
    timeout: float | None = None
    per_detector_timeout: dict[str, float] = field(default_factory=dict)
    deadline: float | None = None
    isolation: IsolationPolicy = IsolationPolicy.FAIL_FAST
    quarantine_after: int = 3
    max_workers: int = 1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValueError("backoff_base must be >= 0 and backoff_factor >= 1")
        if self.quarantine_after < 1:
            raise ValueError(f"quarantine_after must be >= 1, got {self.quarantine_after}")
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        object.__setattr__(self, "isolation", IsolationPolicy(self.isolation))

    def retries_for(self, detector: str) -> int:
        return self.per_detector_retries.get(detector, self.max_retries)

    def timeout_for(self, detector: str) -> float | None:
        return self.per_detector_timeout.get(detector, self.timeout)

    def backoff(self, retry_index: int) -> float:
        """Sleep before retry *retry_index* (0-based), in seconds."""
        return min(self.backoff_base * self.backoff_factor**retry_index, self.max_backoff)


# ---------------------------------------------------------------------- #
# Outcomes and health reporting
# ---------------------------------------------------------------------- #


class DetectorStatus(str, Enum):
    """Terminal state of one detector invocation within a video pass."""

    OK = "ok"
    FAILED = "failed"
    SKIPPED = "skipped"
    QUARANTINED = "quarantined"


@dataclass
class DetectorOutcome:
    """What happened to one detector on one video.

    Attributes:
        name: the detector.
        status: final status after all attempts.
        attempts: how many times the implementation was invoked.
        retries: ``attempts - 1`` for executed detectors, else 0.
        elapsed: wall-clock seconds across all attempts (runner clock).
        error: the exception that decided a FAILED/QUARANTINED status.
        error_kind: taxonomy class of ``error`` (transient/permanent/
            timeout), ``None`` for OK/SKIPPED.
        skipped_because: for SKIPPED — the upstream detector (or
            ``"deadline"``) that caused the skip.
    """

    name: str
    status: DetectorStatus
    attempts: int = 0
    retries: int = 0
    elapsed: float = 0.0
    error: BaseException | None = None
    error_kind: str | None = None
    skipped_because: str | None = None


@dataclass
class IndexingHealthReport:
    """Per-video accounting of a pass through the detector DAG.

    Attributes:
        video_name: the indexed object.
        outcomes: detector name -> :class:`DetectorOutcome`, in
            execution order.
        degraded: True when any detector failed, was skipped or was
            quarantined — the video committed with incomplete meta-data.
        elapsed: wall-clock seconds for the whole pass (runner clock).
    """

    video_name: str | None = None
    outcomes: dict[str, DetectorOutcome] = field(default_factory=dict)
    degraded: bool = False
    elapsed: float = 0.0

    def _names(self, status: DetectorStatus) -> list[str]:
        return [n for n, o in self.outcomes.items() if o.status is status]

    @property
    def ok(self) -> list[str]:
        return self._names(DetectorStatus.OK)

    @property
    def failed(self) -> list[str]:
        return self._names(DetectorStatus.FAILED)

    @property
    def skipped(self) -> list[str]:
        return self._names(DetectorStatus.SKIPPED)

    @property
    def quarantined(self) -> list[str]:
        return self._names(DetectorStatus.QUARANTINED)

    @property
    def total_attempts(self) -> int:
        return sum(o.attempts for o in self.outcomes.values())

    @property
    def total_retries(self) -> int:
        return sum(o.retries for o in self.outcomes.values())

    @property
    def completeness(self) -> float:
        """Fraction of detectors that produced their meta-data."""
        if not self.outcomes:
            return 1.0
        return len(self.ok) / len(self.outcomes)


def aggregate_health(reports: list[IndexingHealthReport]) -> dict[str, dict[str, int]]:
    """Sum per-detector counters over many video reports.

    Returns:
        detector name -> ``{"attempts", "retries", "ok", "failed",
        "skipped", "quarantined"}``, detectors in first-seen order.
    """
    out: dict[str, dict[str, int]] = {}
    for report in reports:
        for name, outcome in report.outcomes.items():
            row = out.setdefault(
                name,
                {"attempts": 0, "retries": 0, "ok": 0, "failed": 0, "skipped": 0, "quarantined": 0},
            )
            row["attempts"] += outcome.attempts
            row["retries"] += outcome.retries
            row[outcome.status.value] += 1
    return out


def format_health_table(reports: list[IndexingHealthReport]) -> str:
    """Render aggregated health as a fixed-width text table."""
    rows = aggregate_health(reports)
    header = ["detector", "attempts", "retries", "ok", "failed", "skipped", "quarantined"]
    table = [header] + [
        [name] + [str(row[k]) for k in header[1:]] for name, row in rows.items()
    ]
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in table]
    lines.insert(1, "-" * len(lines[0]))
    degraded = [r.video_name for r in reports if r.degraded]
    lines.append("")
    lines.append(
        f"videos: {len(reports)} indexed, {len(degraded)} degraded"
        + (f" ({', '.join(str(n) for n in degraded)})" if degraded else "")
    )
    mean = sum(r.completeness for r in reports) / len(reports) if reports else 1.0
    lines.append(f"meta-data completeness: {mean:.0%}")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# The runner
# ---------------------------------------------------------------------- #


class DetectorRunner:
    """Executes detectors under a :class:`RunPolicy`.

    One runner serves one engine: it owns the engine-wide quarantine
    state (consecutive per-detector failure counts across videos).

    The quarantine state is thread-safe: the parallel wave scheduler and
    the per-video staging pool call :meth:`is_quarantined` /
    :meth:`record_video_result` from many threads concurrently, so every
    read-modify-write of the counters happens under one re-entrant lock.
    :meth:`run` itself touches no shared mutable state and may be called
    concurrently for *different* detectors of the same pass.

    Args:
        registry: the detector implementations.
        policy: retry/timeout/isolation configuration.
        clock: monotonic seconds source (injectable for tests).
        sleep: backoff sleep (injectable for tests; a fake clock's
            ``sleep`` should advance the fake time).
    """

    def __init__(
        self,
        registry,
        policy: RunPolicy | None = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        self.registry = registry
        self.policy = policy or RunPolicy()
        self.clock = clock
        self.sleep = sleep
        self._lock = threading.RLock()
        self._consecutive_failures: dict[str, int] = {}
        self._quarantined_version: dict[str, int] = {}

    # -- quarantine state ---------------------------------------------- #

    def is_quarantined(self, name: str) -> bool:
        """True while *name* is disabled engine-wide.

        A registry version different from the one recorded at quarantine
        time (a re-registration or version bump) lifts the quarantine.
        """
        with self._lock:
            version = self._quarantined_version.get(name)
            if version is None:
                return False
            if self.registry.version(name) != version:
                del self._quarantined_version[name]
                self._consecutive_failures.pop(name, None)
                return False
            return True

    @property
    def quarantined_detectors(self) -> list[str]:
        with self._lock:
            return sorted(
                n for n in list(self._quarantined_version) if self.is_quarantined(n)
            )

    def export_state(self) -> dict:
        """JSON-serialisable quarantine state (persistence snapshot).

        Returns:
            ``{"consecutive_failures": {name: count},
            "quarantined_version": {name: registry version at
            quarantine time}}`` — exactly what :meth:`restore_state`
            accepts, so quarantine survives engine restarts.
        """
        with self._lock:
            return {
                "consecutive_failures": dict(self._consecutive_failures),
                "quarantined_version": dict(self._quarantined_version),
            }

    def restore_state(self, state: dict | None) -> None:
        """Adopt quarantine state exported by :meth:`export_state`.

        Version-bump clearing still applies: a restored quarantine whose
        recorded registry version no longer matches is lifted on the
        next :meth:`is_quarantined` check, so fixing a detector (which
        bumps its version) releases it even across restarts.  Passing
        ``None`` is a no-op, so callers can feed a possibly-absent
        persisted state straight through.
        """
        if state is None:
            return
        with self._lock:
            self._consecutive_failures = {
                str(name): int(count)
                for name, count in state.get("consecutive_failures", {}).items()
            }
            self._quarantined_version = {
                str(name): int(version)
                for name, version in state.get("quarantined_version", {}).items()
            }

    def consecutive_failures(self, name: str) -> int:
        with self._lock:
            return self._consecutive_failures.get(name, 0)

    def record_video_result(self, name: str, failed: bool) -> None:
        """Track per-video success/failure for the quarantine counter.

        Call once per video for every detector that actually *ran* (not
        for skipped ones).  Under :attr:`IsolationPolicy.QUARANTINE`,
        :attr:`RunPolicy.quarantine_after` consecutive failing videos
        disable the detector until its version changes.

        Thread-safe: concurrent calls from the wave scheduler or the
        per-video staging pool serialise on the runner's lock, so no
        increment is ever lost.
        """
        with self._lock:
            if failed:
                count = self._consecutive_failures.get(name, 0) + 1
                self._consecutive_failures[name] = count
                if (
                    self.policy.isolation is IsolationPolicy.QUARANTINE
                    and count >= self.policy.quarantine_after
                ):
                    self._quarantined_version[name] = self.registry.version(name)
            else:
                self._consecutive_failures.pop(name, None)

    # -- execution ------------------------------------------------------ #

    def run(self, name: str, context, deadline_at: float | None = None) -> DetectorOutcome:
        """Run one detector with retries/backoff/timeout; never raises.

        Args:
            name: the detector to run.
            context: the :class:`~repro.grammar.detectors.IndexingContext`.
            deadline_at: absolute clock value after which no further
                attempt may start (the per-video budget).

        Returns:
            A :class:`DetectorOutcome`; callers decide, per isolation
            policy, whether a FAILED outcome aborts, skips or re-raises.
        """
        max_retries = self.policy.retries_for(name)
        timeout = self.policy.timeout_for(name)
        started = self.clock()
        attempts = 0
        while True:
            if deadline_at is not None and self.clock() >= deadline_at:
                error = DeadlineExceededError(
                    f"deadline budget exhausted before attempt {attempts + 1} "
                    f"of detector {name!r}",
                    detector=name,
                )
                return DetectorOutcome(
                    name=name,
                    status=DetectorStatus.FAILED,
                    attempts=attempts,
                    retries=max(attempts - 1, 0),
                    elapsed=self.clock() - started,
                    error=error,
                    error_kind="timeout",
                )
            attempts += 1
            attempt_start = self.clock()
            try:
                self.registry.run(name, context)
                elapsed_attempt = self.clock() - attempt_start
                if timeout is not None and elapsed_attempt > timeout:
                    raise DetectorTimeoutError(
                        f"detector {name!r} attempt took {elapsed_attempt:.3f}s "
                        f"(budget {timeout:.3f}s)",
                        detector=name,
                    )
                return DetectorOutcome(
                    name=name,
                    status=DetectorStatus.OK,
                    attempts=attempts,
                    retries=attempts - 1,
                    elapsed=self.clock() - started,
                )
            except Exception as exc:  # noqa: BLE001 — the runner is the boundary
                kind = classify_error(exc)
                retryable = kind in ("transient", "timeout")
                if retryable and attempts <= max_retries:
                    pause = self.policy.backoff(attempts - 1)
                    if deadline_at is None or self.clock() + pause < deadline_at:
                        if pause > 0:
                            self.sleep(pause)
                        continue
                return DetectorOutcome(
                    name=name,
                    status=DetectorStatus.FAILED,
                    attempts=attempts,
                    retries=attempts - 1,
                    elapsed=self.clock() - started,
                    error=exc,
                    error_kind=kind,
                )
