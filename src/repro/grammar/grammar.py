"""The feature grammar language.

A feature grammar names the meta-data *tokens* of a domain and declares
which detector produces which tokens from which inputs::

    FEATURE GRAMMAR tennis ;

    DETECTOR segment BLACK : video -> shot ;
    DETECTOR tennis  BLACK : shot WHEN category = tennis -> player ;
    DETECTOR shape   BLACK : player -> shape ;
    DETECTOR rules   WHITE : player -> event ;

``video`` is the axiom — the raw data every pipeline starts from.  Each
other token must be produced by exactly one detector, and the detector
dependency relation must be acyclic; the FDE derives its execution
schedule from these rules ("managing the meta-index now boils down to
exploiting the dependencies in the feature grammar").

``WHITE`` detectors are rules interpreted by the engine itself (the
COBRA event grammars); ``BLACK`` detectors are opaque registered
functions — the paper's white-/black-box split.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["FeatureGrammarError", "DetectorDecl", "FeatureGrammar", "parse_feature_grammar"]

#: The default axiom token: raw video, present before any detector runs.
#: A grammar may override it with an ``AXIOM <token> ;`` declaration —
#: Acoi indexes "multimedia objects" generally, not only video.
AXIOM = "video"


class FeatureGrammarError(ValueError):
    """Raised for feature grammar syntax or consistency errors."""


@dataclass(frozen=True)
class DetectorDecl:
    """One detector declaration.

    Attributes:
        name: detector name (registry key).
        kind: ``"white"`` or ``"black"``.
        inputs: meta-data tokens the detector consumes.
        outputs: tokens it produces.
        guard: optional ``(field, value)`` restriction on which input
            instances the detector processes (e.g. only tennis shots).
    """

    name: str
    kind: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    guard: tuple[str, str] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("white", "black"):
            raise FeatureGrammarError(f"detector {self.name!r}: kind must be white/black")
        if not self.inputs:
            raise FeatureGrammarError(f"detector {self.name!r} consumes nothing")
        if not self.outputs:
            raise FeatureGrammarError(f"detector {self.name!r} produces nothing")
        overlap = set(self.inputs) & set(self.outputs)
        if overlap:
            raise FeatureGrammarError(
                f"detector {self.name!r} both consumes and produces {sorted(overlap)}"
            )


@dataclass
class FeatureGrammar:
    """A parsed feature grammar: named, ordered detector declarations."""

    name: str
    detectors: list[DetectorDecl] = field(default_factory=list)
    axiom: str = AXIOM

    @property
    def detector_names(self) -> list[str]:
        return [d.name for d in self.detectors]

    def detector(self, name: str) -> DetectorDecl:
        for decl in self.detectors:
            if decl.name == name:
                return decl
        raise KeyError(f"no detector named {name!r}")

    @property
    def tokens(self) -> set[str]:
        """All meta-data tokens, including the axiom."""
        out = {self.axiom}
        for decl in self.detectors:
            out.update(decl.inputs)
            out.update(decl.outputs)
        return out

    def producer_of(self, token: str) -> DetectorDecl | None:
        """The detector producing *token* (None for the axiom)."""
        for decl in self.detectors:
            if token in decl.outputs:
                return decl
        return None

    def validate(self) -> None:
        """Check single-producer and acyclicity invariants."""
        producers: dict[str, str] = {}
        for decl in self.detectors:
            for token in decl.outputs:
                if token == self.axiom:
                    raise FeatureGrammarError(
                        f"detector {decl.name!r} claims to produce the axiom"
                    )
                if token in producers:
                    raise FeatureGrammarError(
                        f"token {token!r} produced by both {producers[token]!r} "
                        f"and {decl.name!r}"
                    )
                producers[token] = decl.name
        for decl in self.detectors:
            for token in decl.inputs:
                if token != self.axiom and token not in producers:
                    raise FeatureGrammarError(
                        f"detector {decl.name!r} consumes unproduced token {token!r}"
                    )
        names = [d.name for d in self.detectors]
        if len(names) != len(set(names)):
            raise FeatureGrammarError("duplicate detector names")
        self._check_acyclic(producers)

    def _check_acyclic(self, producers: dict[str, str]) -> None:
        # DFS over detector dependencies (detector -> producers of inputs).
        colors: dict[str, int] = {}

        def visit(name: str) -> None:
            if colors.get(name) == 1:
                raise FeatureGrammarError(f"dependency cycle through {name!r}")
            if colors.get(name) == 2:
                return
            colors[name] = 1
            decl = self.detector(name)
            for token in decl.inputs:
                if token != self.axiom:
                    visit(producers[token])
            colors[name] = 2

        for decl in self.detectors:
            visit(decl.name)

    def dependencies_of(self, name: str) -> list[str]:
        """Names of detectors whose outputs *name* consumes."""
        decl = self.detector(name)
        deps = []
        for token in decl.inputs:
            producer = self.producer_of(token)
            if producer is not None and producer.name not in deps:
                deps.append(producer.name)
        return deps


_HEADER_RE = re.compile(r"^\s*FEATURE\s+GRAMMAR\s+(\w+)\s*;\s*", re.IGNORECASE)
_AXIOM_RE = re.compile(r"^\s*AXIOM\s+(\w+)\s*;\s*", re.IGNORECASE)
_DETECTOR_RE = re.compile(
    r"""
    DETECTOR\s+(?P<name>\w+)
    (?:\s+(?P<kind>WHITE|BLACK))?
    \s*:\s*
    (?P<inputs>[\w\s,]+?)
    (?:\s+WHEN\s+(?P<gfield>\w+)\s*=\s*(?P<gvalue>\w+))?
    \s*->\s*
    (?P<outputs>[\w\s,]+?)
    \s*;
    """,
    re.VERBOSE | re.IGNORECASE,
)


def parse_feature_grammar(text: str) -> FeatureGrammar:
    """Parse a feature grammar text and validate its invariants."""
    stripped = re.sub(r"#[^\n]*", "", text)
    header = _HEADER_RE.match(stripped)
    if header is None:
        raise FeatureGrammarError("missing 'FEATURE GRAMMAR <name> ;' header")
    grammar = FeatureGrammar(name=header.group(1))
    body = stripped[header.end() :]
    axiom_match = _AXIOM_RE.match(body)
    if axiom_match is not None:
        grammar.axiom = axiom_match.group(1)
        body = body[axiom_match.end() :]
    consumed_upto = 0
    for match in _DETECTOR_RE.finditer(body):
        between = body[consumed_upto : match.start()].strip()
        if between:
            raise FeatureGrammarError(f"unparseable grammar text: {between!r}")
        consumed_upto = match.end()
        guard = None
        if match.group("gfield"):
            guard = (match.group("gfield"), match.group("gvalue"))
        grammar.detectors.append(
            DetectorDecl(
                name=match.group("name"),
                kind=(match.group("kind") or "black").lower(),
                inputs=tuple(
                    t.strip() for t in match.group("inputs").split(",") if t.strip()
                ),
                outputs=tuple(
                    t.strip() for t in match.group("outputs").split(",") if t.strip()
                ),
                guard=guard,
            )
        )
    trailing = body[consumed_upto:].strip()
    if trailing:
        raise FeatureGrammarError(f"unparseable grammar text: {trailing!r}")
    if not grammar.detectors:
        raise FeatureGrammarError("a feature grammar needs at least one detector")
    grammar.validate()
    return grammar
