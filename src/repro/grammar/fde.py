"""The Feature Detector Engine.

Generated from a feature grammar, the FDE:

1. derives the detector dependency DAG (Figure 1 of the paper),
2. schedules detectors in topological order to index a video,
3. caches each detector's token outputs per video, and
4. *revalidates incrementally*: when a detector implementation changes
   (version bump), only that detector and its descendants re-run;
   everything upstream is served from the cache.  This is the Acoi
   pay-off the E8 benchmark quantifies.

Every detector invocation goes through the fault-tolerance runtime
(:mod:`repro.grammar.runtime`): retries with exponential backoff for
transient failures, cooperative per-attempt timeouts, a per-video
deadline budget, and one of three isolation policies.  The default
policy (``fail_fast``, no retries) reproduces the historical
all-or-nothing behaviour exactly; ``skip_subtree`` and ``quarantine``
commit videos *degraded* — upstream meta-data kept, the failing
detector's DAG subtree skipped — so one bad detector no longer erases a
whole video from the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.model import CobraModel
from repro.grammar.detectors import DetectorRegistry, IndexingContext
from repro.grammar.grammar import FeatureGrammar, FeatureGrammarError
from repro.grammar.runtime import (
    DeadlineExceededError,
    DetectorOutcome,
    DetectorRunner,
    DetectorStatus,
    IndexingHealthReport,
    IsolationPolicy,
    RunPolicy,
)

__all__ = ["FeatureDetectorEngine", "RevalidationReport"]


@dataclass
class RevalidationReport:
    """Work accounting of a revalidation pass.

    Attributes:
        executed: detector invocation count (per detector name).
        reused: cache-hit count (per detector name).
        health: per-detector outcomes of the executed subset (``None``
            for merged multi-video reports).
    """

    executed: dict[str, int] = field(default_factory=dict)
    reused: dict[str, int] = field(default_factory=dict)
    health: IndexingHealthReport | None = None

    @property
    def total_executed(self) -> int:
        return sum(self.executed.values())

    @property
    def total_reused(self) -> int:
        return sum(self.reused.values())


@dataclass
class _VideoState:
    """Cached indexing state of one multimedia object."""

    clip: object
    context: IndexingContext
    outputs: dict[str, dict[str, object]]  # detector -> {token: value}
    versions: dict[str, int]  # detector -> registry version used
    health: IndexingHealthReport | None = None


class FeatureDetectorEngine:
    """The parser the feature grammar generates.

    Args:
        grammar: the validated feature grammar.
        registry: detector implementations; every grammar detector must
            be registered before indexing.
        model: the COBRA meta-index to populate (a fresh one by default).
        policy: fault-tolerance configuration (default: ``fail_fast``
            with no retries — the historical behaviour).
        runner: full :class:`~repro.grammar.runtime.DetectorRunner`
            override (injectable clock/sleep for tests); *policy* is
            ignored when given.
    """

    def __init__(
        self,
        grammar: FeatureGrammar,
        registry: DetectorRegistry,
        model: CobraModel | None = None,
        policy: RunPolicy | None = None,
        runner: DetectorRunner | None = None,
    ):
        grammar.validate()
        self.grammar = grammar
        self.registry = registry
        self.model = model if model is not None else CobraModel()
        self.runner = runner if runner is not None else DetectorRunner(registry, policy)
        if self.runner.registry is not registry:
            raise ValueError("runner must wrap the engine's registry")
        self.last_health: IndexingHealthReport | None = None
        self._states: dict[str, _VideoState] = {}

    @property
    def policy(self) -> RunPolicy:
        return self.runner.policy

    # ------------------------------------------------------------------ #
    # Runner-state persistence (quarantine across restarts)
    # ------------------------------------------------------------------ #

    def export_runner_state(self) -> dict:
        """The runner's quarantine state, for saving next to the meta-index."""
        return self.runner.export_state()

    def restore_runner_state(self, state: dict | None) -> None:
        """Adopt persisted quarantine state (``None`` is a no-op).

        A detector quarantined before the previous process died stays
        quarantined here until its registered version changes.
        """
        self.runner.restore_state(state)

    # ------------------------------------------------------------------ #
    # The dependency DAG (Figure 1)
    # ------------------------------------------------------------------ #

    def dependency_graph(self) -> nx.DiGraph:
        """Detector dependency DAG.

        Nodes are detectors plus the ``video`` axiom; an edge ``a -> b``
        means b consumes a token a produces.  Edges carry the token as
        the ``token`` attribute; nodes carry ``kind`` and ``guard``.
        """
        graph = nx.DiGraph()
        axiom = self.grammar.axiom
        graph.add_node(axiom, kind="axiom", guard=None)
        for decl in self.grammar.detectors:
            graph.add_node(decl.name, kind=decl.kind, guard=decl.guard)
        for decl in self.grammar.detectors:
            for token in decl.inputs:
                producer = self.grammar.producer_of(token)
                source = axiom if producer is None else producer.name
                graph.add_edge(source, decl.name, token=token)
        return graph

    def execution_order(self) -> list[str]:
        """Deterministic topological order of the detectors."""
        graph = self.dependency_graph()
        order = list(nx.lexicographical_topological_sort(graph))
        return [name for name in order if name != self.grammar.axiom]

    def descendants_of(self, names: set[str]) -> set[str]:
        """The given detectors plus everything downstream of them."""
        graph = self.dependency_graph()
        out = set(names)
        for name in names:
            if name not in graph:
                raise FeatureGrammarError(f"unknown detector {name!r}")
            out.update(nx.descendants(graph, name))
        out.discard(self.grammar.axiom)
        return out

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #

    def _check_registry(self) -> None:
        missing = [d.name for d in self.grammar.detectors if d.name not in self.registry]
        if missing:
            raise FeatureGrammarError(
                f"unregistered detector implementations: {missing}"
            )

    def _execute(
        self,
        name: str,
        context: IndexingContext,
        deadline_at: float | None,
        skipped: dict[str, str],
        health: IndexingHealthReport,
    ) -> DetectorOutcome:
        """Run one detector under the runtime and record its outcome.

        Consults the skip map, quarantine state and deadline budget
        before invoking the runner; on failure/quarantine, marks the
        detector's DAG descendants to be skipped (attributed to *name*).
        Isolation consequences — rollback vs degraded commit — are the
        caller's.
        """
        runner = self.runner
        if name in skipped:
            outcome = DetectorOutcome(
                name=name, status=DetectorStatus.SKIPPED, skipped_because=skipped[name]
            )
        elif runner.is_quarantined(name):
            outcome = DetectorOutcome(name=name, status=DetectorStatus.QUARANTINED)
        elif deadline_at is not None and runner.clock() >= deadline_at:
            outcome = DetectorOutcome(
                name=name, status=DetectorStatus.SKIPPED, skipped_because="deadline"
            )
        else:
            outcome = runner.run(name, context, deadline_at=deadline_at)
            runner.record_video_result(name, failed=outcome.status is not DetectorStatus.OK)
        if outcome.status in (DetectorStatus.FAILED, DetectorStatus.QUARANTINED):
            for descendant in self.descendants_of({name}) - {name}:
                skipped.setdefault(descendant, name)
        health.outcomes[name] = outcome
        return outcome

    def _raise_outcome(self, outcome: DetectorOutcome):
        """Re-raise the failure behind *outcome* (``fail_fast`` path)."""
        if outcome.error is not None:
            raise outcome.error
        raise DeadlineExceededError(
            f"deadline budget exhausted at detector {outcome.name!r}",
            detector=outcome.name,
        )

    def index_video(self, clip) -> IndexingContext:
        """Run the full pipeline over *clip* and cache all outputs.

        *clip* is any raw multimedia object exposing ``name``, ``fps``
        and ``__len__`` — a video clip, or an audio signal for grammars
        declaring ``AXIOM audio``.

        Under ``fail_fast`` a failing detector rolls the whole video
        back (no trace in the meta-index) and re-raises; under
        ``skip_subtree``/``quarantine`` the video is committed with the
        failing subtree's meta-data missing and its raw-layer record
        flagged degraded.  The pass's health report is available as
        ``context.health``, :attr:`last_health` and :meth:`health_of`.
        """
        self._check_registry()
        if clip.name in self._states:
            raise ValueError(
                f"video {clip.name!r} already indexed; use revalidate() for updates"
            )
        policy = self.policy
        video = self.model.add_video(clip.name, fps=clip.fps, n_frames=len(clip))
        context = IndexingContext(
            clip=clip,
            model=self.model,
            video_id=video.video_id,
            axiom=self.grammar.axiom,
        )
        health = IndexingHealthReport(video_name=clip.name)
        started = self.runner.clock()
        deadline_at = started + policy.deadline if policy.deadline is not None else None
        outputs: dict[str, dict[str, object]] = {}
        versions: dict[str, int] = {}
        skipped: dict[str, str] = {}
        for name in self.execution_order():
            outcome = self._execute(name, context, deadline_at, skipped, health)
            if outcome.status is DetectorStatus.OK:
                decl = self.grammar.detector(name)
                outputs[name] = {
                    token: context.tokens.get(token) for token in decl.outputs
                }
                versions[name] = self.registry.version(name)
            elif policy.isolation is IsolationPolicy.FAIL_FAST:
                # A crashing detector must not leave a half-indexed video
                # in the meta-index: roll the raw-layer record (and any
                # partial meta-data) back so the video can be retried.
                health.degraded = True
                health.elapsed = self.runner.clock() - started
                self.last_health = health
                self.model.remove_video(video.video_id)
                self._raise_outcome(outcome)
        health.elapsed = self.runner.clock() - started
        health.degraded = len(health.ok) < len(health.outcomes)
        if health.degraded:
            self.model.mark_degraded(video.video_id)
        context.health = health
        self.last_health = health
        self._states[clip.name] = _VideoState(
            clip=clip, context=context, outputs=outputs, versions=versions, health=health
        )
        return context

    @property
    def indexed_videos(self) -> list[str]:
        return sorted(self._states)

    def context_of(self, video_name: str) -> IndexingContext:
        return self._states[video_name].context

    def health_of(self, video_name: str) -> IndexingHealthReport | None:
        """Health report of the last pass over *video_name*."""
        return self._states[video_name].health

    # ------------------------------------------------------------------ #
    # Incremental revalidation
    # ------------------------------------------------------------------ #

    def stale_detectors(self, video_name: str) -> set[str]:
        """Detectors whose cached output cannot be served.

        Either the registry version is newer than the cached one, or the
        detector has no cached output at all — it failed or was skipped
        when the video was (degraded-)indexed, so revalidation retries
        it.
        """
        state = self._states[video_name]
        return {
            decl.name
            for decl in self.grammar.detectors
            if state.versions.get(decl.name) != self.registry.version(decl.name)
        }

    def revalidate(self, video_name: str) -> RevalidationReport:
        """Re-run only stale detectors (and descendants) for one video.

        Unaffected detectors contribute their cached token outputs, so
        downstream detectors see exactly the inputs a full run would.

        The pass is *crash-consistent*: re-runs are staged and committed
        to the cached state only when the pass completes.  Under
        ``fail_fast`` a failing detector leaves the cached outputs,
        versions and context exactly as they were; under the skip
        policies the pass commits, the failing subtree stays stale (so a
        later revalidation retries it) and the video's degraded flag
        tracks whether every detector now has meta-data.
        """
        self._check_registry()
        if video_name not in self._states:
            raise KeyError(f"video {video_name!r} was never indexed")
        state = self._states[video_name]
        policy = self.policy
        affected = self.descendants_of(self.stale_detectors(video_name))
        report = RevalidationReport()
        if not affected:
            report.reused = {name: 1 for name in state.versions}
            return report

        context = IndexingContext(
            clip=state.clip,
            model=self.model,
            video_id=state.context.video_id,
            axiom=self.grammar.axiom,
        )
        health = IndexingHealthReport(video_name=video_name)
        report.health = health
        started = self.runner.clock()
        deadline_at = started + policy.deadline if policy.deadline is not None else None
        staged_outputs: dict[str, dict[str, object]] = {}
        staged_versions: dict[str, int] = {}
        skipped: dict[str, str] = {}
        for name in self.execution_order():
            decl = self.grammar.detector(name)
            if name not in affected:
                staged_outputs[name] = state.outputs[name]
                staged_versions[name] = state.versions[name]
                for token, value in state.outputs[name].items():
                    context.tokens[token] = value
                report.reused[name] = report.reused.get(name, 0) + 1
                continue
            outcome = self._execute(name, context, deadline_at, skipped, health)
            if outcome.status is DetectorStatus.OK:
                staged_outputs[name] = {
                    token: context.tokens.get(token) for token in decl.outputs
                }
                staged_versions[name] = self.registry.version(name)
                report.executed[name] = report.executed.get(name, 0) + 1
            elif policy.isolation is IsolationPolicy.FAIL_FAST:
                # Crash consistency: nothing staged is committed, the
                # cached outputs/versions/context are untouched.
                health.elapsed = self.runner.clock() - started
                self.last_health = health
                self._raise_outcome(outcome)
            # Skip policies: the detector keeps no staged entry, so it
            # stays stale and a later revalidation retries it.
        health.elapsed = self.runner.clock() - started
        health.degraded = len(health.ok) < len(health.outcomes)
        state.outputs = staged_outputs
        state.versions = staged_versions
        state.context = context
        state.health = health
        context.health = health
        self.model.mark_degraded(state.context.video_id, degraded=health.degraded)
        self.last_health = health
        return report

    def revalidate_all(self) -> RevalidationReport:
        """Revalidate every indexed video; reports are merged."""
        merged = RevalidationReport()
        for video_name in self.indexed_videos:
            report = self.revalidate(video_name)
            for name, count in report.executed.items():
                merged.executed[name] = merged.executed.get(name, 0) + count
            for name, count in report.reused.items():
                merged.reused[name] = merged.reused.get(name, 0) + count
        return merged
