"""The Feature Detector Engine.

Generated from a feature grammar, the FDE:

1. derives the detector dependency DAG (Figure 1 of the paper),
2. schedules detectors in topological order to index a video,
3. caches each detector's token outputs per video, and
4. *revalidates incrementally*: when a detector implementation changes
   (version bump), only that detector and its descendants re-run;
   everything upstream is served from the cache.  This is the Acoi
   pay-off the E8 benchmark quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.model import CobraModel
from repro.grammar.detectors import DetectorRegistry, IndexingContext
from repro.grammar.grammar import FeatureGrammar, FeatureGrammarError
__all__ = ["FeatureDetectorEngine", "RevalidationReport"]


@dataclass
class RevalidationReport:
    """Work accounting of a revalidation pass.

    Attributes:
        executed: detector invocation count (per detector name).
        reused: cache-hit count (per detector name).
    """

    executed: dict[str, int] = field(default_factory=dict)
    reused: dict[str, int] = field(default_factory=dict)

    @property
    def total_executed(self) -> int:
        return sum(self.executed.values())

    @property
    def total_reused(self) -> int:
        return sum(self.reused.values())


@dataclass
class _VideoState:
    """Cached indexing state of one multimedia object."""

    clip: object
    context: IndexingContext
    outputs: dict[str, dict[str, object]]  # detector -> {token: value}
    versions: dict[str, int]  # detector -> registry version used


class FeatureDetectorEngine:
    """The parser the feature grammar generates.

    Args:
        grammar: the validated feature grammar.
        registry: detector implementations; every grammar detector must
            be registered before indexing.
        model: the COBRA meta-index to populate (a fresh one by default).
    """

    def __init__(
        self,
        grammar: FeatureGrammar,
        registry: DetectorRegistry,
        model: CobraModel | None = None,
    ):
        grammar.validate()
        self.grammar = grammar
        self.registry = registry
        self.model = model if model is not None else CobraModel()
        self._states: dict[str, _VideoState] = {}

    # ------------------------------------------------------------------ #
    # The dependency DAG (Figure 1)
    # ------------------------------------------------------------------ #

    def dependency_graph(self) -> nx.DiGraph:
        """Detector dependency DAG.

        Nodes are detectors plus the ``video`` axiom; an edge ``a -> b``
        means b consumes a token a produces.  Edges carry the token as
        the ``token`` attribute; nodes carry ``kind`` and ``guard``.
        """
        graph = nx.DiGraph()
        axiom = self.grammar.axiom
        graph.add_node(axiom, kind="axiom", guard=None)
        for decl in self.grammar.detectors:
            graph.add_node(decl.name, kind=decl.kind, guard=decl.guard)
        for decl in self.grammar.detectors:
            for token in decl.inputs:
                producer = self.grammar.producer_of(token)
                source = axiom if producer is None else producer.name
                graph.add_edge(source, decl.name, token=token)
        return graph

    def execution_order(self) -> list[str]:
        """Deterministic topological order of the detectors."""
        graph = self.dependency_graph()
        order = list(nx.lexicographical_topological_sort(graph))
        return [name for name in order if name != self.grammar.axiom]

    def descendants_of(self, names: set[str]) -> set[str]:
        """The given detectors plus everything downstream of them."""
        graph = self.dependency_graph()
        out = set(names)
        for name in names:
            if name not in graph:
                raise FeatureGrammarError(f"unknown detector {name!r}")
            out.update(nx.descendants(graph, name))
        out.discard(self.grammar.axiom)
        return out

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #

    def _check_registry(self) -> None:
        missing = [d.name for d in self.grammar.detectors if d.name not in self.registry]
        if missing:
            raise FeatureGrammarError(
                f"unregistered detector implementations: {missing}"
            )

    def index_video(self, clip) -> IndexingContext:
        """Run the full pipeline over *clip* and cache all outputs.

        *clip* is any raw multimedia object exposing ``name``, ``fps``
        and ``__len__`` — a video clip, or an audio signal for grammars
        declaring ``AXIOM audio``.
        """
        self._check_registry()
        if clip.name in self._states:
            raise ValueError(
                f"video {clip.name!r} already indexed; use revalidate() for updates"
            )
        video = self.model.add_video(clip.name, fps=clip.fps, n_frames=len(clip))
        context = IndexingContext(
            clip=clip,
            model=self.model,
            video_id=video.video_id,
            axiom=self.grammar.axiom,
        )
        outputs: dict[str, dict[str, object]] = {}
        versions: dict[str, int] = {}
        try:
            for name in self.execution_order():
                self.registry.run(name, context)
                decl = self.grammar.detector(name)
                outputs[name] = {
                    token: context.tokens.get(token) for token in decl.outputs
                }
                versions[name] = self.registry.version(name)
        except Exception:
            # A crashing detector must not leave a half-indexed video in
            # the meta-index: roll the raw-layer record (and any partial
            # meta-data) back so the video can be retried cleanly.
            self.model.remove_video(video.video_id)
            raise
        self._states[clip.name] = _VideoState(
            clip=clip, context=context, outputs=outputs, versions=versions
        )
        return context

    @property
    def indexed_videos(self) -> list[str]:
        return sorted(self._states)

    def context_of(self, video_name: str) -> IndexingContext:
        return self._states[video_name].context

    # ------------------------------------------------------------------ #
    # Incremental revalidation
    # ------------------------------------------------------------------ #

    def stale_detectors(self, video_name: str) -> set[str]:
        """Detectors whose registry version is newer than the cached one."""
        state = self._states[video_name]
        return {
            name
            for name, used in state.versions.items()
            if self.registry.version(name) != used
        }

    def revalidate(self, video_name: str) -> RevalidationReport:
        """Re-run only stale detectors (and descendants) for one video.

        Unaffected detectors contribute their cached token outputs, so
        downstream detectors see exactly the inputs a full run would.
        """
        self._check_registry()
        if video_name not in self._states:
            raise KeyError(f"video {video_name!r} was never indexed")
        state = self._states[video_name]
        affected = self.descendants_of(self.stale_detectors(video_name))
        report = RevalidationReport()
        if not affected:
            report.reused = {name: 1 for name in state.versions}
            return report

        context = IndexingContext(
            clip=state.clip,
            model=self.model,
            video_id=state.context.video_id,
            axiom=self.grammar.axiom,
        )
        for name in self.execution_order():
            decl = self.grammar.detector(name)
            if name in affected:
                self.registry.run(name, context)
                state.outputs[name] = {
                    token: context.tokens.get(token) for token in decl.outputs
                }
                state.versions[name] = self.registry.version(name)
                report.executed[name] = report.executed.get(name, 0) + 1
            else:
                for token, value in state.outputs[name].items():
                    context.tokens[token] = value
                report.reused[name] = report.reused.get(name, 0) + 1
        state.context = context
        return report

    def revalidate_all(self) -> RevalidationReport:
        """Revalidate every indexed video; reports are merged."""
        merged = RevalidationReport()
        for video_name in self.indexed_videos:
            report = self.revalidate(video_name)
            for name, count in report.executed.items():
                merged.executed[name] = merged.executed.get(name, 0) + count
            for name, count in report.reused.items():
                merged.reused[name] = merged.reused.get(name, 0) + count
        return merged
