"""The Feature Detector Engine.

Generated from a feature grammar, the FDE:

1. derives the detector dependency DAG (Figure 1 of the paper),
2. schedules detectors in deterministic topological *waves* — mutually
   independent detectors run concurrently when
   :attr:`~repro.grammar.runtime.RunPolicy.max_workers` allows,
3. caches each detector's token outputs per video, and
4. *revalidates incrementally*: when a detector implementation changes
   (version bump), only that detector and its descendants re-run;
   everything upstream is served from the cache.  This is the Acoi
   pay-off the E8 benchmark quantifies.

Every detector invocation goes through the fault-tolerance runtime
(:mod:`repro.grammar.runtime`): retries with exponential backoff for
transient failures, cooperative per-attempt timeouts, a per-video
deadline budget, and one of three isolation policies.  The default
policy (``fail_fast``, no retries) reproduces the historical
all-or-nothing behaviour exactly; ``skip_subtree`` and ``quarantine``
commit videos *degraded* — upstream meta-data kept, the failing
detector's DAG subtree skipped — so one bad detector no longer erases a
whole video from the library.

Parallelism is deterministic by construction.  Within one video the
wave scheduler (:mod:`repro.grammar.schedule`) overlaps detector
*compute* while a turnstile serialises meta-index mutations in the
canonical order, so identifiers, health reports and snapshots are
byte-identical to a sequential pass.  Across videos,
:meth:`FeatureDetectorEngine.stage_video` runs a whole pass against a
private scratch model so worker threads never contend on the shared
meta-index; a single committer then replays stages in plan order via
:meth:`FeatureDetectorEngine.commit_staged`, which reproduces the
sequential identifier assignment exactly.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import networkx as nx

from repro.core.model import CobraModel
from repro.grammar.detectors import DetectorRegistry, IndexingContext
from repro.grammar.grammar import FeatureGrammar, FeatureGrammarError
from repro.grammar.runtime import (
    DeadlineExceededError,
    DetectorOutcome,
    DetectorRunner,
    DetectorStatus,
    IndexingHealthReport,
    IsolationPolicy,
    RunPolicy,
)
from repro.grammar.schedule import GatedModel, WaveTurnstile, wave_partition

__all__ = ["FeatureDetectorEngine", "RevalidationReport", "StagedVideo"]


@dataclass
class RevalidationReport:
    """Work accounting of a revalidation pass.

    Attributes:
        executed: detector invocation count (per detector name).
        reused: cache-hit count (per detector name).
        health: per-detector outcomes of the executed subset (``None``
            for merged multi-video reports).
    """

    executed: dict[str, int] = field(default_factory=dict)
    reused: dict[str, int] = field(default_factory=dict)
    health: IndexingHealthReport | None = None

    @property
    def total_executed(self) -> int:
        return sum(self.executed.values())

    @property
    def total_reused(self) -> int:
        return sum(self.reused.values())


@dataclass
class _VideoState:
    """Cached indexing state of one multimedia object."""

    clip: object
    context: IndexingContext
    outputs: dict[str, dict[str, object]]  # detector -> {token: value}
    versions: dict[str, int]  # detector -> registry version used
    health: IndexingHealthReport | None = None


@dataclass
class StagedVideo:
    """One full indexing pass, run against a private scratch model.

    Produced by :meth:`FeatureDetectorEngine.stage_video` on any worker
    thread; consumed by :meth:`FeatureDetectorEngine.commit_staged` on
    the committer.  Nothing here has touched the engine's shared state:
    entity identifiers are scratch-local, health accounting is recorded
    in :attr:`results` instead of applied to the runner, and the
    quarantine checks the pass made are remembered in
    :attr:`decisions` so the committer can detect that another video's
    commit changed them in the meantime.

    Attributes:
        clip: the raw multimedia object the pass indexed.
        model: the scratch :class:`~repro.core.model.CobraModel` holding
            the pass's entities (scratch-local identifiers).
        video_id: the raw-layer id inside the scratch model.
        context: the pass's indexing context (scratch model, scratch id).
        health: the pass's health report.
        outputs: per-detector token outputs (values may embed
            scratch-local identifiers — see :meth:`commit_staged`).
        versions: per-detector registry versions used.
        results: deferred ``record_video_result`` calls as
            ``(detector, failed)`` pairs, in canonical order.
        decisions: quarantine state observed per preflighted detector;
            the committer revalidates these against the live runner.
        failure: the first non-OK outcome under ``fail_fast``, else
            ``None``.
    """

    clip: object
    model: CobraModel
    video_id: int
    context: IndexingContext
    health: IndexingHealthReport
    outputs: dict[str, dict[str, object]]
    versions: dict[str, int]
    results: list[tuple[str, bool]]
    decisions: dict[str, bool]
    failure: DetectorOutcome | None


class FeatureDetectorEngine:
    """The parser the feature grammar generates.

    Args:
        grammar: the validated feature grammar.
        registry: detector implementations; every grammar detector must
            be registered before indexing.
        model: the COBRA meta-index to populate (a fresh one by default).
        policy: fault-tolerance configuration (default: ``fail_fast``
            with no retries — the historical behaviour).
        runner: full :class:`~repro.grammar.runtime.DetectorRunner`
            override (injectable clock/sleep for tests); *policy* is
            ignored when given.
    """

    def __init__(
        self,
        grammar: FeatureGrammar,
        registry: DetectorRegistry,
        model: CobraModel | None = None,
        policy: RunPolicy | None = None,
        runner: DetectorRunner | None = None,
    ):
        grammar.validate()
        self.grammar = grammar
        self.registry = registry
        self.model = model if model is not None else CobraModel()
        self.runner = runner if runner is not None else DetectorRunner(registry, policy)
        if self.runner.registry is not registry:
            raise ValueError("runner must wrap the engine's registry")
        self.last_health: IndexingHealthReport | None = None
        self._states: dict[str, _VideoState] = {}

    @property
    def policy(self) -> RunPolicy:
        return self.runner.policy

    # ------------------------------------------------------------------ #
    # Runner-state persistence (quarantine across restarts)
    # ------------------------------------------------------------------ #

    def export_runner_state(self) -> dict:
        """The runner's quarantine state, for saving next to the meta-index."""
        return self.runner.export_state()

    def restore_runner_state(self, state: dict | None) -> None:
        """Adopt persisted quarantine state (``None`` is a no-op).

        A detector quarantined before the previous process died stays
        quarantined here until its registered version changes.
        """
        self.runner.restore_state(state)

    # ------------------------------------------------------------------ #
    # The dependency DAG (Figure 1)
    # ------------------------------------------------------------------ #

    def dependency_graph(self) -> nx.DiGraph:
        """Detector dependency DAG.

        Nodes are detectors plus the ``video`` axiom; an edge ``a -> b``
        means b consumes a token a produces.  Edges carry the token as
        the ``token`` attribute; nodes carry ``kind`` and ``guard``.
        """
        graph = nx.DiGraph()
        axiom = self.grammar.axiom
        graph.add_node(axiom, kind="axiom", guard=None)
        for decl in self.grammar.detectors:
            graph.add_node(decl.name, kind=decl.kind, guard=decl.guard)
        for decl in self.grammar.detectors:
            for token in decl.inputs:
                producer = self.grammar.producer_of(token)
                source = axiom if producer is None else producer.name
                graph.add_edge(source, decl.name, token=token)
        return graph

    def waves(self) -> list[list[str]]:
        """The detector DAG partitioned into dependency waves.

        Detectors of one wave are mutually independent (their producers
        all live in earlier waves) and may run concurrently; the
        concatenation of the waves is :meth:`execution_order`.
        """
        return wave_partition(self.dependency_graph(), self.grammar.axiom)

    def execution_order(self) -> list[str]:
        """Deterministic topological order of the detectors (wave-major)."""
        return [name for wave in self.waves() for name in wave]

    def descendants_of(self, names: set[str]) -> set[str]:
        """The given detectors plus everything downstream of them."""
        graph = self.dependency_graph()
        out = set(names)
        for name in names:
            if name not in graph:
                raise FeatureGrammarError(f"unknown detector {name!r}")
            out.update(nx.descendants(graph, name))
        out.discard(self.grammar.axiom)
        return out

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #

    def _check_registry(self) -> None:
        missing = [d.name for d in self.grammar.detectors if d.name not in self.registry]
        if missing:
            raise FeatureGrammarError(
                f"unregistered detector implementations: {missing}"
            )

    def _preflight(
        self,
        name: str,
        deadline_at: float | None,
        skipped: dict[str, str],
        decisions: dict[str, bool] | None,
    ) -> DetectorOutcome | None:
        """Decide whether *name* runs at all, without invoking it.

        Mirrors the sequential check order — skip map, quarantine,
        deadline — and returns the terminal outcome when the detector
        must not run, or ``None`` when it is runnable.  Quarantine
        checks are recorded in *decisions* (when given) so a staged pass
        can later prove its checks still match the live runner.
        """
        runner = self.runner
        if name in skipped:
            return DetectorOutcome(
                name=name, status=DetectorStatus.SKIPPED, skipped_because=skipped[name]
            )
        quarantined = runner.is_quarantined(name)
        if decisions is not None:
            decisions[name] = quarantined
        if quarantined:
            return DetectorOutcome(name=name, status=DetectorStatus.QUARANTINED)
        if deadline_at is not None and runner.clock() >= deadline_at:
            return DetectorOutcome(
                name=name, status=DetectorStatus.SKIPPED, skipped_because="deadline"
            )
        return None

    def _settle(
        self,
        name: str,
        outcome: DetectorOutcome,
        ran: bool,
        skipped: dict[str, str],
        health: IndexingHealthReport,
        record_result,
    ) -> DetectorOutcome:
        """Account one detector outcome (always in canonical order)."""
        if ran:
            record_result(name, outcome.status is not DetectorStatus.OK)
        if outcome.status in (DetectorStatus.FAILED, DetectorStatus.QUARANTINED):
            for descendant in self.descendants_of({name}) - {name}:
                skipped.setdefault(descendant, name)
        health.outcomes[name] = outcome
        return outcome

    def _execute(
        self,
        name: str,
        context: IndexingContext,
        deadline_at: float | None,
        skipped: dict[str, str],
        health: IndexingHealthReport,
        record_result=None,
        decisions: dict[str, bool] | None = None,
    ) -> DetectorOutcome:
        """Run one detector under the runtime and record its outcome.

        Consults the skip map, quarantine state and deadline budget
        before invoking the runner; on failure/quarantine, marks the
        detector's DAG descendants to be skipped (attributed to *name*).
        Isolation consequences — rollback vs degraded commit — are the
        caller's.
        """
        if record_result is None:
            record_result = self._record_live
        outcome = self._preflight(name, deadline_at, skipped, decisions)
        ran = outcome is None
        if ran:
            outcome = self.runner.run(name, context, deadline_at=deadline_at)
        return self._settle(name, outcome, ran, skipped, health, record_result)

    def _record_live(self, name: str, failed: bool) -> None:
        self.runner.record_video_result(name, failed=failed)

    def _run_gated(
        self,
        name: str,
        context: IndexingContext,
        gate: WaveTurnstile,
        deadline_at: float | None,
    ) -> DetectorOutcome:
        """Thread body of one wave member.

        The detector gets a private context copy (so
        ``current_detector`` attribution cannot race) whose model is
        gated on the wave turnstile: compute overlaps freely, but the
        first meta-index access waits for the detector's canonical turn.
        """
        gated = replace(context, model=GatedModel(context.model, gate, name))
        try:
            return self.runner.run(name, gated, deadline_at=deadline_at)
        finally:
            gate.finish(name)

    def _run_wave(
        self,
        wave: list[str],
        context: IndexingContext,
        deadline_at: float | None,
        skipped: dict[str, str],
        health: IndexingHealthReport,
        record_result,
        decisions: dict[str, bool] | None,
        on_ok,
    ) -> DetectorOutcome | None:
        """Run one wave concurrently; account results in canonical order.

        All in-flight work is drained before any outcome is settled, so
        a ``fail_fast`` failure never leaves threads running.  Returns
        the first non-OK outcome under ``fail_fast``, else ``None``.
        """
        preflighted: dict[str, DetectorOutcome] = {}
        runnable: list[str] = []
        for name in wave:
            outcome = self._preflight(name, deadline_at, skipped, decisions)
            if outcome is None:
                runnable.append(name)
            else:
                preflighted[name] = outcome
        results: dict[str, DetectorOutcome] = {}
        if len(runnable) == 1:
            only = runnable[0]
            results[only] = self.runner.run(only, context, deadline_at=deadline_at)
        elif runnable:
            gate = WaveTurnstile(runnable)
            workers = min(self.policy.max_workers, len(runnable))
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="fde-wave"
            ) as pool:
                futures = [
                    (name, pool.submit(self._run_gated, name, context, gate, deadline_at))
                    for name in runnable
                ]
                for name, future in futures:
                    results[name] = future.result()
        for name in wave:
            if name in preflighted:
                outcome, ran = preflighted[name], False
            else:
                outcome, ran = results[name], True
            self._settle(name, outcome, ran, skipped, health, record_result)
            if (
                outcome.status is not DetectorStatus.OK
                and self.policy.isolation is IsolationPolicy.FAIL_FAST
            ):
                return outcome
            if outcome.status is DetectorStatus.OK and on_ok is not None:
                on_ok(name)
        return None

    def _run_subset(
        self,
        names: set[str],
        context: IndexingContext,
        deadline_at: float | None,
        skipped: dict[str, str],
        health: IndexingHealthReport,
        record_result,
        decisions: dict[str, bool] | None = None,
        on_ok=None,
    ) -> DetectorOutcome | None:
        """Run the given detectors in wave order; return the fatal outcome.

        With ``max_workers == 1`` this is the historical sequential
        loop; otherwise each wave's runnable detectors share a thread
        pool, gated so model mutations stay in canonical order.  Either
        way the outcomes recorded in *health*, the skip-map updates and
        the ``record_result`` calls are identical.
        """
        waves = [[name for name in wave if name in names] for wave in self.waves()]
        if self.policy.max_workers <= 1:
            for wave in waves:
                for name in wave:
                    outcome = self._execute(
                        name, context, deadline_at, skipped, health,
                        record_result, decisions,
                    )
                    if (
                        outcome.status is not DetectorStatus.OK
                        and self.policy.isolation is IsolationPolicy.FAIL_FAST
                    ):
                        return outcome
                    if outcome.status is DetectorStatus.OK and on_ok is not None:
                        on_ok(name)
            return None
        for wave in waves:
            if not wave:
                continue
            failure = self._run_wave(
                wave, context, deadline_at, skipped, health,
                record_result, decisions, on_ok,
            )
            if failure is not None:
                return failure
        return None

    def _run_video_pass(
        self,
        model: CobraModel,
        clip,
        record_result=None,
        decisions: dict[str, bool] | None = None,
    ) -> StagedVideo:
        """One full indexing pass over *clip* against *model*.

        The shared core of :meth:`index_video` (live model, live runner
        accounting) and :meth:`stage_video` (scratch model, deferred
        accounting).  When *record_result* is ``None``, the
        ``record_video_result`` calls are deferred into the returned
        stage's :attr:`~StagedVideo.results` instead of being applied.
        """
        policy = self.policy
        results: list[tuple[str, bool]] = []
        if record_result is None:

            def record_result(name: str, failed: bool) -> None:
                results.append((name, failed))

        video = model.add_video(clip.name, fps=clip.fps, n_frames=len(clip))
        context = IndexingContext(
            clip=clip,
            model=model,
            video_id=video.video_id,
            axiom=self.grammar.axiom,
        )
        health = IndexingHealthReport(video_name=clip.name)
        started = self.runner.clock()
        deadline_at = started + policy.deadline if policy.deadline is not None else None
        outputs: dict[str, dict[str, object]] = {}
        versions: dict[str, int] = {}
        skipped: dict[str, str] = {}

        def on_ok(name: str) -> None:
            decl = self.grammar.detector(name)
            outputs[name] = {
                token: context.tokens.get(token) for token in decl.outputs
            }
            versions[name] = self.registry.version(name)

        failure = self._run_subset(
            set(self.execution_order()), context, deadline_at, skipped, health,
            record_result, decisions, on_ok,
        )
        health.elapsed = self.runner.clock() - started
        health.degraded = failure is not None or len(health.ok) < len(health.outcomes)
        context.health = health
        return StagedVideo(
            clip=clip,
            model=model,
            video_id=video.video_id,
            context=context,
            health=health,
            outputs=outputs,
            versions=versions,
            results=results,
            decisions=decisions if decisions is not None else {},
            failure=failure,
        )

    def _raise_outcome(self, outcome: DetectorOutcome):
        """Re-raise the failure behind *outcome* (``fail_fast`` path)."""
        if outcome.error is not None:
            raise outcome.error
        raise DeadlineExceededError(
            f"deadline budget exhausted at detector {outcome.name!r}",
            detector=outcome.name,
        )

    def index_video(self, clip) -> IndexingContext:
        """Run the full pipeline over *clip* and cache all outputs.

        *clip* is any raw multimedia object exposing ``name``, ``fps``
        and ``__len__`` — a video clip, or an audio signal for grammars
        declaring ``AXIOM audio``.

        Under ``fail_fast`` a failing detector rolls the whole video
        back (no trace in the meta-index) and re-raises; under
        ``skip_subtree``/``quarantine`` the video is committed with the
        failing subtree's meta-data missing and its raw-layer record
        flagged degraded.  The pass's health report is available as
        ``context.health``, :attr:`last_health` and :meth:`health_of`.

        With ``policy.max_workers > 1`` independent detectors of each
        dependency wave run concurrently; results are byte-identical to
        a sequential pass (see :mod:`repro.grammar.schedule`).
        """
        self._check_registry()
        if clip.name in self._states:
            raise ValueError(
                f"video {clip.name!r} already indexed; use revalidate() for updates"
            )
        passed = self._run_video_pass(self.model, clip, record_result=self._record_live)
        self.last_health = passed.health
        if passed.failure is not None:
            # A crashing detector must not leave a half-indexed video
            # in the meta-index: roll the raw-layer record (and any
            # partial meta-data) back so the video can be retried.
            self.model.remove_video(passed.video_id)
            self._raise_outcome(passed.failure)
        if passed.health.degraded:
            self.model.mark_degraded(passed.video_id)
        self._states[clip.name] = _VideoState(
            clip=clip,
            context=passed.context,
            outputs=passed.outputs,
            versions=passed.versions,
            health=passed.health,
        )
        return passed.context

    # ------------------------------------------------------------------ #
    # Staged indexing (per-video parallelism)
    # ------------------------------------------------------------------ #

    def stage_video(self, clip) -> StagedVideo:
        """Run a full pass over *clip* against a private scratch model.

        Safe to call from any worker thread: nothing engine-shared is
        mutated.  Quarantine checks go against the live runner but the
        observed answers are recorded (:attr:`StagedVideo.decisions`)
        and re-validated at commit; health accounting is deferred into
        :attr:`StagedVideo.results`.  Commit stages in plan order via
        :meth:`commit_staged` to reproduce a sequential run exactly.
        """
        self._check_registry()
        if clip.name in self._states:
            raise ValueError(
                f"video {clip.name!r} already indexed; use revalidate() for updates"
            )
        return self._run_video_pass(
            CobraModel(), clip, record_result=None, decisions={}
        )

    def commit_staged(self, staged: StagedVideo) -> IndexingContext:
        """Adopt a staged pass into the engine (committer thread only).

        Replays the scratch model into the shared one layer by layer —
        identifier assignment consumes exactly the ranges a sequential
        :meth:`index_video` call at this point would — then applies the
        deferred health accounting in canonical order.

        If another video's commit changed the quarantine state a staged
        pass relied on (:attr:`StagedVideo.decisions` no longer match
        the live runner), the stage is discarded and the video is
        re-indexed in place, which at this plan position is exactly what
        a sequential run would have produced.

        The committed video's cached detector outputs are reset (token
        values from the stage may embed scratch-local identifiers), so
        the first :meth:`revalidate` re-runs every detector rather than
        serving poisoned caches.

        Under ``fail_fast`` a staged failure is re-raised here, after
        consuming the same identifier ranges a sequential failing pass
        would have burned, so later videos keep byte-identical ids.
        """
        name = staged.clip.name
        if name in self._states:
            raise ValueError(
                f"video {name!r} already indexed; use revalidate() for updates"
            )
        moved = any(
            self.runner.is_quarantined(detector) != quarantined
            for detector, quarantined in staged.decisions.items()
        )
        if moved:
            return self.index_video(staged.clip)
        for detector, failed in staged.results:
            self.runner.record_video_result(detector, failed=failed)
        self.last_health = staged.health
        video_ids = self._merge_model(staged.model)
        video_id = video_ids[staged.video_id]
        if staged.failure is not None:
            self.model.remove_video(video_id)
            self._raise_outcome(staged.failure)
        if staged.health.degraded:
            self.model.mark_degraded(video_id)
        context = IndexingContext(
            clip=staged.clip,
            model=self.model,
            video_id=video_id,
            axiom=self.grammar.axiom,
        )
        context.health = staged.health
        self._states[name] = _VideoState(
            clip=staged.clip,
            context=context,
            outputs={},
            versions={},
            health=staged.health,
        )
        return context

    def _merge_model(self, scratch: CobraModel) -> dict[int, int]:
        """Replay *scratch* into the shared model, layer by layer.

        Identifiers are handed out by the shared model's per-layer
        counters in scratch insertion order — the same order the
        detectors created them under the wave turnstile — so the merged
        entities get exactly the ids a sequential pass would have
        assigned.  Returns the scratch→shared raw-layer id map.
        """
        model = self.model
        video_ids: dict[int, int] = {}
        shot_ids: dict[int, int] = {}
        object_ids: dict[int, int] = {}
        for video in scratch.videos:
            merged = model.add_video(
                video.name, fps=video.fps, n_frames=video.n_frames,
                match_id=video.match_id,
            )
            if video.degraded:
                model.mark_degraded(merged.video_id)
            video_ids[video.video_id] = merged.video_id
        for shot in scratch.shots:
            merged_shot = model.add_shot(
                video_ids[shot.video_id],
                start=shot.start,
                stop=shot.stop,
                category=shot.category,
                features=shot.features,
            )
            shot_ids[shot.shot_id] = merged_shot.shot_id
        for obj in scratch.objects:
            merged_obj = model.add_object(
                shot_ids[obj.shot_id],
                label=obj.label,
                trajectory=obj.trajectory,
                dominant_color=obj.dominant_color,
                mean_area=obj.mean_area,
            )
            object_ids[obj.object_id] = merged_obj.object_id
        for event in scratch.events:
            model.add_event(
                shot_ids[event.shot_id],
                label=event.label,
                start=event.start,
                stop=event.stop,
                confidence=event.confidence,
                object_id=(
                    None if event.object_id is None else object_ids[event.object_id]
                ),
            )
        return video_ids

    @property
    def indexed_videos(self) -> list[str]:
        return sorted(self._states)

    def context_of(self, video_name: str) -> IndexingContext:
        return self._states[video_name].context

    def health_of(self, video_name: str) -> IndexingHealthReport | None:
        """Health report of the last pass over *video_name*."""
        return self._states[video_name].health

    # ------------------------------------------------------------------ #
    # Incremental revalidation
    # ------------------------------------------------------------------ #

    def stale_detectors(self, video_name: str) -> set[str]:
        """Detectors whose cached output cannot be served.

        Either the registry version is newer than the cached one, or the
        detector has no cached output at all — it failed or was skipped
        when the video was (degraded-)indexed, so revalidation retries
        it.
        """
        state = self._states[video_name]
        return {
            decl.name
            for decl in self.grammar.detectors
            if state.versions.get(decl.name) != self.registry.version(decl.name)
        }

    def revalidate(self, video_name: str) -> RevalidationReport:
        """Re-run only stale detectors (and descendants) for one video.

        Unaffected detectors contribute their cached token outputs, so
        downstream detectors see exactly the inputs a full run would.

        The pass is *crash-consistent*: re-runs are staged and committed
        to the cached state only when the pass completes.  Under
        ``fail_fast`` a failing detector leaves the cached outputs,
        versions and context exactly as they were; under the skip
        policies the pass commits, the failing subtree stays stale (so a
        later revalidation retries it) and the video's degraded flag
        tracks whether every detector now has meta-data.
        """
        self._check_registry()
        if video_name not in self._states:
            raise KeyError(f"video {video_name!r} was never indexed")
        state = self._states[video_name]
        policy = self.policy
        affected = self.descendants_of(self.stale_detectors(video_name))
        report = RevalidationReport()
        if not affected:
            report.reused = {name: 1 for name in state.versions}
            return report

        context = IndexingContext(
            clip=state.clip,
            model=self.model,
            video_id=state.context.video_id,
            axiom=self.grammar.axiom,
        )
        health = IndexingHealthReport(video_name=video_name)
        report.health = health
        started = self.runner.clock()
        deadline_at = started + policy.deadline if policy.deadline is not None else None
        staged_outputs: dict[str, dict[str, object]] = {}
        staged_versions: dict[str, int] = {}
        skipped: dict[str, str] = {}
        # Serve every unaffected detector from the cache up front; each
        # token has a unique producer, so cached values cannot collide
        # with tokens the affected subset will (re)produce.
        for name in self.execution_order():
            if name in affected:
                continue
            staged_outputs[name] = state.outputs[name]
            staged_versions[name] = state.versions[name]
            for token, value in state.outputs[name].items():
                context.tokens[token] = value
            report.reused[name] = report.reused.get(name, 0) + 1

        def on_ok(name: str) -> None:
            decl = self.grammar.detector(name)
            staged_outputs[name] = {
                token: context.tokens.get(token) for token in decl.outputs
            }
            staged_versions[name] = self.registry.version(name)
            report.executed[name] = report.executed.get(name, 0) + 1

        # Skip policies: a non-OK detector keeps no staged entry, so it
        # stays stale and a later revalidation retries it.
        failure = self._run_subset(
            affected, context, deadline_at, skipped, health,
            self._record_live, None, on_ok,
        )
        if failure is not None:
            # Crash consistency: nothing staged is committed, the
            # cached outputs/versions/context are untouched.
            health.elapsed = self.runner.clock() - started
            self.last_health = health
            self._raise_outcome(failure)
        health.elapsed = self.runner.clock() - started
        health.degraded = len(health.ok) < len(health.outcomes)
        state.outputs = staged_outputs
        state.versions = staged_versions
        state.context = context
        state.health = health
        context.health = health
        self.model.mark_degraded(state.context.video_id, degraded=health.degraded)
        self.last_health = health
        return report

    def revalidate_all(self) -> RevalidationReport:
        """Revalidate every indexed video; reports are merged."""
        merged = RevalidationReport()
        for video_name in self.indexed_videos:
            report = self.revalidate(video_name)
            for name, count in report.executed.items():
                merged.executed[name] = merged.executed.get(name, 0) + count
            for name, count in report.reused.items():
                merged.reused[name] = merged.reused.get(name, 0) + count
        return merged
