"""Fault-tolerant sharded scatter-gather serving.

One :class:`~repro.library.service.LibrarySearchService` scales reads
with threads but stays one process: one GIL, one failure domain.  This
module partitions the catalog across ``N`` independent shard *worker
processes* — videos hash-assigned by name — and coordinates them from a
:class:`ShardedSearchService` that scatters each query to every healthy
shard, gathers the per-shard top-N rankings, and k-way merges them with
the :func:`~repro.library.results.merge_scene_results` discipline.

The replication scheme keeps the merge *exact*: every worker builds the
full dataset from the seed (so concept graph, page collection and text
statistics — hence scores — are global), but indexes only its assigned
videos.  A scene belongs to exactly one video and a video to exactly
one shard, so each shard's ranking is the global ranking restricted to
its slice, and the merge under the engine's total order
``(-score, video_name, start)`` is byte-identical to serving the
unsharded library.

Robustness, the point of the exercise:

- **Deadline slices.**  Each fan-out carves a per-shard sub-deadline
  from the request's :class:`~repro.budget.QueryBudget` via
  :meth:`~repro.budget.QueryBudget.slice_seconds` (durations, not
  deadlines, cross the process boundary — monotonic clocks do not);
  workers enforce it with their own local budget.
- **Health tracking + quarantine.**  Per-shard EWMA latency and
  consecutive-failure counting reuse
  :class:`~repro.library.resilience.StageBreaker`; a dead worker
  process trips its breaker immediately (:meth:`StageBreaker.trip`).
  Quarantined shards are skipped up front — their slice is *missing*,
  never waited on — and a background prober half-open-pings them (and
  respawns dead workers, which deterministically rebuild their slice
  from the seed) until they recover.
- **Hedged fan-out.**  A straggler shard past its own p95 latency
  (reservoir-estimated, floored at ``hedge_min_seconds``) gets the
  query re-issued; first response wins, duplicates are ignored.
- **Typed partial results.**  Every answer carries a
  :class:`~repro.library.results.Coverage` — which shards responded,
  which are missing.  Partial coverage is a labeled outcome, never a
  silent one.
- **Cross-shard degradation ladder.**  full coverage → partial
  coverage (>= ``min_coverage`` shards, labeled) → stale (the last
  full-coverage answer for this query, labeled with its generation
  vector) → typed rejection (``no_coverage``).
- **Generation vectors.**  Results and cache entries are keyed by the
  tuple of per-shard generations, the sharded analogue of the
  single-service generation key: a commit on any shard moves the
  vector, so stale cache hits are impossible by construction (chaos
  aside — a ``stale_generation`` shard fault makes a worker *lie*,
  which is exactly what the soak measures).

Chaos comes from :class:`repro.faults.ShardFaultSpec` plans, delivered
worker-side on query handling only (pings exempt, so probes observe
genuine recovery).
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.budget import DeadlineExceeded, QueryBudget
from repro.faults import ShardFaultSpec, ShardFaultState
from repro.library.query import LibraryQuery
from repro.library.resilience import StageBreaker
from repro.library.results import Coverage, SceneResult, merge_scene_results
from repro.library.service import LRUCache, canonical_query_key
from repro.library.stats import PERCENTILES, LatencyReservoir

__all__ = [
    "ShardHealth",
    "ShardedSearchService",
    "ShardedServedQuery",
    "ShardedStats",
    "ShardingConfig",
    "assign_shards",
    "format_sharded_stats",
    "shard_of",
]


def shard_of(video_name: str, n_shards: int) -> int:
    """The shard a video routes to — stable across processes and runs.

    CRC32, not :func:`hash`: Python string hashing is salted per
    process, and the coordinator and its workers must agree.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return zlib.crc32(video_name.encode("utf-8")) % n_shards


def assign_shards(video_names: list[str], n_shards: int) -> list[list[str]]:
    """Partition the *initial* catalog into balanced per-shard slices.

    Pure ``crc32 % n`` is lumpy on small catalogs (a 2x load skew is
    routine), which would sink near-linear indexing speedup.  Instead
    the initial set is striped in hash order: sort by
    ``(crc32(name), name)``, deal round-robin.  Deterministic in the
    name set, balanced to within one video.  Videos indexed *later*
    route by :func:`shard_of` — a single video's placement does not
    need balance, only stability.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if len(set(video_names)) != len(video_names):
        raise ValueError("duplicate video names in shard assignment")
    ordered = sorted(video_names, key=lambda n: (zlib.crc32(n.encode("utf-8")), n))
    slices: list[list[str]] = [[] for _ in range(n_shards)]
    for position, name in enumerate(ordered):
        slices[position % n_shards].append(name)
    return slices


@dataclass(frozen=True)
class ShardingConfig:
    """Every knob of the sharded serving layer.

    Attributes:
        n_shards: worker processes / catalog partitions.
        worker_threads: query-evaluation threads per worker (>= 2 lets
            a hedged duplicate overtake a per-delivery hang fault).
        cache_size: coordinator result-cache entries (keyed by
            generation vector + canonical query).
        recent_size: per-query-key stale store entries (ladder rung 3).
        budget_seconds: default per-request wall budget when the caller
            passes none (``None`` = unbounded — hedging and gather then
            wait up to ``gather_floor_seconds``).
        shard_slice: fraction of the remaining request budget each
            shard gets as its local deadline.
        gather_floor_seconds: gather/hedge horizon for unbudgeted
            requests.
        min_coverage: fewest responding shards a *partial* answer may
            be built from (ladder rung 2); fewer falls through to
            stale/reject.
        hedge: enable hedged re-issue of stragglers.
        hedge_min_seconds: hedge-trigger floor (and the trigger itself
            until a shard has latency history).
        hedge_percentile: reservoir percentile the trigger tracks.
        failure_threshold / quarantine_cooldown / breaker_alpha:
            per-shard :class:`StageBreaker` tuning (process death trips
            immediately regardless).
        probe_interval: seconds between background prober sweeps.
        restart_dead: respawn dead workers (deterministic slice
            rebuild) instead of leaving their coverage missing forever.
        partial_serving: ladder rung 2 toggle.
        stale_serving: ladder rung 3 toggle.
        start_method: multiprocessing start method (``fork`` on Linux:
            no re-import, worker inherits nothing mutable it uses).
    """

    n_shards: int = 4
    worker_threads: int = 2
    cache_size: int = 256
    recent_size: int = 256
    budget_seconds: float | None = 1.0
    shard_slice: float = 0.8
    gather_floor_seconds: float = 5.0
    min_coverage: int = 1
    hedge: bool = True
    hedge_min_seconds: float = 0.05
    hedge_percentile: float = 95.0
    failure_threshold: int = 3
    quarantine_cooldown: float = 1.0
    breaker_alpha: float = 0.2
    probe_interval: float = 0.25
    restart_dead: bool = True
    partial_serving: bool = True
    stale_serving: bool = True
    start_method: str = "fork"

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.worker_threads < 1:
            raise ValueError(f"worker_threads must be >= 1, got {self.worker_threads}")
        if not 0.0 < self.shard_slice <= 1.0:
            raise ValueError(f"shard_slice must be in (0, 1], got {self.shard_slice}")
        if not 1 <= self.min_coverage <= self.n_shards:
            raise ValueError(
                f"min_coverage must be in [1, {self.n_shards}], got {self.min_coverage}"
            )
        if self.hedge_min_seconds < 0:
            raise ValueError(
                f"hedge_min_seconds must be >= 0, got {self.hedge_min_seconds}"
            )
        if self.probe_interval <= 0:
            raise ValueError(f"probe_interval must be > 0, got {self.probe_interval}")


@dataclass(frozen=True)
class ShardedServedQuery:
    """One answer from the sharded service, with fan-out provenance.

    Attributes:
        results: merged scenes, best first (a private copy per caller).
        coverage: which shards contributed and which are missing —
            present on *every* answer, partial or not.
        generations: the per-shard generation vector the results are
            valid for (stale answers carry the older vector they were
            cached under).
        cache_hit: the coordinator cache answered (full coverage by
            construction).
        seconds: coordinator-side wall time for this request.
        hedged: hedge re-issues this request triggered.
        stale: ladder rung 3 — the last full-coverage answer for this
            query, served because live coverage fell below
            ``min_coverage``.
        rejection: set when no rung could answer (``"no_coverage"``);
            ``results`` is empty and ``coverage`` records the failed
            fan-out.
    """

    results: list[SceneResult]
    coverage: Coverage
    generations: tuple[int, ...]
    cache_hit: bool
    seconds: float
    hedged: int = 0
    stale: bool = False
    rejection: str | None = None

    @property
    def rejected(self) -> bool:
        return self.rejection is not None

    @property
    def status(self) -> str:
        """``hit`` / ``miss`` / ``partial`` / ``stale`` / ``rejected:<reason>``."""
        if self.rejection is not None:
            return f"rejected:{self.rejection}"
        if self.stale:
            return "stale"
        if not self.coverage.complete:
            return "partial"
        return "hit" if self.cache_hit else "miss"


@dataclass
class ShardHealth:
    """One shard's health snapshot (a row of ``repro health --shards``)."""

    shard: int
    alive: bool
    breaker_state: str
    generation: int
    videos: int
    queries: int
    failures: int
    hedges: int
    restarts: int
    latency: dict[str, float] = field(default_factory=dict)


@dataclass
class ShardedStats:
    """Aggregated sharded-serving statistics.

    Attributes:
        queries: requests answered (all rungs; rejections included).
        cache_hits / cache_misses: coordinator-cache counters.
        full_served / partial_served / stale_served / rejected: answers
            by ladder rung.
        hedges: total hedge re-issues.
        restarts: worker respawns.
        generations: current known generation vector.
        fanout: request-latency percentiles (seconds).
        shards: per-shard health rows.
    """

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    full_served: int = 0
    partial_served: int = 0
    stale_served: int = 0
    rejected: int = 0
    hedges: int = 0
    restarts: int = 0
    generations: tuple[int, ...] = ()
    fanout: dict[str, float] = field(default_factory=dict)
    shards: list[ShardHealth] = field(default_factory=list)


def format_sharded_stats(stats: ShardedStats) -> str:
    """Render sharded stats as the text block the CLI prints."""
    lines = [
        f"queries: {stats.queries} "
        f"(cache {stats.cache_hits} hit / {stats.cache_misses} miss)",
        f"served: {stats.full_served} full, {stats.partial_served} partial, "
        f"{stats.stale_served} stale, {stats.rejected} rejected",
        f"hedges: {stats.hedges}, restarts: {stats.restarts}",
        f"generation vector: {list(stats.generations)}",
    ]
    if stats.fanout:
        rendered = ", ".join(
            f"p{p} {stats.fanout[f'p{p}'] * 1e3:.2f} ms"
            for p in PERCENTILES
            if f"p{p}" in stats.fanout
        )
        lines.append(f"fan-out latency: {rendered}")
    lines.append("shards:")
    for row in stats.shards:
        state = "alive" if row.alive else "DEAD"
        latency = ""
        if row.latency:
            latency = f", p95 {row.latency.get('p95', 0.0) * 1e3:.2f} ms"
        lines.append(
            f"  [{row.shard}] {state}/{row.breaker_state} "
            f"gen {row.generation}, {row.videos} video(s), "
            f"{row.queries} queries, {row.failures} failures, "
            f"{row.hedges} hedges, {row.restarts} restarts{latency}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Worker side
# ---------------------------------------------------------------------- #


def _shard_worker_main(
    shard: int,
    seed: int,
    dataset_args: dict,
    video_names: list[str],
    worker_threads: int,
    cache_size: int,
    fault_specs: tuple[ShardFaultSpec, ...],
    conn,
) -> None:
    """Entry point of one shard worker process.

    Builds the full dataset from *seed* (global concept graph, pages
    and term statistics), indexes only *video_names* (the shard's
    catalog slice), then serves the command loop: ``query`` deliveries
    fan out to a small thread pool (so a hedged duplicate can overtake
    a per-delivery hang fault), ``ping`` / ``index`` / ``shutdown`` are
    handled inline.  Replies are sent under a lock — a Connection is
    not write-atomic across threads.
    """
    import os
    from concurrent.futures import ThreadPoolExecutor

    from repro.dataset.build import build_australian_open
    from repro.library.engine import DigitalLibraryEngine
    from repro.library.service import LibrarySearchService

    dataset = build_australian_open(seed=seed, **dataset_args)
    engine = DigitalLibraryEngine(dataset)
    service = LibrarySearchService(engine, cache_size=cache_size)
    for name in video_names:
        service.index_plan(engine.indexer.plan_named(name))

    faults = ShardFaultState(shard, fault_specs)
    send_lock = threading.Lock()

    def reply(payload: dict) -> None:
        with send_lock:
            conn.send(payload)

    def handle_query(
        req_id: int, query: LibraryQuery, slice_seconds, bypass_cache: bool
    ) -> None:
        started = time.perf_counter()
        budget = (
            QueryBudget(seconds=slice_seconds) if slice_seconds is not None else None
        )
        spec = faults.next_fault()
        generation_lag = 0
        if spec is not None:
            if spec.mode == "kill":
                os._exit(1)  # no goodbye: the coordinator sees EOF
            if spec.mode == "delay":
                time.sleep(spec.delay_seconds)
            elif spec.mode == "error":
                reply(
                    {
                        "kind": "result",
                        "req_id": req_id,
                        "status": "error",
                        "message": spec.message or f"injected shard {shard} fault",
                    }
                )
                return
            elif spec.mode == "stale_generation":
                generation_lag = spec.generation_lag
        try:
            served = service.search(query, bypass_cache=bypass_cache, budget=budget)
        except DeadlineExceeded:
            reply({"kind": "result", "req_id": req_id, "status": "deadline"})
            return
        except Exception as exc:  # noqa: BLE001 — typed error reply, never silence
            reply(
                {
                    "kind": "result",
                    "req_id": req_id,
                    "status": "error",
                    "message": f"{type(exc).__name__}: {exc}",
                }
            )
            return
        reply(
            {
                "kind": "result",
                "req_id": req_id,
                "status": "ok",
                "results": served.results,
                "generation": max(0, service.generation - generation_lag),
                "seconds": time.perf_counter() - started,
            }
        )

    def handle_index(req_id: int, batch: list[str]) -> None:
        """Index a batch of plans; one reply when the whole batch lands.

        Runs on the pool (the receive loop stays responsive for
        queries); commits serialize through the service's write lock.
        """
        try:
            for name in batch:
                service.index_plan(engine.indexer.plan_named(name))
            reply(
                {
                    "kind": "result",
                    "req_id": req_id,
                    "status": "ok",
                    "generation": service.generation,
                }
            )
        except Exception as exc:  # noqa: BLE001
            reply(
                {
                    "kind": "result",
                    "req_id": req_id,
                    "status": "error",
                    "message": f"{type(exc).__name__}: {exc}",
                }
            )

    pool = ThreadPoolExecutor(
        max_workers=worker_threads, thread_name_prefix=f"shard-{shard}"
    )
    reply({"kind": "ready", "shard": shard, "generation": service.generation})
    try:
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break
            kind = command[0]
            if kind == "query":
                _, req_id, query, slice_seconds, bypass_cache = command
                pool.submit(handle_query, req_id, query, slice_seconds, bypass_cache)
            elif kind == "ping":
                reply(
                    {
                        "kind": "result",
                        "req_id": command[1],
                        "status": "ok",
                        "pong": True,
                        "generation": service.generation,
                    }
                )
            elif kind == "index_batch":
                _, req_id, batch = command
                pool.submit(handle_index, req_id, batch)
            elif kind == "shutdown":
                break
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
        conn.close()


# ---------------------------------------------------------------------- #
# Coordinator side
# ---------------------------------------------------------------------- #


class _Gather:
    """One fan-out's rendezvous: per-shard slots, first response wins."""

    def __init__(self, shards: list[int]) -> None:
        self.expected = set(shards)
        self.responses: dict[int, dict] = {}
        self.cond = threading.Condition()

    def deliver(self, shard: int, payload: dict) -> None:
        with self.cond:
            if shard in self.expected and shard not in self.responses:
                self.responses[shard] = payload
                self.cond.notify_all()

    def fail(self, shard: int, reason: str) -> None:
        self.deliver(shard, {"status": reason})

    def done(self) -> bool:
        return len(self.responses) >= len(self.expected)


class _Shard:
    """Coordinator-side state for one shard worker."""

    def __init__(self, shard_id: int, videos: list[str], breaker: StageBreaker):
        self.id = shard_id
        self.videos = videos
        self.breaker = breaker
        self.reservoir = LatencyReservoir(capacity=512)
        self.generation = 0
        self.ready = threading.Event()
        self.queries = 0
        self.failures = 0
        self.hedges = 0
        self.restarts = 0
        self.process = None
        self.conn = None
        self.send_lock = threading.Lock()
        self.receiver: threading.Thread | None = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def send(self, command: tuple) -> bool:
        """Send one command; ``False`` (never an exception) on a dead pipe."""
        with self.send_lock:
            if self.conn is None:
                return False
            try:
                self.conn.send(command)
                return True
            except (OSError, ValueError, BrokenPipeError):
                return False


class ShardedSearchService:
    """Scatter-gather query serving over per-shard worker processes.

    Args:
        video_names: the initial catalog, balanced across shards with
            :func:`assign_shards` and indexed by the workers at spawn.
        seed: dataset seed every worker rebuilds from.
        config: the :class:`ShardingConfig`.
        fault_plan: optional :class:`~repro.faults.ShardFaultPlan`
            shipped to the workers (chaos soaks and tests).
        dataset_args: extra picklable keyword arguments for the
            workers' ``build_australian_open(seed=seed, ...)`` call
            (benchmarks shrink ``video_shots``); must match whatever
            any unsharded comparison service was built from.

    Use as a context manager, or call :meth:`close`; worker processes
    are daemonic either way.
    """

    def __init__(
        self,
        video_names: list[str],
        *,
        seed: int = 0,
        config: ShardingConfig | None = None,
        fault_plan=None,
        dataset_args: dict | None = None,
    ) -> None:
        self.config = config or ShardingConfig()
        self.seed = seed
        self.dataset_args = dict(dataset_args or {})
        self._fault_plan = fault_plan
        self._ctx = mp.get_context(self.config.start_method)
        self._lock = threading.Lock()  # shard table + counters
        self._pending_lock = threading.Lock()
        self._pending: dict[int, tuple[_Gather, int]] = {}  # req_id -> (gather, shard)
        self._req_counter = 0
        self._cache: LRUCache = LRUCache(self.config.cache_size)
        self._recent: LRUCache = LRUCache(self.config.recent_size)
        self._write_lock = threading.Lock()  # serializes index_video
        self._closed = False

        self._queries = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._full_served = 0
        self._partial_served = 0
        self._stale_served = 0
        self._rejected = 0
        self._fanout_reservoir = LatencyReservoir(capacity=1024)

        slices = assign_shards(list(video_names), self.config.n_shards)
        self.shards = [
            _Shard(
                shard_id,
                slices[shard_id],
                StageBreaker(
                    failure_threshold=self.config.failure_threshold,
                    cooldown=self.config.quarantine_cooldown,
                    alpha=self.config.breaker_alpha,
                ),
            )
            for shard_id in range(self.config.n_shards)
        ]
        for shard in self.shards:
            self._spawn(shard)
        for shard in self.shards:
            if not shard.ready.wait(timeout=120.0):
                raise RuntimeError(f"shard {shard.id} failed to become ready")

        self._prober_stop = threading.Event()
        self._prober = threading.Thread(
            target=self._probe_loop, name="shard-prober", daemon=True
        )
        self._prober.start()

    # -- lifecycle ------------------------------------------------------ #

    def _spawn(self, shard: _Shard, with_faults: bool = True) -> None:
        """Start (or restart) *shard*'s worker and its receiver thread.

        Fault specs ship only on the *initial* spawn: a respawned
        worker is a fresh replacement, not a re-run of the failure —
        ``ShardFaultPlan.dead`` means "this shard dies once", and
        recovery is the part under test.
        """
        specs = ()
        if with_faults and self._fault_plan is not None:
            specs = self._fault_plan.for_shard(shard.id)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                shard.id,
                self.seed,
                self.dataset_args,
                list(shard.videos),
                self.config.worker_threads,
                self.config.cache_size,
                specs,
                child_conn,
            ),
            name=f"shard-{shard.id}",
            daemon=True,
        )
        shard.ready.clear()
        shard.conn = parent_conn
        shard.process = process
        process.start()
        child_conn.close()  # parent keeps only its end
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(shard, parent_conn),
            name=f"shard-recv-{shard.id}",
            daemon=True,
        )
        shard.receiver = receiver
        receiver.start()

    def _receive_loop(self, shard: _Shard, conn) -> None:
        """Drain one worker's replies; on EOF, quarantine and fail pending."""
        while True:
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                break
            if payload.get("kind") == "ready":
                shard.generation = payload["generation"]
                shard.ready.set()
                continue
            req_id = payload.get("req_id")
            with self._pending_lock:
                entry = self._pending.pop(req_id, None)
            if entry is None:
                continue  # late or hedged-duplicate response: first one won
            gather, _ = entry
            gather.deliver(shard.id, payload)
        if shard.conn is conn:  # not an old pipe from before a restart
            shard.breaker.trip()
            self._fail_pending_for(shard.id, "dead")

    def _fail_pending_for(self, shard_id: int, reason: str) -> None:
        with self._pending_lock:
            doomed = [
                (req_id, gather)
                for req_id, (gather, sid) in self._pending.items()
                if sid == shard_id
            ]
            for req_id, _ in doomed:
                self._pending.pop(req_id, None)
        for _, gather in doomed:
            gather.fail(shard_id, reason)

    def close(self) -> None:
        """Stop the prober, shut workers down, reap processes."""
        if self._closed:
            return
        self._closed = True
        self._prober_stop.set()
        self._prober.join(timeout=5.0)
        for shard in self.shards:
            shard.send(("shutdown",))
        for shard in self.shards:
            if shard.process is not None:
                shard.process.join(timeout=2.0)
                if shard.process.is_alive():
                    shard.process.terminate()
                    shard.process.join(timeout=2.0)
            if shard.conn is not None:
                try:
                    shard.conn.close()
                except OSError:
                    pass

    def __enter__(self) -> "ShardedSearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- background probing / restart ----------------------------------- #

    def _probe_loop(self) -> None:
        while not self._prober_stop.wait(self.config.probe_interval):
            for shard in self.shards:
                if self._closed:
                    return
                if not shard.alive:
                    if self.config.restart_dead:
                        self._restart(shard)
                    continue
                if shard.breaker.state == "closed":
                    continue
                # Quarantined but alive: half-open probe via a ping.
                if shard.breaker.allow():
                    self._ping(shard)

    def _restart(self, shard: _Shard) -> None:
        """Respawn a dead worker; its slice rebuild is deterministic."""
        with self._lock:
            if self._closed or shard.alive:
                return
            old = shard.process
            if old is not None:
                old.join(timeout=0)
            shard.restarts += 1
            self._spawn(shard, with_faults=False)
        if shard.ready.wait(timeout=120.0):
            # The rebuilt replica re-indexed the same videos from the
            # same seed: same generation, consistent vector.  Confirm
            # with a real ping before lifting quarantine.
            if shard.breaker.allow():
                self._ping(shard)

    def _ping(self, shard: _Shard) -> bool:
        gather = _Gather([shard.id])
        req_id = self._register(gather, shard.id)
        started = time.perf_counter()
        if not shard.send(("ping", req_id)):
            self._unregister(req_id)
            shard.breaker.record_failure()
            return False
        deadline = started + max(self.config.quarantine_cooldown, 0.1)
        try:
            with gather.cond:
                while not gather.done():
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    gather.cond.wait(timeout=remaining)
        finally:
            self._unregister(req_id)
        payload = gather.responses.get(shard.id)
        if payload is not None and payload.get("status") == "ok":
            shard.generation = payload.get("generation", shard.generation)
            shard.breaker.record_success(time.perf_counter() - started)
            return True
        shard.breaker.record_failure()
        return False

    # -- fan-out plumbing ----------------------------------------------- #

    def _register(self, gather: _Gather, shard_id: int) -> int:
        with self._pending_lock:
            self._req_counter += 1
            req_id = self._req_counter
            self._pending[req_id] = (gather, shard_id)
            return req_id

    def _unregister(self, req_id: int) -> None:
        with self._pending_lock:
            self._pending.pop(req_id, None)

    @property
    def generations(self) -> tuple[int, ...]:
        """The known per-shard generation vector."""
        return tuple(shard.generation for shard in self.shards)

    # -- serving --------------------------------------------------------- #

    def search(
        self,
        query: LibraryQuery,
        *,
        budget: QueryBudget | None = None,
        bypass_cache: bool = False,
    ) -> ShardedServedQuery:
        """Serve one query by scatter-gather over the healthy shards.

        Never raises for shard-side trouble: missing coverage comes
        back *typed* on :attr:`ShardedServedQuery.coverage`, and the
        ladder (partial → stale → reject) decides what the answer is.
        """
        started = time.perf_counter()
        if budget is None and self.config.budget_seconds is not None:
            budget = QueryBudget(seconds=self.config.budget_seconds)
        key = canonical_query_key(query)
        vector = self.generations

        if not bypass_cache:
            cached = self._cache.get((vector, key))
            if cached is not None:
                results, coverage = cached
                served = ShardedServedQuery(
                    results=list(results),
                    coverage=coverage,
                    generations=vector,
                    cache_hit=True,
                    seconds=time.perf_counter() - started,
                )
                self._record(served)
                return served

        served = self._scatter_gather(query, key, vector, budget, bypass_cache, started)
        self._record(served)
        return served

    def _scatter_gather(
        self,
        query: LibraryQuery,
        key: str,
        vector: tuple[int, ...],
        budget: QueryBudget | None,
        bypass_cache: bool,
        started: float,
    ) -> ShardedServedQuery:
        slice_seconds = (
            budget.slice_seconds(self.config.shard_slice) if budget is not None else None
        )

        # Scatter to every shard whose breaker admits it (a half-open
        # breaker's True reserves the probe slot; this query is the
        # probe).  Quarantined shards are missing up front.
        eligible: list[_Shard] = []
        for shard in self.shards:
            if shard.alive and shard.breaker.allow():
                eligible.append(shard)

        gather = _Gather([s.id for s in eligible])
        req_ids: list[int] = []
        sent_at: dict[int, float] = {}
        hedged: set[int] = set()
        try:
            for shard in eligible:
                req_id = self._register(gather, shard.id)
                req_ids.append(req_id)
                sent_at[shard.id] = time.perf_counter()
                shard.queries += 1
                if not shard.send(("query", req_id, query, slice_seconds, bypass_cache)):
                    self._unregister(req_id)
                    gather.fail(shard.id, "dead")

            if eligible:
                req_ids.extend(
                    self._gather(
                        gather,
                        eligible,
                        budget,
                        sent_at,
                        hedged,
                        query,
                        slice_seconds,
                        bypass_cache,
                    )
                )
        finally:
            # Interrupted or not, no pending entry may leak: late
            # responses to a finished fan-out must hit nothing.
            for req_id in req_ids:
                self._unregister(req_id)

        # Health accounting + response triage.
        parts: dict[int, list[SceneResult]] = {}
        responded: list[int] = []
        for shard in eligible:
            payload = gather.responses.get(shard.id)
            elapsed = time.perf_counter() - sent_at[shard.id]
            if payload is not None and payload.get("status") == "ok":
                responded.append(shard.id)
                parts[shard.id] = payload["results"]
                shard.generation = payload.get("generation", shard.generation)
                shard.reservoir.add(payload.get("seconds", elapsed))
                shard.breaker.record_success(elapsed)
            else:
                shard.failures += 1
                if payload is not None and payload.get("status") == "dead":
                    pass  # breaker already tripped by the receiver
                else:
                    shard.breaker.record_failure(elapsed)

        coverage = Coverage(
            responded=tuple(sorted(responded)),
            missing=tuple(
                s.id for s in self.shards if s.id not in set(responded)
            ),
        )
        hedge_count = len(hedged)
        vector = self.generations  # refreshed by the responses

        if coverage.complete:
            results = merge_scene_results(
                [parts[sid] for sid in coverage.responded], query.top_n
            )
            if not bypass_cache:
                self._cache.put((vector, key), (list(results), coverage))
                self._recent.put(key, (list(results), coverage, vector))
            return ShardedServedQuery(
                results=results,
                coverage=coverage,
                generations=vector,
                cache_hit=False,
                seconds=time.perf_counter() - started,
                hedged=hedge_count,
            )

        if (
            self.config.partial_serving
            and len(coverage.responded) >= self.config.min_coverage
        ):
            results = merge_scene_results(
                [parts[sid] for sid in coverage.responded], query.top_n
            )
            return ShardedServedQuery(
                results=results,
                coverage=coverage,
                generations=vector,
                cache_hit=False,
                seconds=time.perf_counter() - started,
                hedged=hedge_count,
            )

        if self.config.stale_serving and not bypass_cache:
            stale = self._recent.get(key)
            if stale is not None:
                results, stale_coverage, stale_vector = stale
                return ShardedServedQuery(
                    results=list(results),
                    coverage=stale_coverage,
                    generations=stale_vector,
                    cache_hit=False,
                    seconds=time.perf_counter() - started,
                    hedged=hedge_count,
                    stale=True,
                )

        return ShardedServedQuery(
            results=[],
            coverage=coverage,
            generations=vector,
            cache_hit=False,
            seconds=time.perf_counter() - started,
            hedged=hedge_count,
            rejection="no_coverage",
        )

    def _gather(
        self,
        gather: _Gather,
        eligible: list[_Shard],
        budget: QueryBudget | None,
        sent_at: dict[int, float],
        hedged: set[int],
        query: LibraryQuery,
        slice_seconds: float | None,
        bypass_cache: bool,
    ) -> list[int]:
        """Wait for the fan-out, hedging stragglers; returns hedge req ids.

        Every wait carries a timeout (the audit invariant: no
        ``Condition.wait()`` in the serving path may block forever),
        and the hedge check runs between waits.
        """
        if budget is not None:
            remaining = budget.remaining()
            horizon = remaining if remaining is not None else self.config.gather_floor_seconds
        else:
            horizon = self.config.gather_floor_seconds
        deadline = time.perf_counter() + max(0.0, horizon)
        poll = max(self.config.hedge_min_seconds / 4.0, 0.002)
        hedge_req_ids: list[int] = []

        while True:
            with gather.cond:
                if gather.done():
                    return hedge_req_ids
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return hedge_req_ids
                gather.cond.wait(timeout=min(remaining, poll))
                if gather.done():
                    return hedge_req_ids
            if not self.config.hedge:
                continue
            now = time.perf_counter()
            for shard in eligible:
                if shard.id in hedged or shard.id in gather.responses:
                    continue
                trigger = shard.reservoir.percentile_or(
                    self.config.hedge_percentile,
                    self.config.hedge_min_seconds,
                    min_samples=8,
                )
                trigger = max(trigger, self.config.hedge_min_seconds)
                if now - sent_at[shard.id] < trigger:
                    continue
                hedged.add(shard.id)
                shard.hedges += 1
                req_id = self._register(gather, shard.id)
                hedge_req_ids.append(req_id)
                if not shard.send(
                    ("query", req_id, query, slice_seconds, bypass_cache)
                ):
                    self._unregister(req_id)
                    gather.fail(shard.id, "dead")

    # -- indexing -------------------------------------------------------- #

    def index_video(self, name: str) -> int:
        """Index one more video on its home shard; returns the shard id."""
        return self.index_videos([name])[0]

    def index_videos(self, names: list[str], timeout: float = 600.0) -> list[int]:
        """Index a batch, shards working their slices in parallel.

        The batch is striped across shards with :func:`assign_shards`
        (the initial-catalog discipline — balanced to within one video;
        a lone video through :meth:`index_video` routes by pure
        :func:`shard_of`); per-shard slices are scattered concurrently
        (the near-linear indexing speedup E17 gates on), and the call
        returns when every shard has committed its slice.  Writes are
        serialized through the coordinator, so the known generation
        vector tracks commits exactly (chaos aside).  Raises
        ``RuntimeError`` when any home shard cannot take its slice — a
        write is never silently lost to a random shard; callers retry
        after recovery.

        Returns each video's shard id, in input order.
        """
        if not names:
            return []
        if len(names) == 1:
            slices: list[list[str]] = [[] for _ in range(self.config.n_shards)]
            slices[shard_of(names[0], self.config.n_shards)].append(names[0])
        else:
            slices = assign_shards(names, self.config.n_shards)
        home = {name: sid for sid, batch in enumerate(slices) for name in batch}
        by_shard = {sid: batch for sid, batch in enumerate(slices) if batch}
        with self._write_lock:
            for shard_id in by_shard:
                if not self.shards[shard_id].alive:
                    raise RuntimeError(f"shard {shard_id} is down; cannot index batch")
            gather = _Gather(list(by_shard))
            req_ids: list[int] = []
            try:
                for shard_id, batch in by_shard.items():
                    shard = self.shards[shard_id]
                    req_id = self._register(gather, shard_id)
                    req_ids.append(req_id)
                    if not shard.send(("index_batch", req_id, list(batch))):
                        raise RuntimeError(f"shard {shard_id} pipe is down")
                deadline = time.perf_counter() + timeout
                with gather.cond:
                    while not gather.done():
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0:
                            raise RuntimeError("index batch timed out")
                        gather.cond.wait(timeout=min(remaining, 1.0))
            finally:
                for req_id in req_ids:
                    self._unregister(req_id)
            for shard_id, batch in by_shard.items():
                payload = gather.responses.get(shard_id)
                if payload is None or payload.get("status") != "ok":
                    message = (payload or {}).get("message", "no response")
                    raise RuntimeError(
                        f"shard {shard_id} failed to index its slice: {message}"
                    )
                shard = self.shards[shard_id]
                shard.generation = payload["generation"]
                shard.videos.extend(batch)
        return [home[name] for name in names]

    # -- observability ---------------------------------------------------- #

    def _record(self, served: ShardedServedQuery) -> None:
        with self._lock:
            self._queries += 1
            self._fanout_reservoir.add(served.seconds)
            if served.cache_hit:
                self._cache_hits += 1
            else:
                self._cache_misses += 1
            if served.rejected:
                self._rejected += 1
            elif served.stale:
                self._stale_served += 1
            elif not served.coverage.complete:
                self._partial_served += 1
            else:
                self._full_served += 1

    def stats(self) -> ShardedStats:
        with self._lock:
            stats = ShardedStats(
                queries=self._queries,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                full_served=self._full_served,
                partial_served=self._partial_served,
                stale_served=self._stale_served,
                rejected=self._rejected,
                hedges=sum(s.hedges for s in self.shards),
                restarts=sum(s.restarts for s in self.shards),
                generations=self.generations,
                fanout=self._fanout_reservoir.summary(),
            )
        for shard in self.shards:
            stats.shards.append(
                ShardHealth(
                    shard=shard.id,
                    alive=shard.alive,
                    breaker_state=shard.breaker.state,
                    generation=shard.generation,
                    videos=len(shard.videos),
                    queries=shard.queries,
                    failures=shard.failures,
                    hedges=shard.hedges,
                    restarts=shard.restarts,
                    latency=shard.reservoir.summary(),
                )
            )
        return stats
