"""Fault-tolerant sharded scatter-gather serving with replica groups.

One :class:`~repro.library.service.LibrarySearchService` scales reads
with threads but stays one process: one GIL, one failure domain.  This
module partitions the catalog across ``N`` independent shard slices —
videos hash-assigned by name — and runs each slice as a **replica
group** of ``R`` worker processes (:attr:`ShardingConfig.replication`).
A :class:`ShardedSearchService` coordinator scatters each query to one
replica per healthy group, gathers the per-shard top-N rankings, and
k-way merges them with the
:func:`~repro.library.results.merge_scene_results` discipline.

The replication scheme keeps the merge *exact*: every worker builds the
full dataset from the seed (so concept graph, page collection and text
statistics — hence scores — are global), but indexes only its group's
assigned videos.  A scene belongs to exactly one video and a video to
exactly one shard, so each shard's ranking is the global ranking
restricted to its slice, and the merge under the engine's total order
``(-score, video_name, start)`` is byte-identical to serving the
unsharded library.  Replicas of a group index the *same* slice from the
*same* seed, so they are interchangeable byte-identical servers of it.

Robustness, the point of the exercise:

- **Deadline slices.**  Each fan-out carves a per-shard sub-deadline
  from the request's :class:`~repro.budget.QueryBudget` via
  :meth:`~repro.budget.QueryBudget.slice_seconds` (durations, not
  deadlines, cross the process boundary — monotonic clocks do not);
  workers enforce it with their own local budget.
- **Healthiest-replica routing + read failover.**  Each replica keeps
  its own :class:`~repro.library.resilience.StageBreaker` and latency
  reservoir; the coordinator routes a sub-query to the healthiest
  replica of each group (closed breaker, lowest EWMA, round-robin
  among peers) and, when that replica times out, errors, or dies
  mid-query, **fails over to a sibling within the same query's
  remaining deadline slice** — a single replica failure never costs
  coverage while a sibling lives.
- **Hedged fan-out across replicas.**  A straggler past its replica's
  p95 latency (reservoir-estimated, floored at ``hedge_min_seconds``)
  gets the query re-issued to an *untried sibling replica* when one
  exists (falling back to the same worker, whose second thread can
  overtake a per-delivery hang); first ok response wins, duplicates
  are discarded.
- **Live replica recovery.**  A dead replica is respawned and rebuilt
  *in the background* while its siblings keep serving full-coverage
  answers.  Before rejoining rotation it catches up to the group's
  authoritative video list and its generation is **verified against
  the group's generation vector** — a replica that cannot align is
  rebuilt again, never trusted.
- **Aligned write fan-out.**  ``index_videos`` fans each shard's slice
  out to *all* live replicas of the owning group behind a group commit
  barrier; a replica that fails or times out a write is pulled from
  rotation and rebuilt (its state is unknown), so in-rotation replicas
  always agree on the generation vector.  The call returns **per-shard
  typed outcomes** instead of raising away partial progress.
- **Typed partial results.**  Every answer carries a
  :class:`~repro.library.results.Coverage` — which shards responded,
  which are missing.  Partial coverage is a labeled outcome, never a
  silent one, and with replication it is only reached when an *entire
  replica group* is down.
- **Cross-shard degradation ladder.**  full coverage → partial
  coverage (>= ``min_coverage`` shards, labeled) → stale (the last
  full-coverage answer for this query, labeled with its generation
  vector) → typed rejection (``no_coverage``).
- **Generation vectors.**  Results and cache entries are keyed by the
  tuple of per-shard generations (each the max over the group's
  in-rotation replicas), the sharded analogue of the single-service
  generation key: a commit on any shard moves the vector, so stale
  cache hits are impossible by construction (chaos aside — a
  ``stale_generation`` replica fault makes a worker *lie*, which is
  exactly what the soak measures).

Chaos comes from :class:`repro.faults.ShardFaultSpec` plans — now
addressable to a single ``(shard, replica)`` worker — delivered
worker-side on query handling only (pings exempt, so probes observe
genuine recovery).
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.budget import DeadlineExceeded, QueryBudget
from repro.faults import ShardFaultSpec, ShardFaultState
from repro.library.query import LibraryQuery
from repro.library.resilience import StageBreaker
from repro.library.results import Coverage, SceneResult, merge_scene_results
from repro.library.service import LRUCache, canonical_query_key
from repro.library.stats import PERCENTILES, LatencyReservoir, merged_summary

__all__ = [
    "BatchIndexResult",
    "ReplicaHealth",
    "ShardHealth",
    "ShardWriteOutcome",
    "ShardedSearchService",
    "ShardedServedQuery",
    "ShardedStats",
    "ShardingConfig",
    "assign_shards",
    "format_sharded_stats",
    "shard_of",
]


def shard_of(video_name: str, n_shards: int) -> int:
    """The shard a video routes to — stable across processes and runs.

    CRC32, not :func:`hash`: Python string hashing is salted per
    process, and the coordinator and its workers must agree.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return zlib.crc32(video_name.encode("utf-8")) % n_shards


def assign_shards(video_names: list[str], n_shards: int) -> list[list[str]]:
    """Partition the *initial* catalog into balanced per-shard slices.

    Pure ``crc32 % n`` is lumpy on small catalogs (a 2x load skew is
    routine), which would sink near-linear indexing speedup.  Instead
    the initial set is striped in hash order: sort by
    ``(crc32(name), name)``, deal round-robin.  Deterministic in the
    name set, balanced to within one video.  Videos indexed *later*
    route by :func:`shard_of` — a single video's placement does not
    need balance, only stability.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if len(set(video_names)) != len(video_names):
        raise ValueError("duplicate video names in shard assignment")
    ordered = sorted(video_names, key=lambda n: (zlib.crc32(n.encode("utf-8")), n))
    slices: list[list[str]] = [[] for _ in range(n_shards)]
    for position, name in enumerate(ordered):
        slices[position % n_shards].append(name)
    return slices


@dataclass(frozen=True)
class ShardingConfig:
    """Every knob of the sharded serving layer.

    Attributes:
        n_shards: catalog partitions (replica groups).
        replication: worker processes per shard — each serves the same
            slice, so reads fail over and hedge across siblings and a
            single replica death costs no coverage.
        worker_threads: query-evaluation threads per worker (>= 2 lets
            a hedged duplicate overtake a per-delivery hang fault).
        cache_size: coordinator result-cache entries (keyed by
            generation vector + canonical query).
        recent_size: per-query-key stale store entries (ladder rung 3).
        budget_seconds: default per-request wall budget when the caller
            passes none (``None`` = unbounded — hedging and gather then
            wait up to ``gather_floor_seconds``).
        shard_slice: fraction of the remaining request budget each
            shard (and each failover re-issue) gets as its local
            deadline.
        gather_floor_seconds: gather/hedge horizon for unbudgeted
            requests.
        min_coverage: fewest responding shards a *partial* answer may
            be built from (ladder rung 2); fewer falls through to
            stale/reject.
        hedge: enable hedged re-issue of stragglers.
        hedge_min_seconds: hedge-trigger floor (and the trigger itself
            until a replica has latency history).
        hedge_percentile: reservoir percentile the trigger tracks.
        failure_threshold / quarantine_cooldown / breaker_alpha:
            per-replica :class:`StageBreaker` tuning (process death
            trips immediately regardless).
        probe_interval: seconds between background prober sweeps.
        restart_dead: respawn dead replicas (deterministic slice
            rebuild + generation-verified rejoin) instead of leaving
            them out of rotation forever.
        partial_serving: ladder rung 2 toggle.
        stale_serving: ladder rung 3 toggle.
        start_method: multiprocessing start method (``fork`` on Linux:
            no re-import, worker inherits nothing mutable it uses).
    """

    n_shards: int = 4
    replication: int = 1
    worker_threads: int = 2
    cache_size: int = 256
    recent_size: int = 256
    budget_seconds: float | None = 1.0
    shard_slice: float = 0.8
    gather_floor_seconds: float = 5.0
    min_coverage: int = 1
    hedge: bool = True
    hedge_min_seconds: float = 0.05
    hedge_percentile: float = 95.0
    failure_threshold: int = 3
    quarantine_cooldown: float = 1.0
    breaker_alpha: float = 0.2
    probe_interval: float = 0.25
    restart_dead: bool = True
    partial_serving: bool = True
    stale_serving: bool = True
    start_method: str = "fork"

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.replication < 1:
            raise ValueError(f"replication must be >= 1, got {self.replication}")
        if self.worker_threads < 1:
            raise ValueError(f"worker_threads must be >= 1, got {self.worker_threads}")
        if not 0.0 < self.shard_slice <= 1.0:
            raise ValueError(f"shard_slice must be in (0, 1], got {self.shard_slice}")
        if not 1 <= self.min_coverage <= self.n_shards:
            raise ValueError(
                f"min_coverage must be in [1, {self.n_shards}], got {self.min_coverage}"
            )
        if self.hedge_min_seconds < 0:
            raise ValueError(
                f"hedge_min_seconds must be >= 0, got {self.hedge_min_seconds}"
            )
        if self.probe_interval <= 0:
            raise ValueError(f"probe_interval must be > 0, got {self.probe_interval}")


@dataclass(frozen=True)
class ShardedServedQuery:
    """One answer from the sharded service, with fan-out provenance.

    Attributes:
        results: merged scenes, best first (a private copy per caller).
        coverage: which shards contributed and which are missing —
            present on *every* answer, partial or not.
        generations: the per-shard generation vector the results are
            valid for (stale answers carry the older vector they were
            cached under).
        cache_hit: the coordinator cache answered (full coverage by
            construction).
        seconds: coordinator-side wall time for this request.
        hedged: hedge re-issues this request triggered.
        failovers: sibling-replica re-dispatches after a replica
            failed, died, or ran out of healthy standing mid-query.
        stale: ladder rung 3 — the last full-coverage answer for this
            query, served because live coverage fell below
            ``min_coverage``.
        rejection: set when no rung could answer (``"no_coverage"``);
            ``results`` is empty and ``coverage`` records the failed
            fan-out.
    """

    results: list[SceneResult]
    coverage: Coverage
    generations: tuple[int, ...]
    cache_hit: bool
    seconds: float
    hedged: int = 0
    failovers: int = 0
    stale: bool = False
    rejection: str | None = None

    @property
    def rejected(self) -> bool:
        return self.rejection is not None

    @property
    def status(self) -> str:
        """``hit`` / ``miss`` / ``partial`` / ``stale`` / ``rejected:<reason>``."""
        if self.rejection is not None:
            return f"rejected:{self.rejection}"
        if self.stale:
            return "stale"
        if not self.coverage.complete:
            return "partial"
        return "hit" if self.cache_hit else "miss"


@dataclass
class ReplicaHealth:
    """One replica's health snapshot (a sub-row of ``repro health --shards``)."""

    replica: int
    alive: bool
    in_rotation: bool
    breaker_state: str
    generation: int
    queries: int
    failures: int
    hedges: int
    failovers: int
    restarts: int
    latency: dict[str, float] = field(default_factory=dict)


@dataclass
class ShardHealth:
    """One replica group's health snapshot (a row of ``repro health --shards``).

    Counters aggregate over the group's replicas; ``alive`` means *any*
    replica lives, ``breaker_state`` is the healthiest replica's state
    (``closed`` > ``half_open`` > ``open``), ``generation`` is the
    group's (the max over in-rotation replicas), and :attr:`replicas`
    carries the per-replica rows.
    """

    shard: int
    alive: bool
    breaker_state: str
    generation: int
    videos: int
    queries: int
    failures: int
    hedges: int
    restarts: int
    failovers: int = 0
    latency: dict[str, float] = field(default_factory=dict)
    replicas: list[ReplicaHealth] = field(default_factory=list)


@dataclass
class ShardedStats:
    """Aggregated sharded-serving statistics.

    Attributes:
        queries: requests answered (all rungs; rejections included).
        cache_hits / cache_misses: coordinator-cache counters.
        full_served / partial_served / stale_served / rejected: answers
            by ladder rung.
        hedges: total hedge re-issues.
        failovers: total sibling-replica failover re-dispatches.
        restarts: replica respawns.
        generations: current known generation vector.
        fanout: request-latency percentiles (seconds).
        shards: per-group health rows (with per-replica sub-rows).
        stream_freshness: per-shard chunk-commit freshness from the last
            :meth:`ShardedSearchService.stream_videos` batch — chunk
            count plus frame-arrival -> queryable percentiles (seconds).
    """

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    full_served: int = 0
    partial_served: int = 0
    stale_served: int = 0
    rejected: int = 0
    hedges: int = 0
    failovers: int = 0
    restarts: int = 0
    generations: tuple[int, ...] = ()
    fanout: dict[str, float] = field(default_factory=dict)
    shards: list[ShardHealth] = field(default_factory=list)
    stream_freshness: dict[int, dict] = field(default_factory=dict)


def format_sharded_stats(stats: ShardedStats) -> str:
    """Render sharded stats as the text block the CLI prints."""
    lines = [
        f"queries: {stats.queries} "
        f"(cache {stats.cache_hits} hit / {stats.cache_misses} miss)",
        f"served: {stats.full_served} full, {stats.partial_served} partial, "
        f"{stats.stale_served} stale, {stats.rejected} rejected",
        f"hedges: {stats.hedges}, failovers: {stats.failovers}, "
        f"restarts: {stats.restarts}",
        f"generation vector: {list(stats.generations)}",
    ]
    if stats.fanout:
        rendered = ", ".join(
            f"p{p} {stats.fanout[f'p{p}'] * 1e3:.2f} ms"
            for p in PERCENTILES
            if f"p{p}" in stats.fanout
        )
        lines.append(f"fan-out latency: {rendered}")
    lines.append("shards:")
    for row in stats.shards:
        state = "alive" if row.alive else "DEAD"
        latency = ""
        if row.latency:
            latency = f", p95 {row.latency.get('p95', 0.0) * 1e3:.2f} ms"
        lines.append(
            f"  [{row.shard}] {state}/{row.breaker_state} "
            f"gen {row.generation}, {row.videos} video(s), "
            f"{row.queries} queries, {row.failures} failures, "
            f"{row.hedges} hedges, {row.failovers} failovers, "
            f"{row.restarts} restarts{latency}"
        )
        if len(row.replicas) > 1:
            for rep in row.replicas:
                rep_state = "alive" if rep.alive else "DEAD"
                rotation = "in-rotation" if rep.in_rotation else "OUT"
                rep_latency = ""
                if rep.latency:
                    rep_latency = f", p95 {rep.latency.get('p95', 0.0) * 1e3:.2f} ms"
                lines.append(
                    f"    [{row.shard}.{rep.replica}] {rep_state}/"
                    f"{rep.breaker_state} {rotation} gen {rep.generation}, "
                    f"{rep.queries} queries, {rep.failures} failures, "
                    f"{rep.hedges} hedges, {rep.failovers} failovers, "
                    f"{rep.restarts} restarts{rep_latency}"
                )
    if stats.stream_freshness:
        lines.append("stream freshness (last chunked batch):")
        for sid in sorted(stats.stream_freshness):
            row = stats.stream_freshness[sid]
            p95 = row.get("p95")
            rendered = "-" if p95 is None else f"p95 {p95 * 1e3:.2f} ms"
            lines.append(f"  [{sid}] {row.get('chunks', 0)} chunk(s), {rendered}")
    return "\n".join(lines)


@dataclass(frozen=True)
class ShardWriteOutcome:
    """One shard's typed outcome of a batch write.

    Attributes:
        shard: the replica group the slice routed to.
        status: ``"committed"`` (>= 1 replica committed), ``"failed"``
            (every targeted replica failed or timed out), or ``"down"``
            (no live in-rotation replica to target).
        generation: the group's post-commit generation (``None`` unless
            committed).
        error: worker-reported failure message, when one exists.
        replicas_committed / replicas_failed: which replica indices
            landed the slice and which were pulled from rotation for
            rebuild (their state is unknown after a failed write).
    """

    shard: int
    status: str
    generation: int | None = None
    error: str | None = None
    replicas_committed: tuple[int, ...] = ()
    replicas_failed: tuple[int, ...] = ()

    @property
    def committed(self) -> bool:
        return self.status == "committed"


@dataclass(frozen=True)
class BatchIndexResult:
    """Per-shard typed outcomes of one ``index_videos`` batch.

    Partial progress is reported, never raised away: a timeout or a
    down shard yields a non-committed outcome for *that* shard while
    the others' commits stand.

    Attributes:
        assignments: video name -> home shard id, for every input name.
        outcomes: shard id -> :class:`ShardWriteOutcome`, for every
            shard that received a slice.
    """

    assignments: dict[str, int]
    outcomes: dict[int, ShardWriteOutcome]

    @property
    def ok(self) -> bool:
        """Every targeted shard committed its slice."""
        return all(outcome.committed for outcome in self.outcomes.values())

    @property
    def failed_shards(self) -> tuple[int, ...]:
        return tuple(
            sorted(sid for sid, out in self.outcomes.items() if not out.committed)
        )


# ---------------------------------------------------------------------- #
# Worker side
# ---------------------------------------------------------------------- #


def _shard_worker_main(
    shard: int,
    replica: int,
    seed: int,
    dataset_args: dict,
    video_names: list[str],
    worker_threads: int,
    cache_size: int,
    fault_specs: tuple[ShardFaultSpec, ...],
    conn,
) -> None:
    """Entry point of one replica worker process.

    Builds the full dataset from *seed* (global concept graph, pages
    and term statistics), indexes only *video_names* (the group's
    catalog slice), then serves the command loop: ``query`` deliveries
    fan out to a small thread pool (so a hedged duplicate can overtake
    a per-delivery hang fault), ``ping`` / ``index`` / ``shutdown`` are
    handled inline.  Replies are sent under a lock — a Connection is
    not write-atomic across threads.
    """
    import os
    from concurrent.futures import ThreadPoolExecutor

    from repro.dataset.build import build_australian_open
    from repro.library.engine import DigitalLibraryEngine
    from repro.library.service import LibrarySearchService

    dataset = build_australian_open(seed=seed, **dataset_args)
    engine = DigitalLibraryEngine(dataset)
    service = LibrarySearchService(engine, cache_size=cache_size)
    for name in video_names:
        service.index_plan(engine.indexer.plan_named(name))

    faults = ShardFaultState(shard, fault_specs, replica)
    send_lock = threading.Lock()

    def reply(payload: dict) -> None:
        with send_lock:
            conn.send(payload)

    def handle_query(
        req_id: int, query: LibraryQuery, slice_seconds, bypass_cache: bool
    ) -> None:
        started = time.perf_counter()
        budget = (
            QueryBudget(seconds=slice_seconds) if slice_seconds is not None else None
        )
        spec = faults.next_fault()
        generation_lag = 0
        if spec is not None:
            if spec.mode == "kill":
                os._exit(1)  # no goodbye: the coordinator sees EOF
            if spec.mode == "delay":
                time.sleep(spec.delay_seconds)
            elif spec.mode == "error":
                reply(
                    {
                        "kind": "result",
                        "req_id": req_id,
                        "status": "error",
                        "message": spec.message
                        or f"injected shard {shard} replica {replica} fault",
                    }
                )
                return
            elif spec.mode == "stale_generation":
                generation_lag = spec.generation_lag
        try:
            served = service.search(query, bypass_cache=bypass_cache, budget=budget)
        except DeadlineExceeded:
            reply({"kind": "result", "req_id": req_id, "status": "deadline"})
            return
        except Exception as exc:  # noqa: BLE001 — typed error reply, never silence
            reply(
                {
                    "kind": "result",
                    "req_id": req_id,
                    "status": "error",
                    "message": f"{type(exc).__name__}: {exc}",
                }
            )
            return
        reply(
            {
                "kind": "result",
                "req_id": req_id,
                "status": "ok",
                "results": served.results,
                "generation": max(0, service.generation - generation_lag),
                "seconds": time.perf_counter() - started,
            }
        )

    def handle_index(req_id: int, batch: list[str]) -> None:
        """Index a batch of plans; one reply when the whole batch lands.

        Runs on the pool (the receive loop stays responsive for
        queries); commits serialize through the service's write lock.
        """
        try:
            for name in batch:
                service.index_plan(engine.indexer.plan_named(name))
            reply(
                {
                    "kind": "result",
                    "req_id": req_id,
                    "status": "ok",
                    "generation": service.generation,
                }
            )
        except Exception as exc:  # noqa: BLE001
            reply(
                {
                    "kind": "result",
                    "req_id": req_id,
                    "status": "error",
                    "message": f"{type(exc).__name__}: {exc}",
                }
            )

    def handle_index_chunked(req_id: int, batch: list[str], chunk_frames: int) -> None:
        """Chunk-append a batch of plans; generations bump per chunk.

        Each video streams through the service's chunk-append path
        (memory-only on workers — durability is the coordinator's
        concern), so concurrent queries on this replica see shots at
        chunk granularity.  The reply carries per-chunk freshness
        percentiles for the coordinator's stream stats.
        """
        from repro.library.stats import LatencyReservoir

        reservoir = LatencyReservoir()
        chunks = 0

        def on_commit(commit) -> None:
            nonlocal chunks
            chunks += 1
            if commit.freshness_seconds is not None:
                reservoir.add(commit.freshness_seconds)

        try:
            for name in batch:
                service.stream_plan(
                    engine.indexer.plan_named(name),
                    chunk_frames=chunk_frames,
                    clock=time.monotonic,
                    on_commit=on_commit,
                )
            reply(
                {
                    "kind": "result",
                    "req_id": req_id,
                    "status": "ok",
                    "generation": service.generation,
                    "chunks": chunks,
                    "freshness": reservoir.summary(),
                }
            )
        except Exception as exc:  # noqa: BLE001
            reply(
                {
                    "kind": "result",
                    "req_id": req_id,
                    "status": "error",
                    "message": f"{type(exc).__name__}: {exc}",
                }
            )

    pool = ThreadPoolExecutor(
        max_workers=worker_threads, thread_name_prefix=f"shard-{shard}r{replica}"
    )
    reply(
        {
            "kind": "ready",
            "shard": shard,
            "replica": replica,
            "generation": service.generation,
        }
    )
    try:
        while True:
            try:
                command = conn.recv()
            except (EOFError, OSError):
                break
            kind = command[0]
            if kind == "query":
                _, req_id, query, slice_seconds, bypass_cache = command
                pool.submit(handle_query, req_id, query, slice_seconds, bypass_cache)
            elif kind == "ping":
                reply(
                    {
                        "kind": "result",
                        "req_id": command[1],
                        "status": "ok",
                        "pong": True,
                        "generation": service.generation,
                    }
                )
            elif kind == "index_batch":
                _, req_id, batch = command
                pool.submit(handle_index, req_id, batch)
            elif kind == "index_chunked":
                _, req_id, batch, chunk_frames = command
                pool.submit(handle_index_chunked, req_id, batch, chunk_frames)
            elif kind == "shutdown":
                break
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
        conn.close()


# ---------------------------------------------------------------------- #
# Coordinator side
# ---------------------------------------------------------------------- #


class _Gather:
    """One fan-out's rendezvous: per-key slots, first ok response wins.

    Keys are shard ids for query fan-outs (any replica of the group may
    fill the slot) and ``(shard, replica)`` pairs for write barriers
    and pings (each worker owes exactly one reply).  Failures
    accumulate per key without settling it — the failover loop decides
    whether a sibling retry or :meth:`exhaust` resolves the key —
    unless ``settle_on_failure`` is set (write barriers: one reply per
    worker, a failure is final).
    """

    def __init__(self, keys, settle_on_failure: bool = False) -> None:
        self.expected = set(keys)
        self.settle_on_failure = settle_on_failure
        self.responses: dict = {}  # key -> first ok payload
        self.failures: dict = {}  # key -> [failure payloads]
        self.exhausted: set = set()
        self.cond = threading.Condition()

    def deliver(self, key, payload: dict) -> None:
        with self.cond:
            if key not in self.expected or key in self.responses:
                return
            if payload.get("status") == "ok":
                self.responses[key] = payload
            else:
                self.failures.setdefault(key, []).append(payload)
                if self.settle_on_failure:
                    self.exhausted.add(key)
            self.cond.notify_all()

    def fail(self, key, reason: str) -> None:
        self.deliver(key, {"status": reason})

    def exhaust(self, key) -> None:
        """Give up on *key*: no retry target remains."""
        with self.cond:
            if key in self.expected:
                self.exhausted.add(key)
                self.cond.notify_all()

    def done(self) -> bool:
        return all(
            key in self.responses or key in self.exhausted for key in self.expected
        )


class _Replica:
    """Coordinator-side state for one replica worker process."""

    def __init__(self, shard_id: int, index: int, breaker: StageBreaker):
        self.shard_id = shard_id
        self.index = index
        self.breaker = breaker
        self.reservoir = LatencyReservoir(capacity=512)
        self.generation = 0
        self.ready = threading.Event()
        self.in_rotation = False
        self.needs_rebuild = False
        self.queries = 0
        self.failures = 0
        self.hedges = 0
        self.failovers = 0
        self.restarts = 0
        self.process = None
        self.conn = None
        self.send_lock = threading.Lock()
        self.receiver: threading.Thread | None = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def send(self, command: tuple) -> bool:
        """Send one command; ``False`` (never an exception) on a dead pipe."""
        with self.send_lock:
            if self.conn is None:
                return False
            try:
                self.conn.send(command)
                return True
            except (OSError, ValueError, BrokenPipeError):
                return False


class _ShardGroup:
    """One shard's replica group and its authoritative catalog slice.

    ``videos`` is *replaced* on commit (never mutated in place), so a
    concurrent reader of the list always sees a consistent prefix — the
    rejoin catch-up depends on every replica holding a prefix of it.
    """

    def __init__(self, shard_id: int, videos: list[str], replicas: list[_Replica]):
        self.id = shard_id
        self.videos = videos
        self.replicas = replicas
        self._rr = 0
        self._rr_lock = threading.Lock()

    @property
    def generation(self) -> int:
        """The group's generation: max over in-rotation replicas.

        The max guards the vector against a lagging rebuild and against
        a ``stale_generation`` liar while an honest sibling serves.
        Falls back to the max over all replicas when the whole group is
        out of rotation (nothing is serving; the last-known value is
        still the best estimate).
        """
        in_rotation = [r.generation for r in self.replicas if r.in_rotation]
        if in_rotation:
            return max(in_rotation)
        return max((r.generation for r in self.replicas), default=0)

    def pick(self, exclude: set[int] | frozenset[int] = frozenset()) -> _Replica | None:
        """The healthiest routable replica, or ``None``.

        Closed-breaker replicas within latency slack of the best are
        round-robined (spreading load keeps every reservoir warm);
        otherwise the first quarantined replica whose breaker grants a
        half-open probe slot carries the query as its probe.
        """
        candidates = [
            r
            for r in self.replicas
            if r.alive and r.in_rotation and r.index not in exclude
        ]
        if not candidates:
            return None
        healthy = [r for r in candidates if r.breaker.healthy]
        if healthy:
            ewma = {r.index: r.breaker.ewma_seconds or 0.0 for r in healthy}
            best = min(ewma.values())
            slack = max(3.0 * best, best + 0.005)
            pool = [r for r in healthy if ewma[r.index] <= slack]
            with self._rr_lock:
                choice = pool[self._rr % len(pool)]
                self._rr += 1
            return choice
        for candidate in candidates:
            if candidate.breaker.allow():
                return candidate
        return None


class _FanoutState:
    """Mutable bookkeeping for one query's scatter/failover/hedge run."""

    __slots__ = (
        "attempted",
        "current",
        "failovers",
        "handled_failures",
        "hedged",
        "hedges",
        "inflight",
        "req_ids",
        "sent_at",
    )

    def __init__(self) -> None:
        self.attempted: dict[int, set[int]] = {}  # shard -> replica indices tried
        self.inflight: dict[int, int] = {}  # shard -> outstanding requests
        self.handled_failures: dict[int, int] = {}  # shard -> failures accounted
        self.current: dict[int, _Replica] = {}  # shard -> latest primary target
        self.sent_at: dict[int, float] = {}  # shard -> latest primary send time
        self.hedged: set[int] = set()
        self.req_ids: list[int] = []
        self.failovers = 0
        self.hedges = 0


class ShardedSearchService:
    """Scatter-gather query serving over replicated shard worker processes.

    Args:
        video_names: the initial catalog, balanced across shards with
            :func:`assign_shards` and indexed by every replica of the
            owning group at spawn.
        seed: dataset seed every worker rebuilds from.
        config: the :class:`ShardingConfig`.
        fault_plan: optional :class:`~repro.faults.ShardFaultPlan`
            shipped to the workers (chaos soaks and tests); specs may
            target a whole shard or one ``(shard, replica)`` worker.
        dataset_args: extra picklable keyword arguments for the
            workers' ``build_australian_open(seed=seed, ...)`` call
            (benchmarks shrink ``video_shots``); must match whatever
            any unsharded comparison service was built from.

    Use as a context manager, or call :meth:`close`; worker processes
    are daemonic either way.
    """

    def __init__(
        self,
        video_names: list[str],
        *,
        seed: int = 0,
        config: ShardingConfig | None = None,
        fault_plan=None,
        dataset_args: dict | None = None,
    ) -> None:
        self.config = config or ShardingConfig()
        self.seed = seed
        self.dataset_args = dict(dataset_args or {})
        self._fault_plan = fault_plan
        self._ctx = mp.get_context(self.config.start_method)
        self._lock = threading.Lock()  # replica table + counters + close/restart
        self._pending_lock = threading.Lock()
        # req_id -> (gather, gather key, target replica)
        self._pending: dict[int, tuple[_Gather, object, _Replica]] = {}
        self._req_counter = 0
        self._cache: LRUCache = LRUCache(self.config.cache_size)
        self._recent: LRUCache = LRUCache(self.config.recent_size)
        self._write_lock = threading.Lock()  # serializes writes and rejoin catch-up
        self._closed = False

        self._queries = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._full_served = 0
        self._partial_served = 0
        self._stale_served = 0
        self._rejected = 0
        self._fanout_reservoir = LatencyReservoir(capacity=1024)
        self._stream_freshness: dict[int, dict] = {}  # shard -> last chunked-commit stats

        slices = assign_shards(list(video_names), self.config.n_shards)
        self.groups = [
            _ShardGroup(
                shard_id,
                slices[shard_id],
                [
                    _Replica(
                        shard_id,
                        index,
                        StageBreaker(
                            failure_threshold=self.config.failure_threshold,
                            cooldown=self.config.quarantine_cooldown,
                            alpha=self.config.breaker_alpha,
                        ),
                    )
                    for index in range(self.config.replication)
                ],
            )
            for shard_id in range(self.config.n_shards)
        ]
        for group in self.groups:
            for replica in group.replicas:
                self._spawn(group, replica)
        for group in self.groups:
            for replica in group.replicas:
                if not replica.ready.wait(timeout=120.0):
                    raise RuntimeError(
                        f"shard {group.id} replica {replica.index} "
                        "failed to become ready"
                    )
                replica.in_rotation = True

        self._prober_stop = threading.Event()
        self._prober = threading.Thread(
            target=self._probe_loop, name="shard-prober", daemon=True
        )
        self._prober.start()

    # -- lifecycle ------------------------------------------------------ #

    def _spawn(
        self,
        group: _ShardGroup,
        replica: _Replica,
        with_faults: bool = True,
        videos: list[str] | None = None,
    ) -> None:
        """Start (or restart) one replica worker and its receiver thread.

        Fault specs ship only on the *initial* spawn: a respawned
        worker is a fresh replacement, not a re-run of the failure —
        ``ShardFaultPlan.dead`` means "this worker dies once", and
        recovery is the part under test.
        """
        specs = ()
        if with_faults and self._fault_plan is not None:
            specs = self._fault_plan.for_worker(group.id, replica.index)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                group.id,
                replica.index,
                self.seed,
                self.dataset_args,
                list(videos if videos is not None else group.videos),
                self.config.worker_threads,
                self.config.cache_size,
                specs,
                child_conn,
            ),
            name=f"shard-{group.id}r{replica.index}",
            daemon=True,
        )
        replica.ready.clear()
        replica.conn = parent_conn
        replica.process = process
        process.start()
        child_conn.close()  # parent keeps only its end
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(replica, parent_conn),
            name=f"shard-recv-{group.id}r{replica.index}",
            daemon=True,
        )
        replica.receiver = receiver
        receiver.start()

    def _receive_loop(self, replica: _Replica, conn) -> None:
        """Drain one worker's replies; on EOF, quarantine and fail pending."""
        while True:
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                break
            if payload.get("kind") == "ready":
                replica.generation = payload["generation"]
                replica.ready.set()
                continue
            payload.setdefault("replica", replica.index)
            req_id = payload.get("req_id")
            with self._pending_lock:
                entry = self._pending.pop(req_id, None)
            if entry is None:
                continue  # late or hedged-duplicate response: first one won
            gather, key, _ = entry
            gather.deliver(key, payload)
        if replica.conn is conn:  # not an old pipe from before a restart
            replica.breaker.trip()
            self._fail_pending_for(replica)

    def _fail_pending_for(self, replica: _Replica) -> None:
        with self._pending_lock:
            doomed = [
                (req_id, gather, key)
                for req_id, (gather, key, target) in self._pending.items()
                if target is replica
            ]
            for req_id, _, _ in doomed:
                self._pending.pop(req_id, None)
        for _, gather, key in doomed:
            gather.deliver(key, {"status": "dead", "replica": replica.index})

    def close(self) -> None:
        """Stop the prober, shut workers down, reap processes.

        Idempotent and race-free against the background prober:
        ``_closed`` flips under the same lock :meth:`_restart` spawns
        under, so once this method returns no respawn can begin, and a
        respawn already in flight is reaped by the sweep below (which
        waits on that lock).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._prober_stop.set()
        prober = getattr(self, "_prober", None)
        if prober is not None and prober.is_alive():
            prober.join(timeout=10.0)
        with self._lock:
            for group in self.groups:
                for replica in group.replicas:
                    replica.in_rotation = False
                    replica.send(("shutdown",))
            for group in self.groups:
                for replica in group.replicas:
                    if replica.process is not None:
                        replica.process.join(timeout=2.0)
                        if replica.process.is_alive():
                            replica.process.terminate()
                            replica.process.join(timeout=2.0)
                    if replica.conn is not None:
                        try:
                            replica.conn.close()
                        except OSError:
                            pass

    def __enter__(self) -> "ShardedSearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- background probing / restart / rejoin -------------------------- #

    def _probe_loop(self) -> None:
        while not self._prober_stop.wait(self.config.probe_interval):
            for group in self.groups:
                for replica in group.replicas:
                    if self._closed or self._prober_stop.is_set():
                        return
                    if not replica.alive or replica.needs_rebuild:
                        if self.config.restart_dead:
                            self._restart(group, replica)
                        continue
                    if not replica.in_rotation:
                        self._rejoin(group, replica)
                        continue
                    if replica.breaker.state == "closed":
                        continue
                    # Quarantined but alive: half-open probe via a ping.
                    if replica.breaker.allow():
                        self._ping(replica)

    def _restart(self, group: _ShardGroup, replica: _Replica) -> None:
        """Respawn a dead (or unknown-state) replica, then rebuild + rejoin.

        The rebuild is deterministic — same seed, same slice — and the
        worker runs it in the background while siblings keep serving;
        :meth:`_rejoin` verifies generation alignment before the
        replica re-enters rotation.
        """
        with self._lock:
            if self._closed:
                return
            if replica.alive and not replica.needs_rebuild:
                return
            old_process = replica.process
            old_conn = replica.conn
            if old_process is not None:
                if old_process.is_alive():
                    old_process.terminate()
                old_process.join(timeout=5.0)
            replica.restarts += 1
            replica.needs_rebuild = False
            replica.in_rotation = False
            self._spawn(group, replica, with_faults=False)
            # Close the superseded pipe only after the replica points at
            # the new one: the old receiver's EOF check (`conn is
            # replica.conn`) must not trip the fresh breaker.
            if old_conn is not None:
                try:
                    old_conn.close()
                except OSError:
                    pass
        if self._await_ready(replica, timeout=120.0):
            self._rejoin(group, replica)

    def _await_ready(self, replica: _Replica, timeout: float) -> bool:
        """Wait for a respawned worker's ready message, abortable on close."""
        deadline = time.monotonic() + timeout
        while not replica.ready.wait(timeout=0.1):
            if self._closed or self._prober_stop.is_set():
                return False
            if not replica.alive:
                return False
            if time.monotonic() >= deadline:
                return False
        return True

    def _rejoin(self, group: _ShardGroup, replica: _Replica) -> bool:
        """Catch a rebuilt replica up and verify alignment before rotation.

        Under the write lock (no commit may interleave with catch-up):
        index the suffix of the group's authoritative video list the
        replica has not seen, then require its generation to *equal*
        the group's expected value.  A replica that cannot align is
        marked for rebuild — an out-of-step generation vector never
        serves.
        """
        if self._closed or not replica.ready.is_set() or not replica.alive:
            return False
        with self._write_lock:
            if self._closed or replica.needs_rebuild or not replica.alive:
                return False
            expected = len(group.videos)
            if replica.generation < expected:
                missing = group.videos[replica.generation :]
                if not self._index_on_replica(replica, missing):
                    replica.needs_rebuild = True
                    replica.in_rotation = False
                    return False
            if replica.generation != expected:
                replica.needs_rebuild = True
                replica.in_rotation = False
                return False
            replica.in_rotation = True
        if replica.breaker.state != "closed" and replica.breaker.allow():
            self._ping(replica)
        return True

    def _index_on_replica(
        self, replica: _Replica, names: list[str], timeout: float = 600.0
    ) -> bool:
        """Single-replica write barrier (rejoin catch-up); updates generation."""
        key = (replica.shard_id, replica.index)
        gather = _Gather([key], settle_on_failure=True)
        req_id = self._register(gather, key, replica)
        try:
            if not replica.send(("index_batch", req_id, list(names))):
                return False
            deadline = time.perf_counter() + timeout
            with gather.cond:
                while not gather.done():
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        return False
                    gather.cond.wait(timeout=min(remaining, 1.0))
        finally:
            self._unregister(req_id)
        payload = gather.responses.get(key)
        if payload is not None and payload.get("status") == "ok":
            replica.generation = payload["generation"]
            return True
        return False

    def _ping(self, replica: _Replica) -> bool:
        key = (replica.shard_id, replica.index)
        gather = _Gather([key], settle_on_failure=True)
        req_id = self._register(gather, key, replica)
        started = time.perf_counter()
        if not replica.send(("ping", req_id)):
            self._unregister(req_id)
            replica.breaker.record_failure()
            return False
        deadline = started + max(self.config.quarantine_cooldown, 0.1)
        try:
            with gather.cond:
                while not gather.done():
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    gather.cond.wait(timeout=remaining)
        finally:
            self._unregister(req_id)
        payload = gather.responses.get(key)
        if payload is not None and payload.get("status") == "ok":
            replica.generation = payload.get("generation", replica.generation)
            replica.breaker.record_success(time.perf_counter() - started)
            return True
        replica.breaker.record_failure()
        return False

    # -- fan-out plumbing ----------------------------------------------- #

    def _register(self, gather: _Gather, key, replica: _Replica) -> int:
        with self._pending_lock:
            self._req_counter += 1
            req_id = self._req_counter
            self._pending[req_id] = (gather, key, replica)
            return req_id

    def _unregister(self, req_id: int) -> None:
        with self._pending_lock:
            self._pending.pop(req_id, None)

    @property
    def generations(self) -> tuple[int, ...]:
        """The known per-shard generation vector (group generations)."""
        return tuple(group.generation for group in self.groups)

    # -- serving --------------------------------------------------------- #

    def search(
        self,
        query: LibraryQuery,
        *,
        budget: QueryBudget | None = None,
        bypass_cache: bool = False,
    ) -> ShardedServedQuery:
        """Serve one query by scatter-gather over the healthy replicas.

        Never raises for shard-side trouble: a failing replica fails
        over to a sibling inside the deadline, missing coverage comes
        back *typed* on :attr:`ShardedServedQuery.coverage`, and the
        ladder (partial → stale → reject) decides what the answer is.
        """
        started = time.perf_counter()
        if budget is None and self.config.budget_seconds is not None:
            budget = QueryBudget(seconds=self.config.budget_seconds)
        key = canonical_query_key(query)
        vector = self.generations

        if not bypass_cache:
            cached = self._cache.get((vector, key))
            if cached is not None:
                results, coverage = cached
                served = ShardedServedQuery(
                    results=list(results),
                    coverage=coverage,
                    generations=vector,
                    cache_hit=True,
                    seconds=time.perf_counter() - started,
                )
                self._record(served)
                return served

        served = self._scatter_gather(query, key, budget, bypass_cache, started)
        self._record(served)
        return served

    def _dispatch(
        self,
        gather: _Gather,
        group: _ShardGroup,
        replica: _Replica | None,
        query: LibraryQuery,
        slice_seconds: float | None,
        bypass_cache: bool,
        state: _FanoutState,
        failover: bool = False,
    ) -> bool:
        """Send one sub-query, walking siblings past dead pipes.

        Updates the fan-out state (attempted set, in-flight count,
        current target) and exhausts the shard's gather key only when
        no request is left in flight and no sibling remains.
        """
        target = replica
        while target is not None:
            state.attempted.setdefault(group.id, set()).add(target.index)
            req_id = self._register(gather, group.id, target)
            state.req_ids.append(req_id)
            target.queries += 1
            if failover:
                target.failovers += 1
                state.failovers += 1
            if target.send(("query", req_id, query, slice_seconds, bypass_cache)):
                state.current[group.id] = target
                state.sent_at[group.id] = time.perf_counter()
                state.inflight[group.id] = state.inflight.get(group.id, 0) + 1
                return True
            # Dead pipe: charge this replica, try the next sibling.
            self._unregister(req_id)
            target.failures += 1
            target.breaker.trip()
            target = group.pick(exclude=state.attempted[group.id])
            failover = True
        if state.inflight.get(group.id, 0) <= 0:
            gather.exhaust(group.id)
        return False

    def _scatter_gather(
        self,
        query: LibraryQuery,
        key: str,
        budget: QueryBudget | None,
        bypass_cache: bool,
        started: float,
    ) -> ShardedServedQuery:
        slice_seconds = (
            budget.slice_seconds(self.config.shard_slice) if budget is not None else None
        )

        # Scatter: one healthiest replica per routable group.  Groups
        # with no routable replica are missing up front.
        plan: list[tuple[_ShardGroup, _Replica]] = []
        for group in self.groups:
            replica = group.pick()
            if replica is not None:
                plan.append((group, replica))

        gather = _Gather([group.id for group, _ in plan])
        state = _FanoutState()
        try:
            for group, replica in plan:
                self._dispatch(
                    gather, group, replica, query, slice_seconds, bypass_cache, state
                )
            if plan:
                self._gather_wait(
                    gather, plan, budget, query, slice_seconds, bypass_cache, state
                )
        finally:
            # Interrupted or not, no pending entry may leak: late
            # responses to a finished fan-out must hit nothing.
            for req_id in state.req_ids:
                self._unregister(req_id)

        # Health accounting + response triage, credited per replica.
        parts: dict[int, list[SceneResult]] = {}
        responded: list[int] = []
        now = time.perf_counter()
        for group, _ in plan:
            sid = group.id
            payload = gather.responses.get(sid)
            failures = gather.failures.get(sid, [])
            for failure in failures:
                culprit = group.replicas[failure.get("replica", 0)]
                culprit.failures += 1
                if failure.get("status") != "dead":
                    culprit.breaker.record_failure()
                # a dead replica's breaker was tripped by its receiver
            if payload is not None:
                winner = group.replicas[payload.get("replica", 0)]
                responded.append(sid)
                parts[sid] = payload["results"]
                winner.generation = payload.get("generation", winner.generation)
                elapsed = now - state.sent_at.get(sid, started)
                winner.reservoir.add(payload.get("seconds", elapsed))
                winner.breaker.record_success(elapsed)
            else:
                outstanding = state.inflight.get(sid, 0) - (
                    len(failures) - state.handled_failures.get(sid, 0)
                )
                if outstanding > 0:
                    # Deadline expired with a request still in flight:
                    # the straggler is the latest target.
                    straggler = state.current.get(sid)
                    if straggler is not None:
                        straggler.failures += 1
                        straggler.breaker.record_failure(
                            now - state.sent_at.get(sid, started)
                        )

        responded_set = set(responded)
        coverage = Coverage(
            responded=tuple(sorted(responded)),
            missing=tuple(
                group.id for group in self.groups if group.id not in responded_set
            ),
        )
        vector = self.generations  # refreshed by the responses

        if coverage.complete:
            results = merge_scene_results(
                [parts[sid] for sid in coverage.responded], query.top_n
            )
            if not bypass_cache:
                self._cache.put((vector, key), (list(results), coverage))
                self._recent.put(key, (list(results), coverage, vector))
            return ShardedServedQuery(
                results=results,
                coverage=coverage,
                generations=vector,
                cache_hit=False,
                seconds=time.perf_counter() - started,
                hedged=state.hedges,
                failovers=state.failovers,
            )

        if (
            self.config.partial_serving
            and len(coverage.responded) >= self.config.min_coverage
        ):
            results = merge_scene_results(
                [parts[sid] for sid in coverage.responded], query.top_n
            )
            return ShardedServedQuery(
                results=results,
                coverage=coverage,
                generations=vector,
                cache_hit=False,
                seconds=time.perf_counter() - started,
                hedged=state.hedges,
                failovers=state.failovers,
            )

        if self.config.stale_serving and not bypass_cache:
            stale = self._recent.get(key)
            if stale is not None:
                results, stale_coverage, stale_vector = stale
                return ShardedServedQuery(
                    results=list(results),
                    coverage=stale_coverage,
                    generations=stale_vector,
                    cache_hit=False,
                    seconds=time.perf_counter() - started,
                    hedged=state.hedges,
                    failovers=state.failovers,
                    stale=True,
                )

        return ShardedServedQuery(
            results=[],
            coverage=coverage,
            generations=vector,
            cache_hit=False,
            seconds=time.perf_counter() - started,
            hedged=state.hedges,
            failovers=state.failovers,
            rejection="no_coverage",
        )

    def _gather_wait(
        self,
        gather: _Gather,
        plan: list[tuple[_ShardGroup, _Replica]],
        budget: QueryBudget | None,
        query: LibraryQuery,
        slice_seconds: float | None,
        bypass_cache: bool,
        state: _FanoutState,
    ) -> None:
        """Wait for the fan-out, failing over and hedging between waits.

        Every wait carries a timeout (the audit invariant: no
        ``Condition.wait()`` in the serving path may block forever).
        Each wake-up first re-dispatches shards whose every in-flight
        request has failed (sibling failover within the remaining
        budget), then hedges stragglers past their replica's percentile
        trigger — to an untried sibling when one exists, else to the
        same worker.
        """
        groups = {group.id: group for group, _ in plan}
        if budget is not None:
            remaining = budget.remaining()
            horizon = (
                remaining if remaining is not None else self.config.gather_floor_seconds
            )
        else:
            horizon = self.config.gather_floor_seconds
        deadline = time.perf_counter() + max(0.0, horizon)
        poll = max(self.config.hedge_min_seconds / 4.0, 0.002)

        while True:
            with gather.cond:
                if gather.done():
                    return
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return
                gather.cond.wait(timeout=min(remaining, poll))
                if gather.done():
                    return
                failure_counts = {
                    sid: len(failures) for sid, failures in gather.failures.items()
                }
                settled = set(gather.responses) | set(gather.exhausted)

            # Failover pass: a shard with no live request left gets
            # re-dispatched to an untried sibling (fresh budget slice)
            # or exhausted when none remains.
            for sid, group in groups.items():
                if sid in settled:
                    continue
                new_failures = failure_counts.get(sid, 0) - state.handled_failures.get(
                    sid, 0
                )
                if new_failures > 0:
                    state.handled_failures[sid] = failure_counts[sid]
                    state.inflight[sid] = state.inflight.get(sid, 0) - new_failures
                if state.inflight.get(sid, 0) > 0:
                    continue
                target = group.pick(exclude=state.attempted.get(sid, set()))
                if target is None:
                    gather.exhaust(sid)
                    continue
                failover_slice = (
                    budget.slice_seconds(self.config.shard_slice)
                    if budget is not None
                    else None
                )
                self._dispatch(
                    gather,
                    group,
                    target,
                    query,
                    failover_slice,
                    bypass_cache,
                    state,
                    failover=True,
                )

            if not self.config.hedge:
                continue
            now = time.perf_counter()
            for sid, group in groups.items():
                if sid in settled or sid in state.hedged:
                    continue
                current = state.current.get(sid)
                if current is None or sid not in state.sent_at:
                    continue
                trigger = max(
                    current.reservoir.percentile_or(
                        self.config.hedge_percentile,
                        self.config.hedge_min_seconds,
                        min_samples=8,
                    ),
                    self.config.hedge_min_seconds,
                )
                if now - state.sent_at[sid] < trigger:
                    continue
                # Hedge to an untried sibling replica when one exists;
                # otherwise re-issue to the same worker, whose second
                # evaluation thread can overtake a hung delivery.
                target = group.pick(exclude=state.attempted.get(sid, set())) or current
                state.hedged.add(sid)
                state.hedges += 1
                target.hedges += 1
                state.attempted.setdefault(sid, set()).add(target.index)
                req_id = self._register(gather, sid, target)
                state.req_ids.append(req_id)
                if target.send(("query", req_id, query, slice_seconds, bypass_cache)):
                    state.inflight[sid] = state.inflight.get(sid, 0) + 1
                else:
                    self._unregister(req_id)

    # -- indexing -------------------------------------------------------- #

    def index_video(self, name: str) -> int:
        """Index one more video on its home shard; returns the shard id.

        The strict single-video contract: raises ``RuntimeError`` when
        the home shard did not commit (batch callers wanting partial
        progress use :meth:`index_videos` and read the typed outcomes).
        """
        result = self.index_videos([name])
        shard_id = result.assignments[name]
        outcome = result.outcomes[shard_id]
        if not outcome.committed:
            raise RuntimeError(
                f"shard {shard_id} failed to index {name!r}: "
                f"{outcome.error or outcome.status}"
            )
        return shard_id

    def stream_videos(
        self, names: list[str], chunk_frames: int = 32, timeout: float = 600.0
    ) -> BatchIndexResult:
        """Chunk-append a batch of videos; generations bump per chunk.

        The scatter/barrier discipline of :meth:`index_videos`, but each
        home replica ingests its slice through the streaming path — so
        queries racing the write observe the stream's shots at chunk
        granularity rather than all-at-once, and the workers report
        frame-arrival -> queryable freshness percentiles that surface in
        :meth:`stats` (``stream freshness`` rows in
        ``repro health``/``repro query-stats``).
        """
        return self.index_videos(names, timeout=timeout, chunk_frames=chunk_frames)

    def index_videos(
        self,
        names: list[str],
        timeout: float = 600.0,
        *,
        chunk_frames: int | None = None,
    ) -> BatchIndexResult:
        """Index a batch; every live replica of each home shard commits it.

        The batch is striped across shards with :func:`assign_shards`
        (the initial-catalog discipline — balanced to within one video;
        a lone video routes by pure :func:`shard_of`); per-shard slices
        scatter to *all* in-rotation replicas of the owning group
        concurrently behind a group commit barrier, keeping the
        generation vectors of serving replicas aligned.  A replica that
        fails or times out its commit is in an unknown state: it is
        pulled from rotation and rebuilt in the background, while the
        slice counts as committed if *any* replica landed it.

        Never raises for shard-side trouble: the returned
        :class:`BatchIndexResult` carries a typed per-shard outcome
        (``committed`` with the new generation, ``failed``, or
        ``down``), so a timeout cannot raise away the shards that did
        commit.  Callers needing all-or-nothing check ``result.ok``.

        With *chunk_frames* set (see :meth:`stream_videos`) the slices
        go down the workers' chunk-append path instead of the batch
        path.
        """
        if not names:
            return BatchIndexResult(assignments={}, outcomes={})
        if len(names) == 1:
            slices: list[list[str]] = [[] for _ in range(self.config.n_shards)]
            slices[shard_of(names[0], self.config.n_shards)].append(names[0])
        else:
            slices = assign_shards(names, self.config.n_shards)
        assignments = {name: sid for sid, batch in enumerate(slices) for name in batch}
        by_shard = {sid: batch for sid, batch in enumerate(slices) if batch}
        outcomes: dict[int, ShardWriteOutcome] = {}

        with self._write_lock:
            targets: dict[int, list[_Replica]] = {}
            for sid in by_shard:
                group = self.groups[sid]
                live = [r for r in group.replicas if r.alive and r.in_rotation]
                if not live:
                    outcomes[sid] = ShardWriteOutcome(
                        shard=sid,
                        status="down",
                        error="no live replica in rotation",
                    )
                    continue
                targets[sid] = live

            keys = [(sid, r.index) for sid, live in targets.items() for r in live]
            gather = _Gather(keys, settle_on_failure=True)
            req_ids: list[int] = []
            try:
                for sid, live in targets.items():
                    batch = by_shard[sid]
                    for replica in live:
                        req_id = self._register(gather, (sid, replica.index), replica)
                        req_ids.append(req_id)
                        if chunk_frames is not None:
                            command = ("index_chunked", req_id, list(batch), chunk_frames)
                        else:
                            command = ("index_batch", req_id, list(batch))
                        if not replica.send(command):
                            self._unregister(req_id)
                            gather.deliver(
                                (sid, replica.index),
                                {"status": "dead", "replica": replica.index},
                            )
                deadline = time.perf_counter() + timeout
                with gather.cond:
                    while not gather.done():
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0:
                            break  # timeout is a per-replica outcome, not a raise
                        gather.cond.wait(timeout=min(remaining, 1.0))
            finally:
                for req_id in req_ids:
                    self._unregister(req_id)

            for sid, live in targets.items():
                batch = by_shard[sid]
                group = self.groups[sid]
                committed: list[int] = []
                failed: list[int] = []
                error: str | None = None
                for replica in live:
                    payload = gather.responses.get((sid, replica.index))
                    if payload is not None and payload.get("status") == "ok":
                        replica.generation = payload["generation"]
                        committed.append(replica.index)
                        if chunk_frames is not None and "freshness" in payload:
                            self._stream_freshness[sid] = {
                                "chunks": payload.get("chunks", 0),
                                **(payload.get("freshness") or {}),
                            }
                        continue
                    failures = gather.failures.get((sid, replica.index), [])
                    message = failures[0].get("message") if failures else None
                    if message is None and failures:
                        message = failures[0].get("status")
                    error = message or error or "commit timed out"
                    failed.append(replica.index)
                    replica.failures += 1
                    # Unknown state after a failed/timed-out commit:
                    # out of rotation until rebuilt and re-verified.
                    replica.in_rotation = False
                    replica.needs_rebuild = True
                    replica.breaker.trip()
                if committed:
                    group.videos = group.videos + list(batch)
                    outcomes[sid] = ShardWriteOutcome(
                        shard=sid,
                        status="committed",
                        generation=max(
                            group.replicas[index].generation for index in committed
                        ),
                        error=error,
                        replicas_committed=tuple(committed),
                        replicas_failed=tuple(failed),
                    )
                else:
                    outcomes[sid] = ShardWriteOutcome(
                        shard=sid,
                        status="failed",
                        error=error or "no replica committed",
                        replicas_failed=tuple(failed),
                    )
        return BatchIndexResult(assignments=assignments, outcomes=outcomes)

    # -- observability ---------------------------------------------------- #

    def _record(self, served: ShardedServedQuery) -> None:
        with self._lock:
            self._queries += 1
            self._fanout_reservoir.add(served.seconds)
            if served.cache_hit:
                self._cache_hits += 1
            else:
                self._cache_misses += 1
            if served.rejected:
                self._rejected += 1
            elif served.stale:
                self._stale_served += 1
            elif not served.coverage.complete:
                self._partial_served += 1
            else:
                self._full_served += 1

    def stats(self) -> ShardedStats:
        replicas = [r for group in self.groups for r in group.replicas]
        with self._lock:
            stats = ShardedStats(
                queries=self._queries,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                full_served=self._full_served,
                partial_served=self._partial_served,
                stale_served=self._stale_served,
                rejected=self._rejected,
                hedges=sum(r.hedges for r in replicas),
                failovers=sum(r.failovers for r in replicas),
                restarts=sum(r.restarts for r in replicas),
                generations=self.generations,
                fanout=self._fanout_reservoir.summary(),
                stream_freshness={
                    sid: dict(row) for sid, row in self._stream_freshness.items()
                },
            )
        order = {"closed": 0, "half_open": 1, "open": 2}
        for group in self.groups:
            rows = [
                ReplicaHealth(
                    replica=r.index,
                    alive=r.alive,
                    in_rotation=r.in_rotation,
                    breaker_state=r.breaker.state,
                    generation=r.generation,
                    queries=r.queries,
                    failures=r.failures,
                    hedges=r.hedges,
                    failovers=r.failovers,
                    restarts=r.restarts,
                    latency=r.reservoir.summary(),
                )
                for r in group.replicas
            ]
            stats.shards.append(
                ShardHealth(
                    shard=group.id,
                    alive=any(row.alive for row in rows),
                    breaker_state=min(
                        (row.breaker_state for row in rows),
                        key=lambda s: order.get(s, 3),
                    ),
                    generation=group.generation,
                    videos=len(group.videos),
                    queries=sum(row.queries for row in rows),
                    failures=sum(row.failures for row in rows),
                    hedges=sum(row.hedges for row in rows),
                    failovers=sum(row.failovers for row in rows),
                    restarts=sum(row.restarts for row in rows),
                    latency=merged_summary([r.reservoir for r in group.replicas]),
                    replicas=rows,
                )
            )
        return stats
