"""Meta-index persistence for the library.

Indexing video is the expensive step; this module saves the populated
COBRA meta-index to disk (via the column store's catalogue format) and
restores it, so a library survives process restarts without
re-extraction.  Trajectories are stored per object as flat per-frame
rows — the column store has no nested types, as a 2002 DBMS had none.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.model import CobraModel
from repro.storage.catalog import Catalog
from repro.storage.persist import load_catalog, save_catalog

__all__ = [
    "model_to_catalog",
    "catalog_to_model",
    "runner_state_to_catalog",
    "catalog_to_runner_state",
    "stream_state_to_catalog",
    "catalog_to_stream_state",
    "save_model",
    "load_model",
    "load_model_with_ann",
    "load_model_with_state",
    "load_stream_state",
    "RUNNER_STATE_TABLE",
    "STREAM_STATE_TABLE",
]

#: Table holding persisted :class:`~repro.grammar.runtime.DetectorRunner`
#: quarantine state, stored next to the meta-index tables.
RUNNER_STATE_TABLE = "runner_state"

#: Table holding in-flight streaming-ingest resume state, one row per
#: live stream.  Finished streams drop their row, so a snapshot of a
#: fully-ingested library carries no ``stream_state`` table and is
#: byte-identical to a batch-indexed one.
STREAM_STATE_TABLE = "stream_state"


def model_to_catalog(model: CobraModel) -> Catalog:
    """Materialise a meta-index as relational tables (lossless)."""
    catalog = Catalog()

    videos = catalog.create_table(
        "videos",
        {
            "video_id": "int",
            "name": "str",
            "fps": "float",
            "n_frames": "int",
            "has_match": "bool",
            "match_id": "int",
            "degraded": "bool",
        },
    )
    for video in model.videos:
        # NULL-ness is an explicit flag, not a -1 sentinel: any int is a
        # legal match_id, and None must come back as None.
        videos.append(
            {
                "video_id": video.video_id,
                "name": video.name,
                "fps": video.fps,
                "n_frames": video.n_frames,
                "has_match": video.match_id is not None,
                "match_id": video.match_id if video.match_id is not None else 0,
                "degraded": video.degraded,
            }
        )

    shots = catalog.create_table(
        "shots",
        {"shot_id": "int", "video_id": "int", "start": "int", "stop": "int", "category": "str"},
    )
    shot_features = catalog.create_table(
        "shot_features", {"shot_id": "int", "name": "str", "value": "float"}
    )
    for shot in model.shots:
        shots.append(
            {
                "shot_id": shot.shot_id,
                "video_id": shot.video_id,
                "start": shot.start,
                "stop": shot.stop,
                "category": shot.category,
            }
        )
        for name, value in sorted(shot.features.items()):
            shot_features.append({"shot_id": shot.shot_id, "name": name, "value": value})

    objects = catalog.create_table(
        "objects",
        {
            "object_id": "int",
            "shot_id": "int",
            "label": "str",
            "r": "float",
            "g": "float",
            "b": "float",
            "mean_area": "float",
        },
    )
    trajectories = catalog.create_table(
        "trajectories",
        {"object_id": "int", "frame": "int", "found": "bool", "row": "float", "col": "float"},
    )
    for obj in model.objects:
        objects.append(
            {
                "object_id": obj.object_id,
                "shot_id": obj.shot_id,
                "label": obj.label,
                "r": obj.dominant_color[0],
                "g": obj.dominant_color[1],
                "b": obj.dominant_color[2],
                "mean_area": obj.mean_area,
            }
        )
        for frame, position in enumerate(obj.trajectory):
            trajectories.append(
                {
                    "object_id": obj.object_id,
                    "frame": frame,
                    "found": position is not None,
                    "row": position[0] if position else 0.0,
                    "col": position[1] if position else 0.0,
                }
            )

    events = catalog.create_table(
        "events",
        {
            "event_id": "int",
            "shot_id": "int",
            "label": "str",
            "start": "int",
            "stop": "int",
            "confidence": "float",
            "object_id": "int",
        },
    )
    for event in model.events:
        events.append(
            {
                "event_id": event.event_id,
                "shot_id": event.shot_id,
                "label": event.label,
                "start": event.start,
                "stop": event.stop,
                "confidence": event.confidence,
                "object_id": event.object_id if event.object_id is not None else -1,
            }
        )
    return catalog


def catalog_to_model(catalog: Catalog) -> CobraModel:
    """Rebuild a meta-index from :func:`model_to_catalog` tables.

    Identifiers are reassigned by the fresh model in original order; the
    cross-references (video->shot->object/event) are remapped.
    """
    model = CobraModel()

    video_map: dict[int, int] = {}
    for row in sorted(catalog.table("videos").scan(), key=lambda r: r["video_id"]):
        # Files written before the has_match flag used a -1 sentinel.
        has_match = row.get("has_match", row["match_id"] >= 0)
        video = model.add_video(
            name=row["name"],
            fps=row["fps"],
            n_frames=row["n_frames"],
            match_id=row["match_id"] if has_match else None,
        )
        # Files written before degraded indexing existed lack the column.
        if row.get("degraded"):
            model.mark_degraded(video.video_id)
        video_map[row["video_id"]] = video.video_id

    features_by_shot: dict[int, dict[str, float]] = {}
    for row in catalog.table("shot_features").scan():
        features_by_shot.setdefault(row["shot_id"], {})[row["name"]] = row["value"]

    shot_map: dict[int, int] = {}
    for row in sorted(catalog.table("shots").scan(), key=lambda r: r["shot_id"]):
        shot = model.add_shot(
            video_map[row["video_id"]],
            start=row["start"],
            stop=row["stop"],
            category=row["category"],
            features=features_by_shot.get(row["shot_id"], {}),
        )
        shot_map[row["shot_id"]] = shot.shot_id

    points_by_object: dict[int, list] = {}
    for row in catalog.table("trajectories").scan():
        points_by_object.setdefault(row["object_id"], []).append(row)

    object_map: dict[int, int] = {}
    for row in sorted(catalog.table("objects").scan(), key=lambda r: r["object_id"]):
        points = sorted(points_by_object.get(row["object_id"], []), key=lambda p: p["frame"])
        trajectory = [
            (p["row"], p["col"]) if p["found"] else None for p in points
        ]
        obj = model.add_object(
            shot_map[row["shot_id"]],
            label=row["label"],
            trajectory=trajectory,
            dominant_color=(row["r"], row["g"], row["b"]),
            mean_area=row["mean_area"],
        )
        object_map[row["object_id"]] = obj.object_id

    for row in sorted(catalog.table("events").scan(), key=lambda r: r["event_id"]):
        model.add_event(
            shot_map[row["shot_id"]],
            label=row["label"],
            start=row["start"],
            stop=row["stop"],
            confidence=row["confidence"],
            object_id=object_map.get(row["object_id"]) if row["object_id"] >= 0 else None,
        )
    return model


def runner_state_to_catalog(state: dict, catalog: Catalog) -> None:
    """Materialise detector-runner quarantine state as a table.

    *state* is :meth:`~repro.grammar.runtime.DetectorRunner.export_state`
    output.  The table lives next to the meta-index tables so one
    snapshot carries both the data and the health bookkeeping.
    """
    table = catalog.create_table(
        RUNNER_STATE_TABLE,
        {
            "detector": "str",
            "consecutive_failures": "int",
            "quarantined": "bool",
            "quarantined_version": "int",
        },
    )
    failures = state.get("consecutive_failures", {})
    versions = state.get("quarantined_version", {})
    for name in sorted(set(failures) | set(versions)):
        version = versions.get(name)
        table.append(
            {
                "detector": name,
                "consecutive_failures": int(failures.get(name, 0)),
                "quarantined": version is not None,
                "quarantined_version": int(version) if version is not None else 0,
            }
        )


def catalog_to_runner_state(catalog: Catalog) -> dict | None:
    """Rebuild runner state from :func:`runner_state_to_catalog`'s table.

    Returns:
        A dict :meth:`~repro.grammar.runtime.DetectorRunner.restore_state`
        accepts, or ``None`` when the snapshot predates runner-state
        persistence (no ``runner_state`` table).
    """
    if RUNNER_STATE_TABLE not in catalog:
        return None
    failures: dict[str, int] = {}
    versions: dict[str, int] = {}
    for row in catalog.table(RUNNER_STATE_TABLE).scan():
        if row["consecutive_failures"]:
            failures[row["detector"]] = row["consecutive_failures"]
        if row["quarantined"]:
            versions[row["detector"]] = row["quarantined_version"]
    return {"consecutive_failures": failures, "quarantined_version": versions}


def stream_state_to_catalog(states: list[dict], catalog: Catalog) -> None:
    """Materialise in-flight streaming resume state as a table.

    Each row is a :meth:`~repro.streaming.session.StreamSession.export_state`
    dict: the stream name, last committed chunk ``seq``, the exactly-once
    ``watermark`` (re-feed frames from here), the boundary-scan
    ``scan_base`` (raw boundary events before it are already committed
    and must be suppressed on resume), and cumulative frame/shot totals.
    """
    table = catalog.create_table(
        STREAM_STATE_TABLE,
        {
            "stream": "str",
            "seq": "int",
            "watermark": "int",
            "scan_base": "int",
            "frames": "int",
            "shots": "int",
        },
    )
    for state in states:
        table.append(
            {
                "stream": state["stream"],
                "seq": int(state["seq"]),
                "watermark": int(state["watermark"]),
                "scan_base": int(state["scan_base"]),
                "frames": int(state["frames"]),
                "shots": int(state["shots"]),
            }
        )


def catalog_to_stream_state(catalog: Catalog) -> dict[str, dict]:
    """Rebuild stream resume state, keyed by stream name (empty when the
    snapshot has no in-flight streams)."""
    if STREAM_STATE_TABLE not in catalog:
        return {}
    return {row["stream"]: dict(row) for row in catalog.table(STREAM_STATE_TABLE).scan()}


def load_stream_state(path: str | Path) -> dict[str, dict]:
    """Read the in-flight stream table of a snapshot file."""
    return catalog_to_stream_state(load_catalog(path))


def save_model(
    model: CobraModel,
    path: str | Path,
    runner_state: dict | None = None,
    ann: tuple | None = None,
    stream_state: list[dict] | None = None,
) -> None:
    """Atomically snapshot a meta-index (plus optional runner state).

    Args:
        model: the meta-index to save.
        path: snapshot path (written atomically; see
            :func:`repro.storage.persist.save_catalog`).
        runner_state: optional
            :meth:`~repro.grammar.runtime.DetectorRunner.export_state`
            output, persisted in the ``runner_state`` table so detector
            quarantine survives restarts.
        ann: optional ``(AnnIndex, shot_meta)`` pair, persisted as the
            checksummed ``ann_*`` tables (see :mod:`repro.ir.ann`) so
            the query-by-example index rides the same snapshot and is
            validated by ``repro fsck``.
        stream_state: in-flight streaming resume rows (see
            :func:`stream_state_to_catalog`); omitted when empty so
            finished ingests leave batch-identical snapshots.
    """
    catalog = model_to_catalog(model)
    if runner_state is not None:
        runner_state_to_catalog(runner_state, catalog)
    if ann is not None:
        from repro.ir.ann import export_ann_to_catalog

        index, shot_meta = ann
        export_ann_to_catalog(index, shot_meta, catalog)
    if stream_state:
        stream_state_to_catalog(stream_state, catalog)
    save_catalog(catalog, path)


def load_model(path: str | Path) -> CobraModel:
    """Load a meta-index saved by :func:`save_model`."""
    return catalog_to_model(load_catalog(path))


def load_model_with_ann(path: str | Path):
    """Load a meta-index plus its ANN snapshot, if one was saved.

    Returns ``(model, ann)`` where ``ann`` is the ``(AnnIndex,
    shot_meta)`` pair or ``None`` when the snapshot carries no ANN
    tables.  Raises :class:`repro.ir.ann.AnnSnapshotError` when the
    tables exist but fail validation — corruption is a typed error,
    never a silently wrong index.
    """
    from repro.ir.ann import has_ann_tables, load_ann_from_catalog

    catalog = load_catalog(path)
    ann = load_ann_from_catalog(catalog) if has_ann_tables(catalog) else None
    return catalog_to_model(catalog), ann


def load_model_with_state(path: str | Path) -> tuple[CobraModel, dict | None]:
    """Load a meta-index plus its persisted runner state (if any)."""
    catalog = load_catalog(path)
    return catalog_to_model(catalog), catalog_to_runner_state(catalog)
