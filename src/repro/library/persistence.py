"""Meta-index persistence for the library.

Indexing video is the expensive step; this module saves the populated
COBRA meta-index to disk (via the column store's catalogue format) and
restores it, so a library survives process restarts without
re-extraction.  Trajectories are stored per object as flat per-frame
rows — the column store has no nested types, as a 2002 DBMS had none.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.model import CobraModel
from repro.storage.catalog import Catalog
from repro.storage.persist import load_catalog, save_catalog

__all__ = ["model_to_catalog", "catalog_to_model", "save_model", "load_model"]


def model_to_catalog(model: CobraModel) -> Catalog:
    """Materialise a meta-index as relational tables (lossless)."""
    catalog = Catalog()

    videos = catalog.create_table(
        "videos",
        {
            "video_id": "int",
            "name": "str",
            "fps": "float",
            "n_frames": "int",
            "match_id": "int",
            "degraded": "bool",
        },
    )
    for video in model.videos:
        videos.append(
            {
                "video_id": video.video_id,
                "name": video.name,
                "fps": video.fps,
                "n_frames": video.n_frames,
                "match_id": video.match_id if video.match_id is not None else -1,
                "degraded": video.degraded,
            }
        )

    shots = catalog.create_table(
        "shots",
        {"shot_id": "int", "video_id": "int", "start": "int", "stop": "int", "category": "str"},
    )
    shot_features = catalog.create_table(
        "shot_features", {"shot_id": "int", "name": "str", "value": "float"}
    )
    for shot in model.shots:
        shots.append(
            {
                "shot_id": shot.shot_id,
                "video_id": shot.video_id,
                "start": shot.start,
                "stop": shot.stop,
                "category": shot.category,
            }
        )
        for name, value in sorted(shot.features.items()):
            shot_features.append({"shot_id": shot.shot_id, "name": name, "value": value})

    objects = catalog.create_table(
        "objects",
        {
            "object_id": "int",
            "shot_id": "int",
            "label": "str",
            "r": "float",
            "g": "float",
            "b": "float",
            "mean_area": "float",
        },
    )
    trajectories = catalog.create_table(
        "trajectories",
        {"object_id": "int", "frame": "int", "found": "bool", "row": "float", "col": "float"},
    )
    for obj in model.objects:
        objects.append(
            {
                "object_id": obj.object_id,
                "shot_id": obj.shot_id,
                "label": obj.label,
                "r": obj.dominant_color[0],
                "g": obj.dominant_color[1],
                "b": obj.dominant_color[2],
                "mean_area": obj.mean_area,
            }
        )
        for frame, position in enumerate(obj.trajectory):
            trajectories.append(
                {
                    "object_id": obj.object_id,
                    "frame": frame,
                    "found": position is not None,
                    "row": position[0] if position else 0.0,
                    "col": position[1] if position else 0.0,
                }
            )

    events = catalog.create_table(
        "events",
        {
            "event_id": "int",
            "shot_id": "int",
            "label": "str",
            "start": "int",
            "stop": "int",
            "confidence": "float",
            "object_id": "int",
        },
    )
    for event in model.events:
        events.append(
            {
                "event_id": event.event_id,
                "shot_id": event.shot_id,
                "label": event.label,
                "start": event.start,
                "stop": event.stop,
                "confidence": event.confidence,
                "object_id": event.object_id if event.object_id is not None else -1,
            }
        )
    return catalog


def catalog_to_model(catalog: Catalog) -> CobraModel:
    """Rebuild a meta-index from :func:`model_to_catalog` tables.

    Identifiers are reassigned by the fresh model in original order; the
    cross-references (video->shot->object/event) are remapped.
    """
    model = CobraModel()

    video_map: dict[int, int] = {}
    for row in sorted(catalog.table("videos").scan(), key=lambda r: r["video_id"]):
        video = model.add_video(
            name=row["name"],
            fps=row["fps"],
            n_frames=row["n_frames"],
            match_id=row["match_id"] if row["match_id"] >= 0 else None,
        )
        # Files written before degraded indexing existed lack the column.
        if row.get("degraded"):
            model.mark_degraded(video.video_id)
        video_map[row["video_id"]] = video.video_id

    features_by_shot: dict[int, dict[str, float]] = {}
    for row in catalog.table("shot_features").scan():
        features_by_shot.setdefault(row["shot_id"], {})[row["name"]] = row["value"]

    shot_map: dict[int, int] = {}
    for row in sorted(catalog.table("shots").scan(), key=lambda r: r["shot_id"]):
        shot = model.add_shot(
            video_map[row["video_id"]],
            start=row["start"],
            stop=row["stop"],
            category=row["category"],
            features=features_by_shot.get(row["shot_id"], {}),
        )
        shot_map[row["shot_id"]] = shot.shot_id

    points_by_object: dict[int, list] = {}
    for row in catalog.table("trajectories").scan():
        points_by_object.setdefault(row["object_id"], []).append(row)

    object_map: dict[int, int] = {}
    for row in sorted(catalog.table("objects").scan(), key=lambda r: r["object_id"]):
        points = sorted(points_by_object.get(row["object_id"], []), key=lambda p: p["frame"])
        trajectory = [
            (p["row"], p["col"]) if p["found"] else None for p in points
        ]
        obj = model.add_object(
            shot_map[row["shot_id"]],
            label=row["label"],
            trajectory=trajectory,
            dominant_color=(row["r"], row["g"], row["b"]),
            mean_area=row["mean_area"],
        )
        object_map[row["object_id"]] = obj.object_id

    for row in sorted(catalog.table("events").scan(), key=lambda r: r["event_id"]):
        model.add_event(
            shot_map[row["shot_id"]],
            label=row["label"],
            start=row["start"],
            stop=row["stop"],
            confidence=row["confidence"],
            object_id=object_map.get(row["object_id"]) if row["object_id"] >= 0 else None,
        )
    return model


def save_model(model: CobraModel, path: str | Path) -> None:
    """Save a meta-index to one JSON file."""
    save_catalog(model_to_catalog(model), path)


def load_model(path: str | Path) -> CobraModel:
    """Load a meta-index saved by :func:`save_model`."""
    return catalog_to_model(load_catalog(path))
