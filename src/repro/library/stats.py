"""Library statistics: what's in the meta-index, and how serving feels.

A librarian's view of the indexed collection, computed relationally
(group counts and joins over the column-store form): videos, shot-
category distribution, event-label distribution, tracked-object
coverage.  Used by the CLI's ``stats`` command and handy in notebooks.

Also home of :class:`LatencyReservoir`, the bounded tail-latency sample
the query-serving layer reports p50/p95/p99 from — aggregate seconds
hide exactly the overload behaviour the resilience machinery exists to
bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.model import CobraModel
from repro.library.persistence import model_to_catalog
from repro.storage.query import group_count

__all__ = [
    "LatencyReservoir",
    "LibraryStats",
    "collect_stats",
    "format_stats",
    "merged_summary",
]

#: The percentiles a reservoir summary reports.
PERCENTILES = (50, 95, 99)


class LatencyReservoir:
    """A bounded ring of recent latency samples with percentile queries.

    Keeps the last *capacity* samples (a sliding window, deterministic
    — no sampling randomness), answering nearest-rank percentiles over
    the window.  Memory is O(capacity) no matter how long the service
    runs.  Not thread-safe on its own: the serving layer records and
    reads under its stats lock.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._samples: deque[float] = deque(maxlen=capacity)
        self.recorded = 0  # lifetime count, beyond the window

    def add(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._samples)

    def clear(self) -> None:
        self._samples.clear()
        self.recorded = 0

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile over the window (``None`` when empty)."""
        if not self._samples:
            return None
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        ordered = sorted(self._samples)
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    def percentile_or(self, p: float, default: float, min_samples: int = 1) -> float:
        """Nearest-rank percentile, or *default* on too few samples.

        The sharded serving layer's hedge trigger wants "this shard's
        p95 latency" but must behave sanely before a shard has history:
        with fewer than *min_samples* recorded the *default* (the
        configured hedge floor) is returned instead of a noisy estimate
        over one or two points.
        """
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if len(self._samples) < min_samples:
            return default
        value = self.percentile(p)
        return default if value is None else value

    def summary(self) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` in seconds (empty dict when no samples)."""
        if not self._samples:
            return {}
        return {f"p{p}": self.percentile(p) for p in PERCENTILES}


def merged_summary(reservoirs: list[LatencyReservoir]) -> dict[str, float]:
    """Percentile summary over the union of several reservoirs' windows.

    The replicated serving layer keeps one latency reservoir per
    replica (the hedge trigger is per replica), but health rows report
    *shard-level* latency — the distribution a caller of the group
    actually experiences — so the group row merges its replicas'
    windows before taking percentiles.  Empty dict when no reservoir
    holds a sample.
    """
    merged: list[float] = []
    for reservoir in reservoirs:
        merged.extend(reservoir._samples)  # noqa: SLF001 — same-module accessor
    if not merged:
        return {}
    ordered = sorted(merged)
    out: dict[str, float] = {}
    for p in PERCENTILES:
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
        out[f"p{p}"] = ordered[int(rank) - 1]
    return out


@dataclass
class LibraryStats:
    """Aggregate statistics of one meta-index.

    Attributes:
        n_videos: raw-layer count.
        total_frames: frames across all videos.
        shots_by_category: category -> shot count.
        events_by_label: label -> event count.
        mean_event_confidence: across all events (None when no events).
        mean_track_coverage: mean found-fraction across objects (None
            when no objects).
        events_per_minute: event density over the indexed footage.
    """

    n_videos: int = 0
    total_frames: int = 0
    shots_by_category: dict[str, int] = field(default_factory=dict)
    events_by_label: dict[str, int] = field(default_factory=dict)
    mean_event_confidence: float | None = None
    mean_track_coverage: float | None = None
    events_per_minute: float | None = None


def collect_stats(model: CobraModel) -> LibraryStats:
    """Compute :class:`LibraryStats` for a meta-index."""
    catalog = model_to_catalog(model)
    videos = catalog.table("videos")
    shots = catalog.table("shots")
    events = catalog.table("events")
    trajectories = catalog.table("trajectories")

    stats = LibraryStats(
        n_videos=len(videos),
        total_frames=int(sum(videos.column("n_frames").values()))
        if len(videos)
        else 0,
        shots_by_category=dict(sorted(group_count(shots, "category").items())),
        events_by_label=dict(sorted(group_count(events, "label").items())),
    )

    if len(events):
        stats.mean_event_confidence = float(
            np.mean(events.column("confidence").values())
        )

    if len(trajectories):
        found_by_object: dict[int, list[bool]] = {}
        object_ids = trajectories.column("object_id")
        founds = trajectories.column("found")
        for row_id in range(len(trajectories)):
            found_by_object.setdefault(object_ids.get(row_id), []).append(
                founds.get(row_id)
            )
        coverages = [np.mean(flags) for flags in found_by_object.values()]
        stats.mean_track_coverage = float(np.mean(coverages))

    # Event density, using each video's own frame rate.
    if len(events) and len(videos):
        total_minutes = 0.0
        for row in videos.scan():
            total_minutes += row["n_frames"] / row["fps"] / 60.0
        if total_minutes > 0:
            stats.events_per_minute = len(events) / total_minutes
    return stats


def format_stats(stats: LibraryStats) -> str:
    """Render stats as the text block the CLI prints."""
    lines = [
        f"videos: {stats.n_videos} ({stats.total_frames} frames)",
        "shots by category:",
    ]
    for category, count in stats.shots_by_category.items():
        lines.append(f"  {category:12s} {count}")
    lines.append("events by label:")
    for label, count in stats.events_by_label.items():
        lines.append(f"  {label:14s} {count}")
    if stats.mean_event_confidence is not None:
        lines.append(f"mean event confidence: {stats.mean_event_confidence:.2f}")
    if stats.mean_track_coverage is not None:
        lines.append(f"mean track coverage: {stats.mean_track_coverage:.2%}")
    if stats.events_per_minute is not None:
        lines.append(f"event density: {stats.events_per_minute:.1f}/min")
    return "\n".join(lines)
