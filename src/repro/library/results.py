"""Scene results, score fusion, coverage labels and the shard merge."""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import islice
from typing import Iterable, Sequence

__all__ = [
    "Coverage",
    "SceneResult",
    "fuse_scores",
    "merge_scene_results",
    "scene_order",
]


@dataclass(frozen=True)
class SceneResult:
    """One answer scene: a frame range of a video, with provenance.

    Attributes:
        video_name: the video containing the scene.
        start: first frame of the scene.
        stop: one past the last frame.
        event_label: the event the scene shows (None for whole-video hits).
        match_title: the match the video records.
        players: names of the (query-matching) players in the match.
        score: fused relevance score (higher is better).
        ann_stale: the result came from an ANN index built at an older
            generation than the catalog serving it — scenes committed
            since the build (e.g. by live streaming ingest) are absent
            from the candidate pool.  Labeled, never silent; rebuild or
            ``adopt_ann`` clears it.
    """

    video_name: str
    start: int
    stop: int
    event_label: str | None
    match_title: str
    players: tuple[str, ...] = ()
    score: float = 1.0
    ann_stale: bool = False

    @property
    def length(self) -> int:
        return self.stop - self.start

    def scene_key(self) -> tuple[str, int, int, str | None]:
        """Scene identity ignoring scores — what degraded results keep.

        A degraded (stage-skipping) evaluation drops score *evidence*
        but never invents scenes: its keys are a subset of the full
        evaluation's keys.  The property tests compare on this.
        """
        return (self.video_name, self.start, self.stop, self.event_label)


@dataclass(frozen=True)
class Coverage:
    """Which shards of a scatter-gather fan-out contributed to a result.

    Partial results are a *typed* outcome, never a silent one: every
    sharded answer carries the shards that responded and the shards
    that did not (dead, quarantined, timed out, or over deadline), so a
    caller can always tell "the library has no such scene" apart from
    "two of four shards never answered".

    Attributes:
        responded: shard ids whose rankings are merged into the result.
        missing: shard ids whose catalog slice is absent from it.
    """

    responded: tuple[int, ...]
    missing: tuple[int, ...] = ()

    @property
    def total(self) -> int:
        return len(self.responded) + len(self.missing)

    @property
    def complete(self) -> bool:
        return not self.missing

    @property
    def fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return len(self.responded) / self.total

    @property
    def label(self) -> str:
        """``"k/N"`` — the coverage tag reports and logs print."""
        return f"{len(self.responded)}/{self.total}"

    @classmethod
    def full(cls, n_shards: int) -> "Coverage":
        return cls(responded=tuple(range(n_shards)))


def scene_order(result: SceneResult) -> tuple[float, str, int]:
    """The canonical total order on results (best first, stable ties).

    The same key :meth:`DigitalLibraryEngine.search` ranks with; a
    total order across shards because a video (hence a scene) lives on
    exactly one shard.
    """
    return (-result.score, result.video_name, result.start)


def merge_scene_results(
    parts: Iterable[Sequence[SceneResult]], top_n: int
) -> list[SceneResult]:
    """Merge per-shard scene rankings into the global top-*top_n*.

    The :func:`repro.ir.topn.merge_topn` discipline applied to scenes:
    each part must be locally ranked under :func:`scene_order` (what
    every shard returns).  Videos are partitioned across shards, so the
    k-way merge is exact — byte-identical to ranking the unsharded
    library — and with parts missing it degrades to the correctly
    ranked subset the surviving shards cover.
    """
    if top_n < 1:
        raise ValueError(f"top_n must be >= 1, got {top_n}")
    return list(islice(heapq.merge(*parts, key=scene_order), top_n))


def fuse_scores(content_confidence: float, text_score: float | None) -> float:
    """Combine event confidence with an optional text score.

    Text scores are unbounded (tf-idf sums); they are squashed into
    (0, 1) before a weighted combination, so content evidence dominates
    and text breaks ties — the behaviour a demo engine wants.
    """
    if text_score is None:
        return content_confidence
    squashed = text_score / (1.0 + text_score)
    return 0.7 * content_confidence + 0.3 * squashed
