"""Scene results and score fusion."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SceneResult", "fuse_scores"]


@dataclass(frozen=True)
class SceneResult:
    """One answer scene: a frame range of a video, with provenance.

    Attributes:
        video_name: the video containing the scene.
        start: first frame of the scene.
        stop: one past the last frame.
        event_label: the event the scene shows (None for whole-video hits).
        match_title: the match the video records.
        players: names of the (query-matching) players in the match.
        score: fused relevance score (higher is better).
    """

    video_name: str
    start: int
    stop: int
    event_label: str | None
    match_title: str
    players: tuple[str, ...] = ()
    score: float = 1.0

    @property
    def length(self) -> int:
        return self.stop - self.start

    def scene_key(self) -> tuple[str, int, int, str | None]:
        """Scene identity ignoring scores — what degraded results keep.

        A degraded (stage-skipping) evaluation drops score *evidence*
        but never invents scenes: its keys are a subset of the full
        evaluation's keys.  The property tests compare on this.
        """
        return (self.video_name, self.start, self.stop, self.event_label)


def fuse_scores(content_confidence: float, text_score: float | None) -> float:
    """Combine event confidence with an optional text score.

    Text scores are unbounded (tf-idf sums); they are squashed into
    (0, 1) before a weighted combination, so content evidence dominates
    and text breaks ties — the behaviour a demo engine wants.
    """
    if text_score is None:
        return content_confidence
    squashed = text_score / (1.0 + text_score)
    return 0.7 * content_confidence + 0.3 * squashed
