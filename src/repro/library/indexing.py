"""Video indexing: plans through the FDE into the meta-index.

:class:`LibraryIndexer` owns the tennis FDE and the bookkeeping around
it: materialising video plans, linking the resulting Video objects into
the webspace graph, and exporting the meta-index into the column store
(the paper's "database approach" — queries run against tables, not
Python object graphs).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path

from repro.core.model import CobraModel
from repro.dataset.annotations import VideoPlan
from repro.dataset.build import TournamentDataset
from repro.grammar.fde import FeatureDetectorEngine
from repro.grammar.runtime import IndexingHealthReport
from repro.grammar.tennis import build_tennis_fde
from repro.library.persistence import (
    load_model_with_state,
    load_stream_state,
    save_model,
)
from repro.storage.catalog import Catalog
from repro.storage.journal import IndexingJournal
from repro.video.ground_truth import GroundTruth

__all__ = ["LibraryIndexer", "IndexedVideo", "default_journal_path"]


def default_journal_path(snapshot_path: str | Path) -> Path:
    """The journal that rides along a snapshot (``<snapshot>.journal``)."""
    snapshot_path = Path(snapshot_path)
    return snapshot_path.with_name(snapshot_path.name + ".journal")


@dataclass
class IndexedVideo:
    """Bookkeeping for one indexed broadcast.

    Attributes:
        plan: the video plan that was materialised.
        video_id: meta-index id.
        truth: generator ground truth (kept for evaluation, never read
            by detectors).
        n_frames: clip length.
        health: the FDE's per-detector health report for this video
            (``None`` for restored entries, which were never run here).
    """

    plan: VideoPlan
    video_id: int
    truth: GroundTruth | None
    n_frames: int
    health: IndexingHealthReport | None = None


class LibraryIndexer:
    """Index tournament video plans into the COBRA meta-index."""

    def __init__(
        self,
        dataset: TournamentDataset,
        fde: FeatureDetectorEngine | None = None,
    ):
        self.dataset = dataset
        self.fde = fde or build_tennis_fde()
        self.indexed: dict[str, IndexedVideo] = {}
        #: Monotone commit counter: +1 per registered video, +1 per
        #: restored snapshot, +1 per streamed chunk commit.  The
        #: query-serving layer keys its result cache on it (see
        #: :mod:`repro.library.service`).
        self.generation = 0
        #: In-flight streaming resume rows, stream name -> state dict
        #: (see :mod:`repro.streaming.session`); persisted into every
        #: chunk snapshot so a crash can resume *all* live streams.
        self.stream_states: dict[str, dict] = {}
        self._stream_webspace: dict[str, object] = {}

    @property
    def model(self) -> CobraModel:
        return self.fde.model

    def plan_named(self, name: str) -> VideoPlan:
        """The dataset's video plan called *name*.

        Shard workers rebuild their catalog slice from (seed, name
        list); this is the name -> plan resolution they route through.
        """
        for plan in self.dataset.video_plans:
            if plan.name == name:
                return plan
        raise KeyError(f"no video plan named {name!r}")

    def index_plan(self, plan: VideoPlan) -> IndexedVideo:
        """Materialise one plan, run the FDE, link the webspace Video."""
        if plan.name in self.indexed:
            raise ValueError(f"video {plan.name!r} already indexed")
        clip, truth = plan.materialise()
        context = self.fde.index_video(clip)
        return self._register_video(plan, clip, truth, context)

    def _register_video(self, plan: VideoPlan, clip, truth, context) -> IndexedVideo:
        """Library-side bookkeeping for one committed video.

        Creates the webspace Video object, links it to its Match, and
        records the :class:`IndexedVideo` entry.  Mutates shared state,
        so in a parallel batch only the committer thread calls this.
        """
        video_obj = self.dataset.instance.create(
            "Video", name=plan.name, n_frames=len(clip)
        )
        match_obj = self.dataset.match_objects[plan.match_title]
        self.dataset.instance.link("recorded_in", match_obj, video_obj)

        record = IndexedVideo(
            plan=plan,
            video_id=context.video_id,
            truth=truth,
            n_frames=len(clip),
            health=getattr(context, "health", None),
        )
        self.indexed[plan.name] = record
        self.generation += 1
        return record

    def register_streamed_video(self, plan: VideoPlan, video_id: int) -> IndexedVideo:
        """Library-side bookkeeping for a stream's first chunk commit.

        Mirrors :meth:`_register_video` for the chunk-append path: the
        webspace Video starts at 0 frames (grown at finalise) and the
        generation is *not* bumped here — every chunk commit bumps it.
        """
        video_obj = self.dataset.instance.create("Video", name=plan.name, n_frames=0)
        match_obj = self.dataset.match_objects[plan.match_title]
        self.dataset.instance.link("recorded_in", match_obj, video_obj)
        self._stream_webspace[plan.name] = video_obj
        record = IndexedVideo(plan=plan, video_id=video_id, truth=None, n_frames=0)
        self.indexed[plan.name] = record
        return record

    def webspace_video(self, name: str):
        """The webspace Video object created for a streamed ingest."""
        return self._stream_webspace.get(name)

    def stream_plan(
        self,
        plan: VideoPlan,
        *,
        chunk_frames: int,
        path: str | Path | None = None,
        journal: IndexingJournal | None = None,
        commit_lock=None,
        segmenter=None,
        resume: bool = False,
        clock=None,
        on_commit=None,
    ) -> IndexedVideo:
        """Replay one plan's clip through the chunk-append ingest path.

        Materialises the clip and feeds it chunk by chunk through a
        :class:`~repro.streaming.session.StreamSession`: per chunk, the
        journal tails a ``chunk_begin``/``chunk_commit`` pair around an
        atomic snapshot save and the generation bumps, so readers see
        the stream's shots as they finalise and a kill resumes at the
        last committed chunk.  With ``resume=True`` the session
        continues from the snapshot's ``stream_state`` row, re-feeding
        frames from the committed watermark.  *clock* (monotonic)
        timestamps chunk arrival for the freshness metric; *on_commit*
        receives every :class:`~repro.streaming.session.ChunkCommit`.
        """
        from repro.streaming.chunker import iter_chunks
        from repro.streaming.session import StreamSession

        extra = {} if clock is None else {"clock": clock}
        clip, truth = plan.materialise()
        if resume:
            session = StreamSession.resume(
                self, plan, path, journal=journal,
                segmenter=segmenter, commit_lock=commit_lock, **extra,
            )
        else:
            if plan.name in self.indexed:
                raise ValueError(f"video {plan.name!r} already indexed")
            session = StreamSession(
                self, plan, path=path, journal=journal,
                segmenter=segmenter, commit_lock=commit_lock, **extra,
            )
        for chunk in iter_chunks(
            clip, chunk_frames, stream=plan.name, start=session.next_frame,
            clock=clock,
        ):
            commit = session.push_chunk(chunk)
            if on_commit is not None and commit is not None:
                on_commit(commit)
        record = self.indexed[plan.name]
        record.truth = truth
        return record

    def commit_staged_plan(self, plan: VideoPlan, clip, truth, staged) -> IndexedVideo:
        """Commit one staged detector pass and register its video.

        The counterpart of :meth:`FeatureDetectorEngine.stage_video`:
        staging runs anywhere, this merge mutates shared state and must
        run on (or be serialized with) the committer thread.
        """
        context = self.fde.commit_staged(staged)
        return self._register_video(plan, clip, truth, context)

    def index_all(
        self,
        limit: int | None = None,
        *,
        journal: IndexingJournal | None = None,
        checkpoint=None,
        skip: set[str] | frozenset[str] = frozenset(),
        resume: bool = False,
        workers: int = 1,
        commit_lock=None,
        chunk_frames: int | None = None,
    ) -> list[IndexedVideo]:
        """Index the dataset's video plans (optionally only the first *limit*).

        Under the FDE's skip/quarantine isolation policies a video whose
        detectors partially failed is still committed (degraded) and
        indexing proceeds to the next plan; under ``fail_fast`` the
        first failing video aborts the batch, as before.

        Args:
            limit: only the first *limit* plans.
            journal: when given, write a ``begin`` record before each
                video and a ``commit`` record after it (and after
                *checkpoint* ran), making the batch resumable.
            checkpoint: zero-argument callable run after each video and
                *before* its commit record — typically an atomic
                snapshot save, so a commit promises durable meta-data.
            skip: plan names not to index (e.g. journalled commits).
            resume: when True, silently skip plans already indexed in
                this indexer (restored from a snapshot) instead of
                raising; with ``resume=False`` the historical behaviour
                — ``ValueError`` on a duplicate — is kept.
            workers: videos materialised/staged concurrently.  All
                shared-state mutation — meta-index merge, journal and
                checkpoint writes, webspace linking — stays on the
                calling thread, which commits stages in plan order, so
                the journal, snapshots and meta-index are byte-identical
                to a sequential batch.
            commit_lock: zero-argument callable returning a context
                manager, entered around each video's shared-state
                mutation (detector commit, webspace linking, checkpoint
                and journal writes).  The query-serving layer passes its
                write lock here so concurrent readers only ever observe
                whole-video commits.
            chunk_frames: route each video through the chunk-append
                ingest path instead of one atomic batch: frames feed a
                :class:`~repro.streaming.session.StreamSession` in
                *chunk_frames*-sized chunks and the generation bumps
                per chunk, so readers see a video's early shots while
                its tail is still indexing.  Memory-only (per-chunk
                snapshots need :meth:`index_checkpointed`); the final
                meta-index is byte-identical to a batch run.

        Returns:
            The videos indexed *by this call* (skipped ones excluded).
        """
        plans = self.dataset.video_plans
        if limit is not None:
            plans = plans[:limit]
        todo = [
            plan
            for plan in plans
            if plan.name not in skip and not (resume and plan.name in self.indexed)
        ]
        lock = commit_lock if commit_lock is not None else nullcontext
        if chunk_frames is not None:
            return self._index_all_chunked(
                todo, journal, checkpoint, lock, commit_lock, chunk_frames
            )
        if workers <= 1 or len(todo) <= 1:
            records: list[IndexedVideo] = []
            for plan in todo:
                with lock():
                    if journal is not None:
                        journal.begin(plan.name)
                    record = self.index_plan(plan)
                    if checkpoint is not None:
                        checkpoint()
                    if journal is not None:
                        degraded = bool(record.health.degraded) if record.health else False
                        journal.commit(plan.name, degraded=degraded)
                records.append(record)
            return records
        return self._index_all_parallel(todo, journal, checkpoint, workers, lock)

    def _index_all_chunked(
        self,
        todo: list[VideoPlan],
        journal: IndexingJournal | None,
        checkpoint,
        lock,
        commit_lock,
        chunk_frames: int,
    ) -> list[IndexedVideo]:
        """Chunk-append variant of the batch loop (memory-only commits).

        The video-level journal protocol is preserved — ``begin`` before
        the first chunk, *checkpoint* then ``commit`` after the last —
        so resume-by-video semantics and snapshot bytes match a batch
        run; in between, every chunk commit bumps the generation under
        *commit_lock* so concurrent readers see partial videos."""
        records: list[IndexedVideo] = []
        for plan in todo:
            with lock():
                if journal is not None:
                    journal.begin(plan.name)
            record = self.stream_plan(
                plan, chunk_frames=chunk_frames, commit_lock=commit_lock
            )
            with lock():
                if checkpoint is not None:
                    checkpoint()
                if journal is not None:
                    journal.commit(plan.name, degraded=False)
            records.append(record)
        return records

    def _stage_plan(self, plan: VideoPlan):
        """Worker-thread half of one video: materialise + stage."""
        clip, truth = plan.materialise()
        return clip, truth, self.fde.stage_video(clip)

    def _index_all_parallel(
        self,
        todo: list[VideoPlan],
        journal: IndexingJournal | None,
        checkpoint,
        workers: int,
        lock=nullcontext,
    ) -> list[IndexedVideo]:
        """Overlap video staging; commit in plan order on this thread.

        Worker threads materialise clips and run the FDE against
        private scratch models (:meth:`FeatureDetectorEngine.stage_video`);
        this thread is the single committer: per video, in plan order,
        it writes the journal ``begin``, merges the stage into the
        shared meta-index, registers the webspace object, runs the
        checkpoint and writes the ``commit`` — exactly the sequence (and
        bytes) of a sequential batch, so the PR 2 crash-safety
        invariants hold unchanged.
        """
        records: list[IndexedVideo] = []
        pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="indexer")
        try:
            futures = [pool.submit(self._stage_plan, plan) for plan in todo]
            for plan, future in zip(todo, futures):
                clip, truth, staged = future.result()
                with lock():
                    if journal is not None:
                        journal.begin(plan.name)
                    record = self.commit_staged_plan(plan, clip, truth, staged)
                    if checkpoint is not None:
                        checkpoint()
                    if journal is not None:
                        degraded = bool(record.health.degraded) if record.health else False
                        journal.commit(plan.name, degraded=degraded)
                records.append(record)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        return records

    def index_checkpointed(
        self,
        path: str | Path,
        journal: IndexingJournal | None = None,
        limit: int | None = None,
        resume: bool = False,
        workers: int = 1,
        commit_lock=None,
        chunk_frames: int | None = None,
    ) -> list[IndexedVideo]:
        """Checkpointed (and resumable) batch indexing.

        After every video the whole meta-index — plus the detector
        runner's quarantine state — is snapshotted atomically to
        *path*, then a ``commit`` record is appended to the journal.  A
        crash between the snapshot and the commit record costs nothing:
        on resume the video is also skipped when it is already present
        in the restored snapshot.

        Args:
            path: snapshot path (``catalog.json`` of this library).
            journal: defaults to :func:`default_journal_path` next to
                *path*.
            limit: only the first *limit* plans.
            resume: skip journalled/restored videos instead of starting
                over; a fresh run (``resume=False``) clears the journal.
            workers: videos staged concurrently; journal and snapshot
                writes stay serialized on this thread (see
                :meth:`index_all`), so the snapshot bytes and resume
                semantics match a sequential run for any worker count.
            commit_lock: per-video commit lock factory (see
                :meth:`index_all`); the query-serving layer uses it to
                land commits atomically between queries.
            chunk_frames: chunk-append mode — each video streams through
                a :class:`~repro.streaming.session.StreamSession` in
                *chunk_frames*-sized chunks, with a journal
                ``chunk_begin``/``chunk_commit`` pair and an atomic
                snapshot per chunk.  A kill mid-video resumes at the
                last committed chunk (the snapshot's ``stream_state``
                row), not at the video boundary; the final snapshot is
                byte-identical to a batch run over the same frames.

        Returns:
            The videos indexed by this call (resumed batches return
            only the re-indexed remainder).
        """
        path = Path(path)
        journal = journal if journal is not None else IndexingJournal(default_journal_path(path))
        if resume:
            journal.recover()
            # A commit record promises the video is in a durable
            # snapshot.  If the snapshot was lost anyway (deleted, or
            # rolled back past the commit), re-index the video instead
            # of silently dropping it from the rebuilt meta-index.
            committed = set(journal.committed()) & set(self.indexed)
        else:
            journal.clear()
            committed = set()

        def checkpoint() -> None:
            save_model(self.model, path, runner_state=self.fde.runner.export_state())

        if chunk_frames is not None:
            records = self._index_checkpointed_chunked(
                path, journal, limit, resume, commit_lock, chunk_frames, committed
            )
        else:
            records = self.index_all(
                limit=limit,
                journal=journal,
                checkpoint=checkpoint,
                skip=committed,
                resume=resume,
                workers=workers,
                commit_lock=commit_lock,
            )
        if not records and not path.exists():
            checkpoint()  # an empty batch still leaves a loadable snapshot
        return records

    def _index_checkpointed_chunked(
        self,
        path: Path,
        journal: IndexingJournal,
        limit: int | None,
        resume: bool,
        commit_lock,
        chunk_frames: int,
        committed: set[str],
    ) -> list[IndexedVideo]:
        """Chunk-append checkpointing: per-chunk snapshots and journal
        records inside each video's ``begin``/``commit`` bracket.

        On resume, a video with a ``stream_state`` row in the restored
        snapshot continues from its committed watermark; videos with a
        journalled commit are skipped; the rest stream from scratch.
        """
        plans = self.dataset.video_plans
        if limit is not None:
            plans = plans[:limit]
        states = load_stream_state(path) if (resume and path.exists()) else {}
        lock = commit_lock if commit_lock is not None else nullcontext
        records: list[IndexedVideo] = []
        for plan in plans:
            if plan.name in committed:
                continue
            in_flight = resume and plan.name in states and plan.name in self.indexed
            if resume and plan.name in self.indexed and not in_flight:
                continue
            if not in_flight:
                with lock():
                    journal.begin(plan.name)
            record = self.stream_plan(
                plan,
                chunk_frames=chunk_frames,
                path=path,
                journal=journal,
                commit_lock=commit_lock,
                resume=in_flight,
            )
            with lock():
                journal.commit(plan.name, degraded=False)
            records.append(record)
        return records

    def restore_snapshot(self, path: str | Path) -> int:
        """Restore a checkpointed snapshot: meta-index + runner state.

        Returns:
            How many videos were restored (see :meth:`restore`).
        """
        model, runner_state = load_model_with_state(path)
        restored = self.restore(model)
        self.fde.restore_runner_state(runner_state)
        # Adopt any in-flight stream rows so the next chunk snapshot —
        # from whichever stream commits first — preserves the others'
        # resume state.
        self.stream_states = load_stream_state(path)
        return restored

    def health_reports(self) -> list[IndexingHealthReport]:
        """Per-video FDE health reports, in indexing order."""
        return [
            record.health for record in self.indexed.values() if record.health is not None
        ]

    def degraded_videos(self) -> list[str]:
        """Names of videos committed with incomplete meta-data."""
        return [video.name for video in self.model.degraded_videos]

    def restore(self, model: CobraModel) -> int:
        """Adopt a previously-saved meta-index (see repro.library.persistence).

        Replaces the FDE's model and relinks each restored video to its
        plan and webspace Match.  Generator ground truth is not part of
        the saved state, so restored entries carry ``truth=None``, and
        FDE revalidation is unavailable until videos are re-indexed.

        Returns:
            How many videos were restored (videos whose plan no longer
            exists in the dataset are kept in the model but not linked).
        """
        if self.indexed:
            raise ValueError("cannot restore into an indexer that already indexed videos")
        self.fde.model = model
        self.generation += 1  # the adopted snapshot is a new generation
        plans_by_name = {plan.name: plan for plan in self.dataset.video_plans}
        restored = 0
        for video in model.videos:
            plan = plans_by_name.get(video.name)
            if plan is None:
                continue
            video_obj = self.dataset.instance.create(
                "Video", name=plan.name, n_frames=video.n_frames
            )
            match_obj = self.dataset.match_objects[plan.match_title]
            self.dataset.instance.link("recorded_in", match_obj, video_obj)
            self.indexed[plan.name] = IndexedVideo(
                plan=plan, video_id=video.video_id, truth=None, n_frames=video.n_frames
            )
            restored += 1
        return restored

    # ------------------------------------------------------------------ #
    # Export to the column store
    # ------------------------------------------------------------------ #

    def export_to_catalog(self, catalog: Catalog | None = None) -> Catalog:
        """Materialise the meta-index as relational tables.

        Tables: ``videos``, ``shots``, ``objects``, ``events`` — the
        representation the paper's Monet-based engine queried.
        """
        catalog = catalog or Catalog()
        model = self.model

        videos = catalog.create_table(
            "videos", {"video_id": "int", "name": "str", "fps": "float", "n_frames": "int"}
        )
        for video in model.videos:
            videos.append(
                {
                    "video_id": video.video_id,
                    "name": video.name,
                    "fps": video.fps,
                    "n_frames": video.n_frames,
                }
            )

        shots = catalog.create_table(
            "shots",
            {
                "shot_id": "int",
                "video_id": "int",
                "start": "int",
                "stop": "int",
                "category": "str",
            },
        )
        for shot in model.shots:
            shots.append(
                {
                    "shot_id": shot.shot_id,
                    "video_id": shot.video_id,
                    "start": shot.start,
                    "stop": shot.stop,
                    "category": shot.category,
                }
            )

        objects = catalog.create_table(
            "objects",
            {"object_id": "int", "shot_id": "int", "label": "str", "found_fraction": "float"},
        )
        for obj in model.objects:
            objects.append(
                {
                    "object_id": obj.object_id,
                    "shot_id": obj.shot_id,
                    "label": obj.label,
                    "found_fraction": obj.found_fraction,
                }
            )

        events = catalog.create_table(
            "events",
            {
                "event_id": "int",
                "shot_id": "int",
                "label": "str",
                "start": "int",
                "stop": "int",
                "confidence": "float",
            },
        )
        for event in model.events:
            events.append(
                {
                    "event_id": event.event_id,
                    "shot_id": event.shot_id,
                    "label": event.label,
                    "start": event.start,
                    "stop": event.stop,
                    "confidence": event.confidence,
                }
            )
        catalog.create_hash_index("events", "label")
        catalog.create_hash_index("shots", "video_id")
        return catalog
