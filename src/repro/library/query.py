"""The combined query structure.

A :class:`LibraryQuery` has three optional parts:

- **concept** — attribute constraints on the players involved
  (handedness, gender, past winner...), answered by the webspace;
- **content** — the video event the scenes must show (``net_play``,
  ``rally``...), answered by the COBRA meta-index;
- **text** — free text matched against interview transcripts and pages,
  answered by the IR engine.

The motivating query of the paper's Section 2 is::

    LibraryQuery(
        player={"handedness": "left", "gender": "female", "past_winner": True},
        event="net_play",
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LibraryQuery"]

#: Player attribute keys a concept part may constrain.  ``past_winner``
#: is virtual: it maps to ``titles > 0``.
_PLAYER_KEYS = ("handedness", "gender", "country", "past_winner", "name")


@dataclass(frozen=True)
class LibraryQuery:
    """One combined digital-library query.

    Attributes:
        player: attribute constraints on the players involved.
        event: required video event label (None = any video scene).
        sequence: required event *sequence* ``(first, then)`` — scenes
            where a *first* event is followed by a *then* event within
            ``within`` frames (Allen ``before``/``meets``).  Mutually
            exclusive with ``event``.
        within: maximum gap (frames) between the sequence's two events.
        text: free-text part (None = no text constraint).
        top_n: maximum results returned.
    """

    player: dict[str, object] = field(default_factory=dict)
    event: str | None = None
    sequence: tuple[str, str] | None = None
    within: int = 100
    text: str | None = None
    top_n: int = 20

    def __post_init__(self) -> None:
        unknown = set(self.player) - set(_PLAYER_KEYS)
        if unknown:
            raise ValueError(
                f"unknown player constraints {sorted(unknown)}; "
                f"expected keys from {_PLAYER_KEYS}"
            )
        if self.top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {self.top_n}")
        if self.event is not None and self.sequence is not None:
            raise ValueError("event and sequence parts are mutually exclusive")
        if self.sequence is not None and len(self.sequence) != 2:
            raise ValueError("a sequence is a (first, then) label pair")
        if self.within < 0:
            raise ValueError(f"within must be >= 0, got {self.within}")

    @property
    def has_concept_part(self) -> bool:
        return bool(self.player)

    @property
    def has_content_part(self) -> bool:
        return self.event is not None

    @property
    def has_sequence_part(self) -> bool:
        return self.sequence is not None

    @property
    def has_text_part(self) -> bool:
        return self.text is not None
