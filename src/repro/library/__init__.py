"""The digital library search engine.

The integration the demo is about: one engine over (a) the conceptual
webspace of the tournament site, (b) the full-text index of its pages
and interview transcripts, and (c) the COBRA video meta-index the tennis
FDE populates — so a user can ask for "video scenes of left-handed
female players who have won the Australian Open in the past, in which
they approach the net".

- :mod:`repro.library.indexing` — video plans through the FDE into the
  meta-index (and into the column store),
- :mod:`repro.library.query` — the combined concept + content + text
  query structure,
- :mod:`repro.library.results` — scene results and score fusion,
- :mod:`repro.library.engine` — the facade,
- :mod:`repro.library.service` — the concurrent query-serving layer
  (generation-keyed result cache, snapshot-isolated reads, admission
  control, the graceful-degradation ladder, QueryStats),
- :mod:`repro.library.resilience` — circuit breakers and the
  :class:`ResilienceConfig` knobs of the overload story,
- :mod:`repro.library.sharding` — fault-tolerant scatter-gather serving
  over per-shard worker processes (hedged fan-out, typed partial
  results, generation vectors, quarantine + restart).
"""

from repro.library.query import LibraryQuery
from repro.library.results import Coverage, SceneResult
from repro.library.indexing import LibraryIndexer
from repro.library.engine import DigitalLibraryEngine
from repro.library.parser import parse_query, QuerySyntaxError
from repro.library.persistence import save_model, load_model
from repro.library.resilience import ResilienceConfig, StageBreaker
from repro.library.service import (
    AdmissionController,
    LibrarySearchService,
    QueryStats,
    QueryTrace,
    ServedQuery,
    canonical_query_key,
)
from repro.library.sharding import (
    ShardedSearchService,
    ShardedServedQuery,
    ShardingConfig,
    assign_shards,
    shard_of,
)

__all__ = [
    "LibraryQuery",
    "SceneResult",
    "Coverage",
    "LibraryIndexer",
    "DigitalLibraryEngine",
    "LibrarySearchService",
    "AdmissionController",
    "ResilienceConfig",
    "StageBreaker",
    "QueryStats",
    "QueryTrace",
    "ServedQuery",
    "ShardedSearchService",
    "ShardedServedQuery",
    "ShardingConfig",
    "assign_shards",
    "shard_of",
    "canonical_query_key",
    "parse_query",
    "QuerySyntaxError",
    "save_model",
    "load_model",
]
