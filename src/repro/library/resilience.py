"""Per-stage circuit breakers and the serving-resilience configuration.

The query pipeline's stages fail in correlated bursts: a text index
under rebuild, an injected chaos latency, a pathological sequence scan.
Paying the full deadline for every request that touches a sick stage
wastes the whole budget on known-bad work, so the serving layer keeps a
:class:`StageBreaker` per degradable stage (EWMA latency + consecutive
failure count, the classic closed → open → half-open machine) and
*proactively* skips a tripped stage — serving a labeled degraded result
immediately instead of timing out every time.

:class:`ResilienceConfig` bundles every knob of the overload story
(admission capacity, queue bounds, default budgets, breaker tuning,
ladder toggles) so :class:`~repro.library.service.LibrarySearchService`
takes one optional argument; ``resilience=None`` keeps the PR 4
fast path byte-identical.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable

__all__ = ["BreakerState", "DEGRADABLE_STAGES", "ResilienceConfig", "StageBreaker"]

#: Stages the degradation ladder may skip: everything except the
#: concept filter (the query's core) and the final cheap rank merge.
DEGRADABLE_STAGES = ("text_topn", "sequence_match")


class BreakerState(str, Enum):
    """Circuit-breaker lifecycle: CLOSED (healthy) → OPEN (skipping)
    → HALF_OPEN (one probe allowed through to test recovery)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class StageBreaker:
    """A circuit breaker for one query-pipeline stage.

    State machine:

    - **closed** — the stage runs normally.  ``failure_threshold``
      consecutive failures, or an EWMA latency above
      ``latency_threshold``, trip the breaker.
    - **open** — :meth:`allow` answers ``False`` (the serving layer
      skips the stage) until ``cooldown`` seconds have passed.
    - **half-open** — one probe request runs the stage; success closes
      the breaker, failure re-opens it.  Concurrent requests keep being
      skipped while a probe is in flight (a probe abandoned for longer
      than ``cooldown`` — e.g. its query died in an earlier stage — is
      replaced rather than wedging the breaker).

    All methods are thread-safe; the clock is injectable for tests.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        latency_threshold: float | None = None,
        cooldown: float = 1.0,
        alpha: float = 0.2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.failure_threshold = failure_threshold
        self.latency_threshold = latency_threshold
        self.cooldown = cooldown
        self.alpha = alpha
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_at: float | None = None
        self.ewma_seconds: float | None = None
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state.value

    @property
    def healthy(self) -> bool:
        """Closed and serving — the routing-preference check.

        Unlike :meth:`allow`, reading this never reserves a half-open
        probe slot, so the replica router can rank candidates without
        consuming probes it does not use.
        """
        with self._lock:
            return self._state is BreakerState.CLOSED

    def allow(self) -> bool:
        """May the stage run for this request?

        Call only when the stage is actually relevant to the query: a
        ``True`` answer from a non-closed breaker reserves the probe
        slot, and the probe resolves via :meth:`record_success` /
        :meth:`record_failure`.
        """
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            now = self._clock()
            if self._state is BreakerState.OPEN:
                if now - self._opened_at < self.cooldown:
                    return False
                self._state = BreakerState.HALF_OPEN
                self._probe_at = now
                return True
            # Half-open: one probe at a time, replaced if abandoned.
            if self._probe_at is not None and now - self._probe_at < self.cooldown:
                return False
            self._probe_at = now
            return True

    def record_success(self, seconds: float) -> None:
        """The stage completed in *seconds*; may close or (on latency) trip."""
        with self._lock:
            self._update_ewma(seconds)
            if self._state is BreakerState.HALF_OPEN:
                self._state = BreakerState.CLOSED
                self._failures = 0
                self._probe_at = None
                return
            self._failures = 0
            if (
                self.latency_threshold is not None
                and self.ewma_seconds is not None
                and self.ewma_seconds > self.latency_threshold
            ):
                self._trip()

    def record_failure(self, seconds: float | None = None) -> None:
        """The stage failed (deadline, error); may trip the breaker."""
        with self._lock:
            if seconds is not None:
                self._update_ewma(seconds)
            self._failures += 1
            if self._state is BreakerState.HALF_OPEN or self._failures >= self.failure_threshold:
                self._trip()

    def trip(self) -> None:
        """Open the breaker immediately, bypassing the failure count.

        For failures that need no corroboration: a shard whose worker
        *process* died is known-bad on the first observation — the
        sharded serving layer quarantines it at once and lets the
        half-open probe (plus a restart) decide when it is back.
        """
        with self._lock:
            self._trip()

    def _update_ewma(self, seconds: float) -> None:
        if self.ewma_seconds is None:
            self.ewma_seconds = seconds
        else:
            self.ewma_seconds = self.alpha * seconds + (1.0 - self.alpha) * self.ewma_seconds

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._probe_at = None
        self._failures = 0
        self.trips += 1


@dataclass(frozen=True)
class ResilienceConfig:
    """Every knob of the serving layer's overload story.

    Attributes:
        max_concurrent: queries evaluating at once (admission capacity).
        max_queue: bounded FIFO wait queue beyond capacity; anything
            more is shed immediately (``queue_full``).
        queue_timeout: seconds a queued request waits before being shed
            (``queue_timeout``); ``0`` sheds on any queueing.
        budget_seconds: default per-query wall-clock budget applied when
            the caller passes no :class:`~repro.budget.QueryBudget`.
        budget_postings: default per-query postings budget.
        lock_timeout: cap on read-lock acquisition (further clamped to
            the query's remaining budget); ``None`` = budget-only.
        stale_serving: ladder rung 1 — serve the previous generation's
            cached result, labeled ``stale=True``.
        degraded_serving: ladder rung 2 — serve a concept-only partial
            evaluation, labeled ``degraded=True``.
        breaker_stages: stages guarded by circuit breakers.
        breaker_failure_threshold / breaker_latency_threshold /
            breaker_cooldown / breaker_alpha: :class:`StageBreaker`
            tuning.
    """

    max_concurrent: int = 8
    max_queue: int = 16
    queue_timeout: float = 0.05
    budget_seconds: float | None = None
    budget_postings: int | None = None
    lock_timeout: float | None = 1.0
    stale_serving: bool = True
    degraded_serving: bool = True
    breaker_stages: tuple[str, ...] = DEGRADABLE_STAGES
    breaker_failure_threshold: int = 3
    breaker_latency_threshold: float | None = None
    breaker_cooldown: float = 1.0
    breaker_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {self.max_concurrent}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.queue_timeout < 0:
            raise ValueError(f"queue_timeout must be >= 0, got {self.queue_timeout}")
