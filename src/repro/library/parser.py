"""A textual surface for combined queries.

The paper argues that "the query could be formulated more precise[ly]"
once conceptual structure is available.  This module gives the combined
query a small concrete language so the demo can accept typed queries::

    SCENES WHERE player.handedness = left
      AND player.gender = female
      AND player.past_winner
      AND event = net_play
      AND text CONTAINS "approach the net"
      LIMIT 10

Grammar (case-insensitive keywords)::

    query      := "SCENES" [ "WHERE" clause ("AND" clause)* ] [ "LIMIT" n ]
    clause     := "player" "." attr "=" value      # handedness/gender/country/name
                | "player" "." "past_winner"        # boolean shorthand
                | "event" "=" label [ "THEN" label [ "WITHIN" n ] ]
                | "text" "CONTAINS" quoted-string

Values with spaces (player names) are quoted.  ``parse_query`` returns a
:class:`~repro.library.query.LibraryQuery`.
"""

from __future__ import annotations

import re

from repro.library.query import LibraryQuery

__all__ = ["QuerySyntaxError", "parse_query"]


class QuerySyntaxError(ValueError):
    """Raised for malformed query text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"[^"]*")
  | (?P<op>=)
  | (?P<dot>\.)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*|\d+)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"SCENES", "WHERE", "AND", "LIMIT", "CONTAINS", "THEN", "WITHIN"}

_PLAYER_ATTRS = ("handedness", "gender", "country", "name")


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "word" and value.upper() in _KEYWORDS:
            tokens.append(("keyword", value.upper()))
        elif kind == "string":
            tokens.append(("string", value[1:-1]))
        else:
            tokens.append((kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._index = 0

    def _peek(self):
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _next(self):
        token = self._peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query")
        self._index += 1
        return token

    def _expect(self, kind, value=None):
        token = self._next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise QuerySyntaxError(f"expected {value or kind}, got {token[1]!r}")
        return token

    def parse(self) -> LibraryQuery:
        self._expect("keyword", "SCENES")
        player: dict[str, object] = {}
        event: str | None = None
        sequence: tuple[str, str] | None = None
        within = 100
        text: str | None = None
        top_n = 20

        if self._peek() == ("keyword", "WHERE"):
            self._next()
            while True:
                kind, value = self._clause()
                if kind == "player":
                    player[value[0]] = value[1]
                elif kind == "event":
                    if event is not None or sequence is not None:
                        raise QuerySyntaxError("duplicate event clause")
                    event = value
                elif kind == "sequence":
                    if event is not None or sequence is not None:
                        raise QuerySyntaxError("duplicate event clause")
                    sequence = (value[0], value[1])
                    within = value[2]
                else:  # text
                    if text is not None:
                        raise QuerySyntaxError("duplicate text clause")
                    text = value
                if self._peek() == ("keyword", "AND"):
                    self._next()
                    continue
                break
        if self._peek() == ("keyword", "LIMIT"):
            self._next()
            number = self._expect("word")[1]
            if not number.isdigit():
                raise QuerySyntaxError(f"LIMIT expects a number, got {number!r}")
            top_n = int(number)
        if self._peek() is not None:
            raise QuerySyntaxError(f"trailing tokens starting at {self._peek()[1]!r}")
        return LibraryQuery(
            player=player,
            event=event,
            sequence=sequence,
            within=within,
            text=text,
            top_n=top_n,
        )

    def _clause(self) -> tuple[str, object]:
        """One WHERE clause: ('player', (attr, value)) / ('event', label) /
        ('text', string)."""
        token = self._next()
        if token == ("word", "player"):
            self._expect("dot")
            attr = self._expect("word")[1]
            if attr == "past_winner":
                return "player", ("past_winner", True)
            if attr not in _PLAYER_ATTRS:
                raise QuerySyntaxError(f"unknown player attribute {attr!r}")
            self._expect("op", "=")
            kind, value = self._next()
            if kind not in ("word", "string"):
                raise QuerySyntaxError(f"expected a value after player.{attr}")
            return "player", (attr, value)
        if token == ("word", "event"):
            self._expect("op", "=")
            first = self._expect("word")[1]
            if self._peek() == ("keyword", "THEN"):
                self._next()
                then = self._expect("word")[1]
                within = 100
                if self._peek() == ("keyword", "WITHIN"):
                    self._next()
                    number = self._expect("word")[1]
                    if not number.isdigit():
                        raise QuerySyntaxError(
                            f"WITHIN expects a number, got {number!r}"
                        )
                    within = int(number)
                return "sequence", (first, then, within)
            return "event", first
        if token == ("word", "text"):
            self._expect("keyword", "CONTAINS")
            return "text", self._expect("string")[1]
        raise QuerySyntaxError(f"unknown clause starting with {token[1]!r}")


def parse_query(text: str) -> LibraryQuery:
    """Parse query text into a :class:`LibraryQuery`.

    Raises:
        QuerySyntaxError: for any malformed input.
    """
    return _Parser(_tokenize(text)).parse()
