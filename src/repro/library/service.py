"""The concurrent query-serving layer.

:class:`LibrarySearchService` wraps a
:class:`~repro.library.engine.DigitalLibraryEngine` for repeated and
concurrent use:

- **Generation-keyed result cache.**  Results are cached under
  ``(generation, canonical_query_key(query))``, where the generation is
  the engine's monotone index-generation counter (bumped on every video
  commit and on every effective text-index refresh).  A commit changes
  the generation, so a stale entry can never be served — staleness is
  impossible by construction, no explicit invalidation protocol needed.
- **Snapshot-isolated reads.**  Queries run under the read side of a
  readers-writer lock; commits (video registration, text refresh,
  relational rebuild) take the write side.  A query therefore evaluates
  against one pinned generation — it can never observe a half-committed
  video — while expensive writer work (clip materialisation, detector
  staging) happens outside the lock.
- **Observability.**  Per-stage wall-clock timers (concept filter, text
  top-N, scene scan, sequence match, rank merge), cache hit/miss/
  eviction counters and postings-processed accounting are aggregated
  into a :class:`QueryStats` report (``repro query-stats`` prints it).

The invariants the stress suite enforces: every served result carries a
generation >= the generation observed at request start, and the result
set is exactly what a fresh evaluation at that generation produces.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.library.query import LibraryQuery
from repro.library.results import SceneResult

__all__ = [
    "LibrarySearchService",
    "QueryStats",
    "QueryTrace",
    "ServedQuery",
    "canonical_query_key",
]

#: Stage names in report order (a query touches a subset of these).
STAGES = ("concept_filter", "text_topn", "scene_scan", "sequence_match", "rank_merge")


def canonical_query_key(query: LibraryQuery) -> str:
    """A canonical serialization of *query* — the cache key.

    Semantically identical queries map to the same key: the player
    constraints are sorted, and ``within`` (which only matters for
    sequence queries) is normalised away when no sequence part exists.
    """
    payload = {
        "player": {key: query.player[key] for key in sorted(query.player)},
        "event": query.event,
        "sequence": list(query.sequence) if query.sequence is not None else None,
        "within": query.within if query.sequence is not None else None,
        "text": query.text,
        "top_n": query.top_n,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class QueryTrace:
    """Per-stage wall-clock and work accounting for one evaluation."""

    def __init__(self) -> None:
        self.stage_seconds: dict[str, float] = {}
        self.postings_processed = 0

    @contextmanager
    def stage(self, name: str):
        """Time one evaluation stage (additive on re-entry)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + elapsed

    def add_postings(self, n: int) -> None:
        self.postings_processed += n


@dataclass(frozen=True)
class ServedQuery:
    """One answered query, with serving provenance.

    Attributes:
        results: the scenes, best first (a private copy per caller).
        generation: the index generation the results are valid for.
        cache_hit: whether the cache answered.
        seconds: service-side wall time for this request.
        trace: the evaluation trace (``None`` on cache hits).
    """

    results: list[SceneResult]
    generation: int
    cache_hit: bool
    seconds: float
    trace: QueryTrace | None = None


@dataclass
class QueryStats:
    """Aggregated serving statistics since the last reset.

    Attributes:
        queries: requests served (hits + misses).
        cache_hits / cache_misses / cache_evictions: cache counters.
        cache_entries: entries currently cached.
        generation: the engine generation at report time.
        postings_processed: text-stage postings scored across misses.
        stage_seconds: total per-stage evaluation time across misses.
        hit_seconds / miss_seconds: total request time by outcome.
    """

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_entries: int = 0
    generation: int = 0
    postings_processed: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    hit_seconds: float = 0.0
    miss_seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.cache_hits / self.queries

    @property
    def total_seconds(self) -> float:
        return self.hit_seconds + self.miss_seconds


def format_query_stats(stats: QueryStats) -> str:
    """Render a :class:`QueryStats` report as a readable table."""
    lines = [
        f"queries served      {stats.queries}",
        f"cache hits          {stats.cache_hits} ({stats.hit_rate:.0%} hit rate)",
        f"cache misses        {stats.cache_misses}",
        f"cache evictions     {stats.cache_evictions}",
        f"cache entries       {stats.cache_entries}",
        f"index generation    {stats.generation}",
        f"postings processed  {stats.postings_processed}",
        f"hit time            {stats.hit_seconds * 1e3:.2f} ms total",
        f"miss time           {stats.miss_seconds * 1e3:.2f} ms total",
    ]
    if stats.stage_seconds:
        lines.append("per-stage evaluation time:")
        for name in STAGES:
            if name in stats.stage_seconds:
                lines.append(f"  {name:<16}{stats.stage_seconds[name] * 1e3:.2f} ms")
    return "\n".join(lines)


class _ReadWriteLock:
    """A writer-preferring readers-writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Waiting writers block new readers, so a stream of queries
    cannot starve the indexer.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class _LRUCache:
    """A thread-safe LRU map from cache key to result tuple."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[int, str], tuple[SceneResult, ...]] = OrderedDict()
        self.evictions = 0

    def get(self, key: tuple[int, str]) -> tuple[SceneResult, ...] | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: tuple[int, str], value: tuple[SceneResult, ...]) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class LibrarySearchService:
    """Concurrent, cached query serving over a library engine.

    Args:
        engine: the :class:`DigitalLibraryEngine` to serve from.
        cache_size: maximum cached result sets (LRU beyond that).

    Readers call :meth:`search`; writers go through :meth:`index_plan`,
    :meth:`index_checkpointed`, :meth:`refresh_text_index` or
    :meth:`write` so their shared-state mutations serialize against
    in-flight queries.
    """

    def __init__(self, engine, cache_size: int = 256):
        self.engine = engine
        self._cache = _LRUCache(cache_size)
        self._rw = _ReadWriteLock()
        self._stats_lock = threading.Lock()
        self._queries = 0
        self._hits = 0
        self._misses = 0
        self._postings = 0
        self._stage_seconds: dict[str, float] = {}
        self._hit_seconds = 0.0
        self._miss_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #

    @property
    def generation(self) -> int:
        """The engine's current index generation."""
        return self.engine.generation

    def search(self, query: LibraryQuery, *, bypass_cache: bool = False) -> ServedQuery:
        """Serve one combined query.

        The evaluation is pinned to the generation current at request
        start: commits wait for it (and it for them), so the result set
        is exactly a fresh evaluation at that generation.

        Args:
            query: the combined query.
            bypass_cache: evaluate without reading or writing the cache
                (the cold path the E15 benchmark measures).
        """
        started = time.perf_counter()
        key = canonical_query_key(query)
        with self._rw.read():
            generation = self.engine.generation
            if not bypass_cache:
                cached = self._cache.get((generation, key))
                if cached is not None:
                    seconds = time.perf_counter() - started
                    self._record(hit=True, seconds=seconds)
                    return ServedQuery(
                        results=list(cached),
                        generation=generation,
                        cache_hit=True,
                        seconds=seconds,
                    )
            trace = QueryTrace()
            results = self.engine.search(query, trace=trace)
            if not bypass_cache:
                self._cache.put((generation, key), tuple(results))
        seconds = time.perf_counter() - started
        self._record(hit=False, seconds=seconds, trace=trace)
        return ServedQuery(
            results=results,
            generation=generation,
            cache_hit=False,
            seconds=seconds,
            trace=trace,
        )

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    @contextmanager
    def write(self):
        """Exclusive access to the engine for arbitrary writer work.

        In-flight queries finish first; new queries wait until the
        writer is done, then see the bumped generation.  Yields the
        engine.
        """
        with self._rw.write():
            yield self.engine

    def index_plan(self, plan):
        """Index one video plan with minimal reader disruption.

        Clip materialisation and the detector pass run *outside* the
        write lock against a scratch model (:meth:`FeatureDetectorEngine
        .stage_video`); only the commit — meta-index merge, webspace
        linking, generation bump — excludes readers.
        """
        clip, truth = plan.materialise()
        staged = self.engine.indexer.fde.stage_video(clip)
        with self._rw.write():
            return self.engine.indexer.commit_staged_plan(plan, clip, truth, staged)

    def index_checkpointed(self, path, **kwargs):
        """Checkpointed batch indexing with per-video commit locking.

        Delegates to :meth:`LibraryIndexer.index_checkpointed`, passing
        the service's write lock as the per-video ``commit_lock`` — each
        video's commit (and its snapshot/journal write) lands atomically
        between queries, and queries between commits see a consistent
        prefix of the batch.
        """
        return self.engine.indexer.index_checkpointed(path, commit_lock=self._rw.write, **kwargs)

    def refresh_text_index(self) -> None:
        """Refresh the text index under the write lock (no-op when clean)."""
        with self._rw.write():
            self.engine.refresh_text_index()

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def _record(self, *, hit: bool, seconds: float, trace: QueryTrace | None = None) -> None:
        with self._stats_lock:
            self._queries += 1
            if hit:
                self._hits += 1
                self._hit_seconds += seconds
            else:
                self._misses += 1
                self._miss_seconds += seconds
            if trace is not None:
                self._postings += trace.postings_processed
                for name, value in trace.stage_seconds.items():
                    self._stage_seconds[name] = self._stage_seconds.get(name, 0.0) + value

    def stats(self) -> QueryStats:
        """A snapshot of the serving counters."""
        with self._stats_lock:
            return QueryStats(
                queries=self._queries,
                cache_hits=self._hits,
                cache_misses=self._misses,
                cache_evictions=self._cache.evictions,
                cache_entries=len(self._cache),
                generation=self.engine.generation,
                postings_processed=self._postings,
                stage_seconds=dict(self._stage_seconds),
                hit_seconds=self._hit_seconds,
                miss_seconds=self._miss_seconds,
            )

    def reset_stats(self) -> None:
        """Zero the counters (the cache itself is kept)."""
        with self._stats_lock:
            self._queries = self._hits = self._misses = 0
            self._postings = 0
            self._stage_seconds = {}
            self._hit_seconds = self._miss_seconds = 0.0
            self._cache.evictions = 0

    def clear_cache(self) -> None:
        """Drop every cached result set."""
        self._cache.clear()
