"""The concurrent, overload-resilient query-serving layer.

:class:`LibrarySearchService` wraps a
:class:`~repro.library.engine.DigitalLibraryEngine` for repeated and
concurrent use:

- **Generation-keyed result cache.**  Results are cached under
  ``(generation, canonical_query_key(query))``, where the generation is
  the engine's monotone index-generation counter (bumped on every video
  commit and on every effective text-index refresh).  A commit changes
  the generation, so a stale entry can never be served *unlabeled* —
  staleness is impossible by construction, no explicit invalidation
  protocol needed.
- **Snapshot-isolated reads.**  Queries run under the read side of a
  readers-writer lock; commits (video registration, text refresh,
  relational rebuild) take the write side.  A query therefore evaluates
  against one pinned generation — it can never observe a half-committed
  video — while expensive writer work (clip materialisation, detector
  staging) happens outside the lock.
- **Overload resilience** (opt-in via
  :class:`~repro.library.resilience.ResilienceConfig`): per-query
  deadlines (:class:`~repro.budget.QueryBudget`) checked cooperatively
  inside the engine, semaphore-style admission control with a bounded
  FIFO wait queue (:class:`AdmissionController`), per-stage circuit
  breakers, and a graceful-degradation ladder — on deadline or overload
  the service falls back, in order, to (1) the previous generation's
  cached result labeled ``stale=True``, (2) a concept-only partial
  evaluation labeled ``degraded=True`` with the skipped stages listed,
  (3) a typed rejection.  Shed requests are rejected fast without
  touching the read lock.  ``resilience=None`` (the default) keeps the
  original fast path: results are byte-identical to the unresilient
  service.
- **Observability.**  Per-stage wall-clock timers (a synthetic ``cache``
  stage for hits, then concept filter, text top-N, scene scan, sequence
  match, rank merge), cache hit/miss/eviction counters,
  postings-processed accounting, bounded p50/p95/p99 latency reservoirs
  (hits and misses separately) and shed/stale/degraded counters are
  aggregated into a :class:`QueryStats` report (``repro query-stats``
  prints it).

The invariants the stress and soak suites enforce: every served result
carries a generation >= the generation observed at request start minus
one, results older than the current generation are always labeled
``stale``, degraded results always list their skipped stages, and no
query holds the read lock past its deadline (plus one bounded
concept-only fallback evaluation).
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.budget import DeadlineExceeded, LockTimeout, OverloadedError, QueryBudget
from repro.library.query import LibraryQuery
from repro.library.resilience import DEGRADABLE_STAGES, ResilienceConfig, StageBreaker
from repro.library.results import SceneResult
from repro.library.stats import LatencyReservoir

__all__ = [
    "AdmissionController",
    "LRUCache",
    "LibrarySearchService",
    "QueryStats",
    "QueryTrace",
    "ServedQuery",
    "canonical_query_key",
]

#: Stage names in report order (a query touches a subset of these).
#: ``cache`` is the synthetic stage recorded for cache-hit responses, so
#: per-stage time sums to total serving time.
STAGES = (
    "cache",
    "concept_filter",
    "text_topn",
    "scene_scan",
    "sequence_match",
    "rank_merge",
    "ann_query",
    "ann_search",
    "rank_fuse",
)


def canonical_query_key(query: LibraryQuery) -> str:
    """A canonical serialization of *query* — the cache key.

    Semantically identical queries map to the same key: the player
    constraints are sorted, and ``within`` (which only matters for
    sequence queries) is normalised away when no sequence part exists.
    """
    payload = {
        "player": {key: query.player[key] for key in sorted(query.player)},
        "event": query.event,
        "sequence": list(query.sequence) if query.sequence is not None else None,
        "within": query.within if query.sequence is not None else None,
        "text": query.text,
        "top_n": query.top_n,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class QueryTrace:
    """Per-stage wall-clock and work accounting for one evaluation."""

    def __init__(self) -> None:
        self.stage_seconds: dict[str, float] = {}
        self.postings_processed = 0

    @contextmanager
    def stage(self, name: str):
        """Time one evaluation stage (additive on re-entry)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + elapsed

    def add_postings(self, n: int) -> None:
        self.postings_processed += n


@dataclass(frozen=True)
class ServedQuery:
    """One answered query, with serving provenance.

    Attributes:
        results: the scenes, best first (a private copy per caller).
        generation: the index generation the results are valid for.
        cache_hit: whether the cache answered.
        seconds: service-side wall time for this request.
        trace: the evaluation trace (a synthetic ``cache`` stage on
            cache hits).
        stale: the results come from the *previous* generation's cache
            (degradation-ladder rung 1); ``generation`` is the older
            generation they are valid for.
        degraded: the results come from a partial evaluation that
            skipped :attr:`skipped_stages` (ladder rung 2).
        skipped_stages: the degradable stages left out of a degraded
            evaluation (always non-empty when ``degraded``).
        rejection: set when the request was shed instead of served —
            ``"queue_full"``, ``"queue_timeout"``, ``"lock_timeout"``,
            ``"deadline"`` or ``"stage_error"``; ``results`` is empty.
    """

    results: list[SceneResult]
    generation: int
    cache_hit: bool
    seconds: float
    trace: QueryTrace | None = None
    stale: bool = False
    degraded: bool = False
    skipped_stages: tuple[str, ...] = ()
    rejection: str | None = None

    @property
    def rejected(self) -> bool:
        return self.rejection is not None

    @property
    def status(self) -> str:
        """``hit`` / ``miss`` / ``stale`` / ``degraded`` / ``rejected:<reason>``."""
        if self.rejection is not None:
            return f"rejected:{self.rejection}"
        if self.degraded:
            return "degraded"
        if self.stale:
            return "stale"
        return "hit" if self.cache_hit else "miss"


@dataclass
class QueryStats:
    """Aggregated serving statistics since the last reset.

    Attributes:
        queries: requests served (hits + misses; shed requests are
            counted in :attr:`shed`, not here).
        cache_hits / cache_misses / cache_evictions: cache counters.
        cache_entries: entries currently cached.
        generation: the engine generation at report time.
        postings_processed: text-stage postings scored across misses.
        stage_seconds: total per-stage evaluation time (the synthetic
            ``cache`` stage carries cache-hit serving time, so the table
            sums to total serving time).
        hit_seconds / miss_seconds: total request time by outcome.
        hit_latency / miss_latency: ``{"p50": .., "p95": .., "p99": ..}``
            in seconds over the bounded reservoirs (empty when no
            samples).
        shed: rejection reason -> count of shed requests.
        stale_served: results served from the previous generation.
        degraded_served: partial (stage-skipping) evaluations served.
        deadline_exceeded: evaluations that blew their budget.
        breaker_states / breaker_trips: per-stage circuit-breaker state
            and lifetime trip count (resilient services only).
        admission: :class:`AdmissionController` snapshot (resilient
            services only).
        streams: per-stream ingest rows from an attached
            :class:`~repro.streaming.ingest.StreamIngestor` — chunk and
            shot progress, lag-shed counts, ``degraded_freshness`` and
            the frame-arrival -> queryable freshness percentiles against
            the declared SLO.
    """

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_entries: int = 0
    generation: int = 0
    postings_processed: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    hit_seconds: float = 0.0
    miss_seconds: float = 0.0
    hit_latency: dict[str, float] = field(default_factory=dict)
    miss_latency: dict[str, float] = field(default_factory=dict)
    shed: dict[str, int] = field(default_factory=dict)
    stale_served: int = 0
    degraded_served: int = 0
    deadline_exceeded: int = 0
    breaker_states: dict[str, str] = field(default_factory=dict)
    breaker_trips: dict[str, int] = field(default_factory=dict)
    admission: dict[str, object] = field(default_factory=dict)
    streams: dict[str, dict] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.cache_hits / self.queries

    @property
    def total_seconds(self) -> float:
        return self.hit_seconds + self.miss_seconds

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())


def _format_latency(summary: dict[str, float]) -> str:
    return "  ".join(f"{name} {value * 1e3:.2f} ms" for name, value in summary.items())


def format_query_stats(stats: QueryStats) -> str:
    """Render a :class:`QueryStats` report as a readable table."""
    lines = [
        f"queries served      {stats.queries}",
        f"cache hits          {stats.cache_hits} ({stats.hit_rate:.0%} hit rate)",
        f"cache misses        {stats.cache_misses}",
        f"cache evictions     {stats.cache_evictions}",
        f"cache entries       {stats.cache_entries}",
        f"index generation    {stats.generation}",
        f"postings processed  {stats.postings_processed}",
        f"hit time            {stats.hit_seconds * 1e3:.2f} ms total",
        f"miss time           {stats.miss_seconds * 1e3:.2f} ms total",
    ]
    if stats.hit_latency:
        lines.append(f"hit latency         {_format_latency(stats.hit_latency)}")
    if stats.miss_latency:
        lines.append(f"miss latency        {_format_latency(stats.miss_latency)}")
    if stats.stage_seconds:
        lines.append("per-stage evaluation time:")
        for name in STAGES:
            if name in stats.stage_seconds:
                lines.append(f"  {name:<16}{stats.stage_seconds[name] * 1e3:.2f} ms")
    if stats.shed or stats.stale_served or stats.degraded_served or stats.deadline_exceeded:
        shed_detail = ""
        if stats.shed:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(stats.shed.items()))
            shed_detail = f" ({parts})"
        lines.append("resilience:")
        lines.append(f"  shed              {stats.shed_total}{shed_detail}")
        lines.append(f"  stale served      {stats.stale_served}")
        lines.append(f"  degraded served   {stats.degraded_served}")
        lines.append(f"  deadline exceeded {stats.deadline_exceeded}")
    if stats.breaker_states:
        lines.append("breakers:")
        for stage in sorted(stats.breaker_states):
            trips = stats.breaker_trips.get(stage, 0)
            lines.append(f"  {stage:<16}{stats.breaker_states[stage]} ({trips} trips)")
    if stats.streams:
        lines.append("streams:")
        width = max(len(name) for name in stats.streams) + 2
        for name in sorted(stats.streams):
            row = stats.streams[name]
            p95 = row.get("freshness_p95_ms")
            slo = row.get("freshness_slo_ms")
            fresh = "-" if p95 is None else f"p95 {p95:.1f} ms / slo {slo:.0f} ms"
            flags = []
            if row.get("degraded_freshness"):
                flags.append("degraded_freshness")
            if row.get("lag_sheds"):
                flags.append(f"lag_sheds={row['lag_sheds']}")
            suffix = f"  [{', '.join(flags)}]" if flags else ""
            lines.append(
                f"  {name:<{width}}{row.get('state', '?'):<12}"
                f"chunks {row.get('chunks', 0):<5}shots {row.get('shots', 0):<5}"
                f"{fresh}{suffix}"
            )
    return "\n".join(lines)


class _ReadWriteLock:
    """A writer-preferring readers-writer lock with timed acquisition.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Waiting writers block new readers, so a stream of queries
    cannot starve the indexer.  Both sides accept an optional timeout;
    giving up raises :class:`~repro.budget.LockTimeout`, and an aborted
    wait (timeout *or* an exception delivered inside ``wait``) never
    leaks the ``_writers_waiting`` reader barrier.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self, timeout: float | None = None):
        with self._cond:
            acquired = self._cond.wait_for(
                lambda: not (self._writer_active or self._writers_waiting), timeout
            )
            if not acquired:
                raise LockTimeout(
                    f"read lock not acquired within {timeout * 1e3:.0f} ms"
                )
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self, timeout: float | None = None):
        with self._cond:
            self._writers_waiting += 1
            try:
                acquired = self._cond.wait_for(
                    lambda: not (self._writer_active or self._readers), timeout
                )
            except BaseException:
                # The wait was interrupted: withdraw the writer claim and
                # wake the readers it was blocking.
                self._writers_waiting -= 1
                self._cond.notify_all()
                raise
            self._writers_waiting -= 1
            if not acquired:
                self._cond.notify_all()
                raise LockTimeout(
                    f"write lock not acquired within {timeout * 1e3:.0f} ms"
                )
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class AdmissionController:
    """Semaphore-style admission with a bounded FIFO wait queue.

    At most *max_concurrent* requests hold a slot at once.  Beyond that,
    up to *max_queue* requests wait in FIFO order for at most
    *queue_timeout* seconds; anything more is shed immediately.  Both
    shedding paths raise a typed
    :class:`~repro.budget.OverloadedError` (``queue_full`` /
    ``queue_timeout``) without touching any engine state, so rejection
    under overload stays O(1).
    """

    def __init__(self, max_concurrent: int, max_queue: int, queue_timeout: float) -> None:
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if queue_timeout < 0:
            raise ValueError(f"queue_timeout must be >= 0, got {queue_timeout}")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._cond = threading.Condition()
        self._queue: deque[object] = deque()
        self._active = 0
        self.admitted = 0
        self.rejected: dict[str, int] = {}
        self.peak_active = 0
        self.peak_queued = 0

    @contextmanager
    def admit(self):
        """Hold an admission slot; raises ``OverloadedError`` when shed."""
        self._acquire()
        try:
            yield
        finally:
            self._release()

    def _grant(self) -> None:
        self._active += 1
        self.admitted += 1
        self.peak_active = max(self.peak_active, self._active)

    def _shed(self, reason: str, message: str) -> OverloadedError:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        return OverloadedError(message, reason=reason)

    def _acquire(self) -> None:
        with self._cond:
            if self._active < self.max_concurrent and not self._queue:
                self._grant()
                return
            if len(self._queue) >= self.max_queue:
                raise self._shed(
                    "queue_full",
                    f"admission queue full ({len(self._queue)} waiting, "
                    f"{self._active} active)",
                )
            ticket = object()
            self._queue.append(ticket)
            self.peak_queued = max(self.peak_queued, len(self._queue))
            deadline = time.monotonic() + self.queue_timeout
            try:
                while not (self._queue[0] is ticket and self._active < self.max_concurrent):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._queue.remove(ticket)
                        self._cond.notify_all()
                        raise self._shed(
                            "queue_timeout",
                            f"queued longer than {self.queue_timeout * 1e3:.0f} ms",
                        )
                    self._cond.wait(remaining)
            except OverloadedError:
                raise
            except BaseException:
                # Interrupted while queued: leave no dead ticket at the
                # head wedging everyone behind it.
                if ticket in self._queue:
                    self._queue.remove(ticket)
                self._cond.notify_all()
                raise
            self._queue.popleft()
            self._grant()
            self._cond.notify_all()

    def _release(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify_all()

    def snapshot(self) -> dict[str, object]:
        """Current occupancy and lifetime admission counters."""
        with self._cond:
            return {
                "active": self._active,
                "queued": len(self._queue),
                "admitted": self.admitted,
                "rejected": dict(self.rejected),
                "peak_active": self.peak_active,
                "peak_queued": self.peak_queued,
            }


class LRUCache:
    """A thread-safe LRU map (keys hashable, values opaque).

    The single-node service keys it by ``(generation, query key)`` with
    result tuples as values; the sharded coordinator keys it by
    ``(generation vector, query key)`` — same eviction discipline, so
    both caches age out naturally as generations move.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self.evictions = 0

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key, value) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: Back-compat alias (the cache predates its public promotion).
_LRUCache = LRUCache


class LibrarySearchService:
    """Concurrent, cached, overload-resilient query serving.

    Args:
        engine: the :class:`DigitalLibraryEngine` to serve from.
        cache_size: maximum cached result sets (LRU beyond that).
        resilience: optional
            :class:`~repro.library.resilience.ResilienceConfig` enabling
            admission control, default budgets, circuit breakers and the
            degradation ladder.  ``None`` keeps the plain path: no
            admission, no shedding, results byte-identical to the
            unresilient service.

    Readers call :meth:`search`; writers go through :meth:`index_plan`,
    :meth:`index_checkpointed`, :meth:`refresh_text_index` or
    :meth:`write` so their shared-state mutations serialize against
    in-flight queries.
    """

    def __init__(
        self,
        engine,
        cache_size: int = 256,
        resilience: ResilienceConfig | None = None,
    ):
        self.engine = engine
        self.resilience = resilience
        self._cache = LRUCache(cache_size)
        self._rw = _ReadWriteLock()
        self._stats_lock = threading.Lock()
        self._queries = 0
        self._hits = 0
        self._misses = 0
        self._postings = 0
        self._stage_seconds: dict[str, float] = {}
        self._hit_seconds = 0.0
        self._miss_seconds = 0.0
        self._hit_reservoir = LatencyReservoir()
        self._miss_reservoir = LatencyReservoir()
        self._shed: dict[str, int] = {}
        self._stale_served = 0
        self._degraded_served = 0
        self._deadline_exceeded = 0
        if resilience is not None:
            self._admission: AdmissionController | None = AdmissionController(
                resilience.max_concurrent,
                resilience.max_queue,
                resilience.queue_timeout,
            )
            self._breakers = {
                stage: StageBreaker(
                    failure_threshold=resilience.breaker_failure_threshold,
                    latency_threshold=resilience.breaker_latency_threshold,
                    cooldown=resilience.breaker_cooldown,
                    alpha=resilience.breaker_alpha,
                )
                for stage in resilience.breaker_stages
            }
        else:
            self._admission = None
            self._breakers = {}
        self._stream_provider = None

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #

    @property
    def generation(self) -> int:
        """The engine's current index generation."""
        return self.engine.generation

    def search(
        self,
        query: LibraryQuery,
        *,
        bypass_cache: bool = False,
        budget: QueryBudget | None = None,
    ) -> ServedQuery:
        """Serve one combined query.

        The evaluation is pinned to the generation current at request
        start: commits wait for it (and it for them), so the result set
        is exactly a fresh evaluation at that generation.

        Args:
            query: the combined query.
            bypass_cache: evaluate without reading or writing the cache
                (the cold path the E15 benchmark measures); also
                disables the stale-serving ladder rung.
            budget: per-query :class:`~repro.budget.QueryBudget`.  On a
                plain service (``resilience=None``) expiry propagates as
                :class:`~repro.budget.DeadlineExceeded`; on a resilient
                service it enters the degradation ladder instead.  When
                omitted, a resilient service applies its configured
                default budget.
        """
        started = time.perf_counter()
        key = canonical_query_key(query)
        if self.resilience is None:
            return self._serve_plain(query, key, started, bypass_cache, budget)
        if budget is None:
            budget = QueryBudget(
                seconds=self.resilience.budget_seconds,
                postings=self.resilience.budget_postings,
            )
        try:
            with self._admission.admit():
                return self._serve_admitted(query, key, started, bypass_cache, budget)
        except OverloadedError as exc:
            return self._serve_unadmitted(query, key, started, exc.reason, bypass_cache)

    def _serve_plain(
        self,
        query: LibraryQuery,
        key: str,
        started: float,
        bypass_cache: bool,
        budget: QueryBudget | None,
    ) -> ServedQuery:
        """The original fast path: no admission, no ladder, no shedding."""
        with self._rw.read():
            generation = self.engine.generation
            if not bypass_cache:
                cached = self._cache.get((generation, key))
                if cached is not None:
                    return self._serve_hit(cached, generation, started)
            trace = QueryTrace()
            results = self.engine.search(query, trace=trace, budget=budget)
            if not bypass_cache:
                self._cache.put((generation, key), tuple(results))
        seconds = time.perf_counter() - started
        self._record(hit=False, seconds=seconds, trace=trace)
        return ServedQuery(
            results=results,
            generation=generation,
            cache_hit=False,
            seconds=seconds,
            trace=trace,
        )

    def _serve_admitted(
        self,
        query: LibraryQuery,
        key: str,
        started: float,
        bypass_cache: bool,
        budget: QueryBudget,
    ) -> ServedQuery:
        """Serve while holding an admission slot; may degrade or shed."""
        timeout = self.resilience.lock_timeout
        remaining = budget.remaining()
        if remaining is not None:
            timeout = remaining if timeout is None else min(timeout, remaining)
            timeout = max(0.0, timeout)
        with self._rw.read(timeout=timeout):
            generation = self.engine.generation
            if not bypass_cache:
                cached = self._cache.get((generation, key))
                if cached is not None:
                    return self._serve_hit(cached, generation, started)
            skipped = self._breaker_skips(query)
            trace = QueryTrace()
            try:
                results = self.engine.search(
                    query, trace=trace, budget=budget, skip_stages=frozenset(skipped)
                )
            except DeadlineExceeded as exc:
                with self._stats_lock:
                    self._deadline_exceeded += 1
                self._breaker_failure(exc.stage, trace)
                return self._degrade(
                    query, key, generation, started, exc.stage, "deadline", budget,
                    bypass_cache,
                )
            except OverloadedError:
                raise
            except Exception as exc:
                stage = getattr(exc, "stage", None)
                self._breaker_failure(stage, trace)
                return self._degrade(
                    query, key, generation, started, stage, "stage_error", budget,
                    bypass_cache,
                )
            self._record_stage_health(trace, skipped)
            seconds = time.perf_counter() - started
            if skipped:
                # A breaker pre-emptively degraded this evaluation:
                # label it, and never cache a partial result.
                self._record(hit=False, seconds=seconds, trace=trace, degraded=True)
                return ServedQuery(
                    results=results,
                    generation=generation,
                    cache_hit=False,
                    seconds=seconds,
                    trace=trace,
                    degraded=True,
                    skipped_stages=tuple(sorted(skipped)),
                )
            if not bypass_cache:
                self._cache.put((generation, key), tuple(results))
        seconds = time.perf_counter() - started
        self._record(hit=False, seconds=seconds, trace=trace)
        return ServedQuery(
            results=results,
            generation=generation,
            cache_hit=False,
            seconds=seconds,
            trace=trace,
        )

    def _degrade(
        self,
        query: LibraryQuery,
        key: str,
        generation: int,
        started: float,
        stage: str | None,
        reason: str,
        budget: QueryBudget,
        bypass_cache: bool,
    ) -> ServedQuery:
        """Walk the degradation ladder: stale -> concept-only -> reject.

        Called with the read lock held (so the concept-only retry sees
        the same pinned generation); the retry runs on a *fresh* budget
        of the same size, bounding total lock-hold time at two budgets.
        """
        cfg = self.resilience
        if cfg.stale_serving and not bypass_cache and generation > 0:
            cached = self._cache.get((generation - 1, key))
            if cached is not None:
                return self._serve_hit(cached, generation - 1, started, stale=True)
        relevant = self._degradable_for(query)
        if cfg.degraded_serving and relevant and stage != "concept_filter":
            skip = set(DEGRADABLE_STAGES)
            if stage is not None:
                skip.add(stage)
            retry_budget = QueryBudget(seconds=budget.seconds, clock=budget.clock)
            trace = QueryTrace()
            try:
                results = self.engine.search(
                    query, trace=trace, budget=retry_budget, skip_stages=frozenset(skip)
                )
            except Exception:
                pass  # the ladder's last rung handles it
            else:
                seconds = time.perf_counter() - started
                self._record(hit=False, seconds=seconds, trace=trace, degraded=True)
                return ServedQuery(
                    results=results,
                    generation=generation,
                    cache_hit=False,
                    seconds=seconds,
                    trace=trace,
                    degraded=True,
                    skipped_stages=tuple(sorted(relevant)),
                )
        return self._reject(generation, started, reason)

    def _serve_unadmitted(
        self,
        query: LibraryQuery,
        key: str,
        started: float,
        reason: str,
        bypass_cache: bool,
    ) -> ServedQuery:
        """Shed path: answer from cache if possible, else reject fast.

        Runs without the read lock — the cache is internally
        thread-safe, and the generation counter is a monotone int, so
        the worst case is answering for a generation one behind a
        racing commit, which the ``stale`` label already covers.
        """
        generation = self.engine.generation
        if not bypass_cache:
            cached = self._cache.get((generation, key))
            if cached is not None:
                return self._serve_hit(cached, generation, started)
            if self.resilience.stale_serving and generation > 0:
                cached = self._cache.get((generation - 1, key))
                if cached is not None:
                    return self._serve_hit(cached, generation - 1, started, stale=True)
        return self._reject(generation, started, reason)

    def _serve_hit(
        self,
        cached: tuple[SceneResult, ...],
        generation: int,
        started: float,
        stale: bool = False,
    ) -> ServedQuery:
        seconds = time.perf_counter() - started
        trace = QueryTrace()
        trace.stage_seconds["cache"] = seconds
        self._record(hit=True, seconds=seconds, trace=trace, stale=stale)
        return ServedQuery(
            results=list(cached),
            generation=generation,
            cache_hit=True,
            seconds=seconds,
            trace=trace,
            stale=stale,
        )

    def _reject(self, generation: int, started: float, reason: str) -> ServedQuery:
        with self._stats_lock:
            self._shed[reason] = self._shed.get(reason, 0) + 1
        return ServedQuery(
            results=[],
            generation=generation,
            cache_hit=False,
            seconds=time.perf_counter() - started,
            rejection=reason,
        )

    # ------------------------------------------------------------------ #
    # Circuit breakers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _degradable_for(query: LibraryQuery) -> list[str]:
        """The degradable stages this query would actually run."""
        relevant = []
        if query.has_text_part:
            relevant.append("text_topn")
        if query.has_sequence_part:
            relevant.append("sequence_match")
        return relevant

    def _breaker_skips(self, query: LibraryQuery) -> list[str]:
        """Stages a tripped breaker proactively removes from this query."""
        skipped = []
        for stage in self._degradable_for(query):
            breaker = self._breakers.get(stage)
            if breaker is not None and not breaker.allow():
                skipped.append(stage)
        return skipped

    def _record_stage_health(self, trace: QueryTrace, skipped: list[str]) -> None:
        for stage, breaker in self._breakers.items():
            if stage in skipped:
                continue
            seconds = trace.stage_seconds.get(stage)
            if seconds is not None:
                breaker.record_success(seconds)

    def _breaker_failure(self, stage: str | None, trace: QueryTrace) -> None:
        breaker = self._breakers.get(stage)
        if breaker is not None:
            breaker.record_failure(trace.stage_seconds.get(stage))

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    @contextmanager
    def write(self):
        """Exclusive access to the engine for arbitrary writer work.

        In-flight queries finish first; new queries wait until the
        writer is done, then see the bumped generation.  Yields the
        engine.
        """
        with self._rw.write():
            yield self.engine

    def index_plan(self, plan):
        """Index one video plan with minimal reader disruption.

        Clip materialisation and the detector pass run *outside* the
        write lock against a scratch model (:meth:`FeatureDetectorEngine
        .stage_video`); only the commit — meta-index merge, webspace
        linking, generation bump — excludes readers.
        """
        clip, truth = plan.materialise()
        staged = self.engine.indexer.fde.stage_video(clip)
        with self._rw.write():
            return self.engine.indexer.commit_staged_plan(plan, clip, truth, staged)

    def index_checkpointed(self, path, **kwargs):
        """Checkpointed batch indexing with per-video commit locking.

        Delegates to :meth:`LibraryIndexer.index_checkpointed`, passing
        the service's write lock as the per-video ``commit_lock`` — each
        video's commit (and its snapshot/journal write) lands atomically
        between queries, and queries between commits see a consistent
        prefix of the batch.
        """
        return self.engine.indexer.index_checkpointed(path, commit_lock=self._rw.write, **kwargs)

    def refresh_text_index(self) -> None:
        """Refresh the text index under the write lock (no-op when clean)."""
        with self._rw.write():
            self.engine.refresh_text_index()

    # ------------------------------------------------------------------ #
    # Streaming ingest
    # ------------------------------------------------------------------ #

    def stream_plan(self, plan, *, chunk_frames: int = 32, **kwargs):
        """Chunk-append one video plan with per-chunk commit locking.

        Delegates to :meth:`LibraryIndexer.stream_plan`, passing the
        service's write lock as the ``commit_lock`` — every chunk's
        commit (shots, snapshot, generation bump) lands atomically
        between queries, so readers see chunk-granular freshness instead
        of waiting for the whole video.
        """
        return self.engine.indexer.stream_plan(
            plan, chunk_frames=chunk_frames, commit_lock=self._rw.write, **kwargs
        )

    def ingestor(self, *, path=None, journal=None, config=None):
        """Build a :class:`~repro.streaming.ingest.StreamIngestor` wired
        to this service (chunk commits under the write lock, per-stream
        freshness surfaced in :meth:`stats`/``repro query-stats``)."""
        from repro.streaming.ingest import StreamIngestor

        ingestor = StreamIngestor(
            self.engine.indexer,
            path=path,
            journal=journal,
            config=config,
            commit_lock=self._rw.write,
        )
        self.attach_streams(ingestor.stats_payload)
        return ingestor

    def attach_streams(self, provider) -> None:
        """Register a zero-argument callable returning per-stream rows
        (``StreamIngestor.stats_payload``) to merge into :meth:`stats`."""
        self._stream_provider = provider

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def _record(
        self,
        *,
        hit: bool,
        seconds: float,
        trace: QueryTrace | None = None,
        stale: bool = False,
        degraded: bool = False,
    ) -> None:
        with self._stats_lock:
            self._queries += 1
            if hit:
                self._hits += 1
                self._hit_seconds += seconds
                self._hit_reservoir.add(seconds)
            else:
                self._misses += 1
                self._miss_seconds += seconds
                self._miss_reservoir.add(seconds)
            if stale:
                self._stale_served += 1
            if degraded:
                self._degraded_served += 1
            if trace is not None:
                self._postings += trace.postings_processed
                for name, value in trace.stage_seconds.items():
                    self._stage_seconds[name] = self._stage_seconds.get(name, 0.0) + value

    def stats(self) -> QueryStats:
        """A snapshot of the serving counters."""
        with self._stats_lock:
            stats = QueryStats(
                queries=self._queries,
                cache_hits=self._hits,
                cache_misses=self._misses,
                cache_evictions=self._cache.evictions,
                cache_entries=len(self._cache),
                generation=self.engine.generation,
                postings_processed=self._postings,
                stage_seconds=dict(self._stage_seconds),
                hit_seconds=self._hit_seconds,
                miss_seconds=self._miss_seconds,
                hit_latency=self._hit_reservoir.summary(),
                miss_latency=self._miss_reservoir.summary(),
                shed=dict(self._shed),
                stale_served=self._stale_served,
                degraded_served=self._degraded_served,
                deadline_exceeded=self._deadline_exceeded,
            )
        for stage, breaker in self._breakers.items():
            stats.breaker_states[stage] = breaker.state
            stats.breaker_trips[stage] = breaker.trips
        if self._admission is not None:
            stats.admission = self._admission.snapshot()
        if self._stream_provider is not None:
            stats.streams = self._stream_provider()
        return stats

    def reset_stats(self) -> None:
        """Zero the counters (the cache and breaker state are kept)."""
        with self._stats_lock:
            self._queries = self._hits = self._misses = 0
            self._postings = 0
            self._stage_seconds = {}
            self._hit_seconds = self._miss_seconds = 0.0
            self._hit_reservoir.clear()
            self._miss_reservoir.clear()
            self._shed = {}
            self._stale_served = self._degraded_served = 0
            self._deadline_exceeded = 0
            self._cache.evictions = 0

    def clear_cache(self) -> None:
        """Drop every cached result set."""
        self._cache.clear()
