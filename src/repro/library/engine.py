"""The digital library engine facade.

Combines the three query facilities of the demo:

- conceptual (webspace) constraints resolve to players and the matches
  and videos connected to them;
- content constraints resolve to event scenes in those videos via the
  COBRA meta-index;
- text constraints score the players' interview transcripts with the
  top-N IR engine.

``search`` evaluates a :class:`~repro.library.query.LibraryQuery` by
intersecting the three; ``keyword_search`` is the crawler-style baseline
that only sees page text (the E7/E10 comparison point).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.budget import DeadlineExceeded, QueryBudget
from repro.dataset.build import TournamentDataset
from repro.grammar.fde import FeatureDetectorEngine
from repro.ir.inverted_index import InvertedIndex
from repro.ir.ranking import RankedHit, rank_full_scan
from repro.ir.topn import FragmentedIndex, full_scan_postings
from repro.library.indexing import LibraryIndexer
from repro.library.query import LibraryQuery
from repro.library.results import SceneResult, fuse_scores
from repro.library.service import QueryTrace
from repro.webspace.instances import WebspaceObject

__all__ = ["DigitalLibraryEngine"]


def _ranked(results: list[SceneResult], top_n: int) -> list[SceneResult]:
    """The canonical result ordering (best first, deterministic ties)."""
    return sorted(results, key=lambda r: (-r.score, r.video_name, r.start))[:top_n]


class DigitalLibraryEngine:
    """One engine over the tournament's concepts, text and video content.

    Args:
        dataset: the tournament dataset (concept graph + pages + plans).
        fde: optional FDE override for video indexing.
        n_fragments: fragmentation of the text index (top-N tuning).
    """

    def __init__(
        self,
        dataset: TournamentDataset,
        fde: FeatureDetectorEngine | None = None,
        n_fragments: int = 4,
    ):
        self.dataset = dataset
        self.indexer = LibraryIndexer(dataset, fde=fde)
        self.text_index = InvertedIndex(dataset.pages)
        self.fragmented_index = FragmentedIndex(self.text_index, n_fragments=n_fragments)
        self._text_generation = 0
        #: Query-by-example state: the IVF index over shot feature
        #: vectors, its per-ann-id provenance rows, and the vectorizer
        #: that embeds query clips.  Built by :meth:`build_ann_index`
        #: or adopted from a snapshot via :meth:`adopt_ann`.
        self.ann_index = None
        self.ann_meta: list[dict] = []
        self.ann_vectorizer = None
        #: Chaos-injection hook fired at every stage entry (see
        #: :class:`repro.faults.QueryFaultInjector`); ``None`` in
        #: production.
        self.stage_hook = None

    def _enter_stage(self, name: str, budget: QueryBudget | None) -> None:
        """Stage-boundary bookkeeping: chaos hook first, then the budget check.

        The ordering is deliberate — injected latency is *spent* before
        the deadline check runs, so a hung stage is charged to the stage
        that hung, exactly as a real slow stage would be.
        """
        hook = self.stage_hook
        if hook is not None:
            hook(name)
        if budget is not None:
            budget.check(name)

    @property
    def generation(self) -> int:
        """Monotone index generation: video commits + text refreshes.

        Bumped on every meta-index commit (video registered or snapshot
        restored) and on every *effective* text-index refresh.  The
        query-serving layer (:mod:`repro.library.service`) keys its
        result cache on it, which makes serving a stale result
        impossible by construction.
        """
        return self.indexer.generation + self._text_generation

    # ------------------------------------------------------------------ #
    # Build steps
    # ------------------------------------------------------------------ #

    def index_videos(self, limit: int | None = None) -> int:
        """Index the dataset's planned videos; returns how many.

        Fault tolerance follows the FDE's run policy: under the skip or
        quarantine isolation policies, videos whose detectors partially
        failed are committed *degraded* and the batch continues; consult
        :meth:`indexing_health` / :meth:`degraded_videos` afterwards.
        """
        return len(self.indexer.index_all(limit=limit))

    def indexing_health(self):
        """Per-video FDE health reports (see :mod:`repro.grammar.runtime`)."""
        return self.indexer.health_reports()

    def degraded_videos(self) -> list[str]:
        """Names of videos whose indexing was degraded by failures."""
        return self.indexer.degraded_videos()

    def refresh_text_index(self) -> None:
        """Re-index pages added since construction.

        A no-op when no pages were added: the fragmented index is kept
        as-is and the generation does not move, so warm caches stay
        warm.  (It used to rebuild the full fragmented index on every
        call.)
        """
        if len(self.dataset.pages) == self.text_index.n_documents:
            return
        self.text_index.refresh()
        self.fragmented_index = FragmentedIndex(
            self.text_index, n_fragments=self.fragmented_index.n_fragments
        )
        self._text_generation += 1

    # ------------------------------------------------------------------ #
    # Query parts
    # ------------------------------------------------------------------ #

    def concept_players(self, constraints: dict[str, object]) -> list[WebspaceObject]:
        """Players matching the concept constraints."""
        players = self.dataset.instance.objects("Player")
        out = []
        for player in players:
            if self._player_matches(player, constraints):
                out.append(player)
        return out

    @staticmethod
    def _player_matches(player: WebspaceObject, constraints: dict[str, object]) -> bool:
        for key, wanted in constraints.items():
            if key == "past_winner":
                if bool(player.get("titles") > 0) != bool(wanted):
                    return False
            elif player.get(key) != wanted:
                return False
        return True

    def videos_of_players(self, players: list[WebspaceObject]) -> dict[str, set[str]]:
        """video name -> names of the given players appearing in it."""
        instance = self.dataset.instance
        out: dict[str, set[str]] = {}
        for player in players:
            for match in instance.follow("played", player):
                for video in instance.follow("recorded_in", match):
                    out.setdefault(video.get("name"), set()).add(player.get("name"))
        return out

    def text_scores(
        self,
        text: str,
        n: int = 50,
        trace: QueryTrace | None = None,
        budget: QueryBudget | None = None,
    ) -> dict[int, float]:
        """doc id -> score for the free-text part (full evaluation).

        With a *budget*, the full-scan postings cost is charged *before*
        the scan runs (rejecting over-budget work up front) and the wall
        clock is re-checked after ranking.
        """
        terms = self.dataset.pages.query_terms(text)
        if trace is not None or budget is not None:
            postings = full_scan_postings(self.text_index, terms)
            if trace is not None:
                trace.add_postings(postings)
            if budget is not None:
                budget.charge_postings(postings)
        hits = rank_full_scan(self.text_index, terms, n)
        if budget is not None:
            budget.check("text_topn")
        return {hit.doc_id: hit.score for hit in hits}

    # ------------------------------------------------------------------ #
    # Combined search
    # ------------------------------------------------------------------ #

    def search(
        self,
        query: LibraryQuery,
        trace: QueryTrace | None = None,
        budget: QueryBudget | None = None,
        skip_stages: frozenset[str] = frozenset(),
    ) -> list[SceneResult]:
        """Evaluate a combined query; results best-first.

        Args:
            query: the combined query.
            trace: optional :class:`~repro.library.service.QueryTrace`
                recording per-stage wall time (``concept_filter``,
                ``text_topn``, ``scene_scan`` with ``sequence_match`` as
                its sub-stage, ``rank_merge``) and postings accounting.
            budget: optional :class:`~repro.budget.QueryBudget` checked
                cooperatively at every stage boundary and inside the
                scan loops; expiry raises
                :class:`~repro.budget.DeadlineExceeded` carrying the
                ranked partial results accumulated so far.
            skip_stages: degradable stages (``text_topn``,
                ``sequence_match``) to leave out — the concept-only
                evaluation the degradation ladder serves.  A skipped
                text part simply drops text evidence from the scores; a
                skipped sequence part falls back to whole-video scenes.
        """
        if trace is None:
            trace = QueryTrace()
        model = self.indexer.model
        use_text = query.has_text_part and "text_topn" not in skip_stages
        use_sequence = query.has_sequence_part and "sequence_match" not in skip_stages

        results: list[SceneResult] = []
        try:
            with trace.stage("concept_filter"):
                self._enter_stage("concept_filter", budget)
                if query.has_concept_part:
                    players = self.concept_players(query.player)
                    if not players:
                        return []
                    video_players = self.videos_of_players(players)
                else:
                    video_players = {video.name: set() for video in model.videos}

            text_by_video: dict[str, float] = {}
            if use_text:
                with trace.stage("text_topn"):
                    self._enter_stage("text_topn", budget)
                    scores = self.text_scores(query.text, trace=trace, budget=budget)
                    text_by_video = self._text_scores_per_video(scores, video_players)

            with trace.stage("scene_scan"):
                self._enter_stage("scene_scan", budget)
                for video in model.videos:
                    if budget is not None:
                        budget.check("scene_scan")
                    if video.name not in video_players:
                        continue
                    match_title = self._match_title_of(video.name)
                    names = tuple(sorted(video_players[video.name]))
                    text_score = text_by_video.get(video.name)
                    if query.has_content_part:
                        for event in model.events_of(
                            video_id=video.video_id, label=query.event
                        ):
                            if budget is not None:
                                budget.tick("scene_scan")
                            results.append(
                                SceneResult(
                                    video_name=video.name,
                                    start=event.start,
                                    stop=event.stop,
                                    event_label=event.label,
                                    match_title=match_title,
                                    players=names,
                                    score=fuse_scores(event.confidence, text_score),
                                )
                            )
                    elif use_sequence:
                        with trace.stage("sequence_match"):
                            self._enter_stage("sequence_match", budget)
                            pairs = self._event_sequences(
                                video.video_id, query.sequence, query.within,
                                budget=budget,
                            )
                        for first, then in pairs:
                            results.append(
                                SceneResult(
                                    video_name=video.name,
                                    start=first.start,
                                    stop=then.stop,
                                    event_label=f"{first.label}->{then.label}",
                                    match_title=match_title,
                                    players=names,
                                    score=fuse_scores(
                                        min(first.confidence, then.confidence),
                                        text_score,
                                    ),
                                )
                            )
                    else:
                        results.append(
                            SceneResult(
                                video_name=video.name,
                                start=0,
                                stop=video.n_frames,
                                event_label=None,
                                match_title=match_title,
                                players=names,
                                score=fuse_scores(1.0, text_score),
                            )
                        )
            with trace.stage("rank_merge"):
                self._enter_stage("rank_merge", budget)
                results.sort(key=lambda r: (-r.score, r.video_name, r.start))
                return results[: query.top_n]
        except DeadlineExceeded as exc:
            if exc.partial is None:
                exc.partial = _ranked(results, query.top_n)
            raise

    def _event_sequences(
        self,
        video_id: int,
        sequence: tuple[str, str],
        within: int,
        budget: QueryBudget | None = None,
    ) -> list[tuple]:
        """Event pairs realising ``first THEN then WITHIN n`` in one video.

        Temporal reasoning via Allen's algebra: the first event must be
        ``before`` or ``meets`` the second, with at most *within* frames
        of gap.
        """
        from repro.core.temporal import allen_relation

        model = self.indexer.model
        first_label, then_label = sequence
        firsts = model.events_of(video_id=video_id, label=first_label)
        thens = model.events_of(video_id=video_id, label=then_label)
        pairs = []
        for first in firsts:
            for then in thens:
                if budget is not None:
                    budget.tick("sequence_match")
                relation = allen_relation(first.interval, then.interval)
                if relation in ("before", "meets") and first.interval.gap_to(
                    then.interval
                ) <= within:
                    pairs.append((first, then))
        return pairs

    def _match_title_of(self, video_name: str) -> str:
        record = self.indexer.indexed.get(video_name)
        return record.plan.match_title if record else ""

    def _text_scores_per_video(
        self, doc_scores: dict[int, float], video_players: dict[str, set[str]]
    ) -> dict[str, float]:
        """Aggregate document text scores to videos via the match winners.

        A video inherits the best score among the interview transcripts
        of the players appearing in it — the simple evidence-propagation
        rule a demo engine needs.
        """
        by_player: dict[str, float] = {}
        for doc_id, score in doc_scores.items():
            doc = self.dataset.pages.document(doc_id)
            oid = doc.metadata.get("oid")
            if doc.metadata.get("class") != "Interview" or oid is None:
                continue
            interview = self.dataset.instance.object(oid)
            for player in self.dataset.instance.sources_of("interviewed_in", interview):
                name = player.get("name")
                by_player[name] = max(by_player.get(name, 0.0), score)
        out: dict[str, float] = {}
        for video_name, names in video_players.items():
            scores = [by_player[n] for n in names if n in by_player]
            if scores:
                out[video_name] = max(scores)
        return out

    # ------------------------------------------------------------------ #
    # The relational path — "the database approach"
    # ------------------------------------------------------------------ #

    def build_relational(self) -> None:
        """Snapshot the meta-index and the webspace into the column store.

        The paper's engines run inside a main-memory DBMS; this
        materialises the same state as tables so ``search_relational``
        can answer combined queries with scans, hash joins and index
        lookups.  Call after indexing; re-call to refresh the snapshot.
        """
        from repro.webspace.relational import RelationalConceptEvaluator

        self._meta_catalog = self.indexer.export_to_catalog()
        self._ws_evaluator = RelationalConceptEvaluator(self.dataset.instance)

    def search_relational(
        self,
        query: LibraryQuery,
        trace: QueryTrace | None = None,
        budget: QueryBudget | None = None,
    ) -> list[SceneResult]:
        """Evaluate a combined query against the relational snapshot.

        Produces exactly the results of :meth:`search` (asserted by the
        test suite); requires :meth:`build_relational` first.  *trace*
        records the same stages as :meth:`search`; *budget* is checked
        at the same stage boundaries.
        """
        if trace is None:
            trace = QueryTrace()
        meta = getattr(self, "_meta_catalog", None)
        ws = getattr(self, "_ws_evaluator", None)
        if meta is None or ws is None:
            raise RuntimeError("call build_relational() before search_relational()")

        # Concept part: filter ws_Player, then walk the link tables
        # played -> recorded_in to the videos.
        with trace.stage("concept_filter"):
            self._enter_stage("concept_filter", budget)
            if query.has_concept_part:
                players = [
                    row
                    for row in ws.catalog.table("ws_Player").scan()
                    if self._player_row_matches(row, query.player)
                ]
                if not players:
                    return []
                video_players = self._videos_of_player_rows(ws, players)
            else:
                video_players = {
                    row["name"]: set() for row in meta.table("videos").scan()
                }

        text_by_video: dict[str, float] = {}
        if query.has_text_part:
            with trace.stage("text_topn"):
                self._enter_stage("text_topn", budget)
                scores = self.text_scores(query.text, trace=trace, budget=budget)
                text_by_video = self._text_scores_per_video(scores, video_players)

        # Content part: events (by label index) joined to shots to videos.
        with trace.stage("scene_scan"):
            self._enter_stage("scene_scan", budget)
            shots_by_id = {row["shot_id"]: row for row in meta.table("shots").scan()}
            videos_by_id = {row["video_id"]: row for row in meta.table("videos").scan()}
            results: list[SceneResult] = []
            if query.has_content_part:
                events_table = meta.table("events")
                for row_id in meta.hash_index("events", "label").lookup(query.event):
                    event = events_table.row(int(row_id))
                    shot = shots_by_id[event["shot_id"]]
                    video = videos_by_id[shot["video_id"]]
                    if video["name"] not in video_players:
                        continue
                    names = tuple(sorted(video_players[video["name"]]))
                    results.append(
                        SceneResult(
                            video_name=video["name"],
                            start=event["start"],
                            stop=event["stop"],
                            event_label=event["label"],
                            match_title=self._match_title_of(video["name"]),
                            players=names,
                            score=fuse_scores(
                                event["confidence"], text_by_video.get(video["name"])
                            ),
                        )
                    )
            elif query.has_sequence_part:
                with trace.stage("sequence_match"):
                    self._enter_stage("sequence_match", budget)
                    first_label, then_label = query.sequence
                    events_table = meta.table("events")
                    index = meta.hash_index("events", "label")

                    def rows_of(label):
                        by_video: dict[int, list[dict]] = {}
                        for row_id in index.lookup(label):
                            event = events_table.row(int(row_id))
                            video_id = shots_by_id[event["shot_id"]]["video_id"]
                            by_video.setdefault(video_id, []).append(event)
                        return by_video

                    firsts = rows_of(first_label)
                    thens = rows_of(then_label)
                    for video_id, first_events in firsts.items():
                        video = videos_by_id[video_id]
                        if video["name"] not in video_players:
                            continue
                        names = tuple(sorted(video_players[video["name"]]))
                        for first in first_events:
                            for then in thens.get(video_id, []):
                                gap = then["start"] - first["stop"]
                                if 0 <= gap <= query.within:
                                    results.append(
                                        SceneResult(
                                            video_name=video["name"],
                                            start=first["start"],
                                            stop=then["stop"],
                                            event_label=(
                                                f"{first['label']}->{then['label']}"
                                            ),
                                            match_title=self._match_title_of(
                                                video["name"]
                                            ),
                                            players=names,
                                            score=fuse_scores(
                                                min(
                                                    first["confidence"],
                                                    then["confidence"],
                                                ),
                                                text_by_video.get(video["name"]),
                                            ),
                                        )
                                    )
            else:
                for video in videos_by_id.values():
                    if video["name"] not in video_players:
                        continue
                    names = tuple(sorted(video_players[video["name"]]))
                    results.append(
                        SceneResult(
                            video_name=video["name"],
                            start=0,
                            stop=video["n_frames"],
                            event_label=None,
                            match_title=self._match_title_of(video["name"]),
                            players=names,
                            score=fuse_scores(1.0, text_by_video.get(video["name"])),
                        )
                    )
        with trace.stage("rank_merge"):
            self._enter_stage("rank_merge", budget)
            results.sort(key=lambda r: (-r.score, r.video_name, r.start))
            return results[: query.top_n]

    @staticmethod
    def _player_row_matches(row: dict, constraints: dict[str, object]) -> bool:
        for key, wanted in constraints.items():
            if key == "past_winner":
                if bool(row["titles"] > 0) != bool(wanted):
                    return False
            elif row.get(key) != wanted:
                return False
        return True

    def _videos_of_player_rows(self, ws, players: list[dict]) -> dict[str, set[str]]:
        """video name -> player names, via the ws_link_* tables."""
        catalog = ws.catalog
        played = catalog.table("ws_link_played")
        played_index = catalog.hash_index("ws_link_played", "source_oid")
        recorded = catalog.table("ws_link_recorded_in")
        recorded_index = catalog.hash_index("ws_link_recorded_in", "source_oid")
        video_names = {
            row["oid"]: row["name"] for row in catalog.table("ws_Video").scan()
        }
        out: dict[str, set[str]] = {}
        for player in players:
            for played_row_id in played_index.lookup(player["oid"]):
                match_oid = played.row(int(played_row_id))["target_oid"]
                for recorded_row_id in recorded_index.lookup(match_oid):
                    video_oid = recorded.row(int(recorded_row_id))["target_oid"]
                    name = video_names.get(video_oid)
                    if name is not None:
                        out.setdefault(name, set()).add(player["name"])
        return out

    # ------------------------------------------------------------------ #
    # Presentation: scene keyframes
    # ------------------------------------------------------------------ #

    def export_scene_keyframes(self, scenes: list[SceneResult], out_dir) -> list:
        """Write one keyframe image (PPM) per result scene.

        The demo front end shows retrieved scenes as thumbnails; this
        re-materialises each scene's video plan (deterministic) and
        writes the scene's histogram-medoid keyframe.

        Returns:
            The written file paths, aligned with *scenes*.
        """
        from pathlib import Path

        from repro.shots.keyframes import keyframe_index
        from repro.vision.io import write_ppm

        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        clips: dict[str, object] = {}
        paths = []
        for index, scene in enumerate(scenes):
            record = self.indexer.indexed.get(scene.video_name)
            if record is None:
                raise KeyError(f"video {scene.video_name!r} is not indexed here")
            if scene.video_name not in clips:
                clip, _truth = record.plan.materialise()
                clips[scene.video_name] = clip
            clip = clips[scene.video_name]
            frame = keyframe_index(clip, scene.start, min(scene.stop, len(clip)))
            path = out_dir / f"scene_{index:02d}_{scene.video_name[:40]}_f{frame}.ppm"
            write_ppm(clip[frame], path)
            paths.append(path)
        return paths

    # ------------------------------------------------------------------ #
    # Query by example (ANN over shot feature vectors)
    # ------------------------------------------------------------------ #

    def build_ann_index(self, n_cells: int = 8, seed: int = 0, samples: int = 3):
        """Embed every indexed shot and build the IVF ANN index.

        Each indexed video's plan is re-materialised (deterministic, the
        same path :meth:`export_scene_keyframes` uses) and every shot is
        embedded by :class:`~repro.ir.ann.ShotVectorizer`.  The k-means
        quantizer is seeded from *seed* through an explicit generator,
        so the build is reproducible regardless of worker count or call
        order.  Returns the built :class:`~repro.ir.ann.AnnIndex`.
        """
        from repro.ir.ann import AnnIndex, ShotVectorizer

        vectorizer = ShotVectorizer(samples=samples)
        model = self.indexer.model
        vectors: list[np.ndarray] = []
        meta: list[dict] = []
        for record in sorted(self.indexer.indexed.values(), key=lambda r: r.video_id):
            video = model.video(record.video_id)
            clip, _truth = record.plan.materialise()
            for shot in model.shots_of(record.video_id):
                stop = min(shot.stop, len(clip))
                if stop <= shot.start:
                    continue
                vectors.append(vectorizer.vectorize_clip(clip, shot.start, stop))
                meta.append(
                    {
                        "shot_id": str(shot.shot_id),
                        "video_name": video.name,
                        "start": int(shot.start),
                        "stop": int(stop),
                        "category": shot.category,
                    }
                )
        array = (
            np.stack(vectors) if vectors else np.zeros((0, vectorizer.dim), dtype=np.float64)
        )
        rng = np.random.default_rng(seed) if vectors else None
        self.ann_index = AnnIndex.build(
            array, n_cells=n_cells, rng=rng, generation=self.generation
        )
        self.ann_meta = meta
        self.ann_vectorizer = vectorizer
        return self.ann_index

    def adopt_ann(self, index, meta: list[dict], samples: int = 3) -> None:
        """Install an ANN index restored from a catalog snapshot.

        The index keeps the generation tag it was built at; if the
        catalog has moved past it (e.g. streaming commits landed since
        the snapshot), :attr:`ann_stale` turns true and query-by-example
        results are labeled accordingly.
        """
        from repro.ir.ann import ShotVectorizer

        self.ann_index = index
        self.ann_meta = list(meta)
        self.ann_vectorizer = ShotVectorizer(samples=samples)

    @property
    def ann_stale(self) -> bool:
        """The ANN index predates the current catalog generation.

        Shots committed since the build (batch or streaming) are missing
        from the candidate pool; ``search_like`` labels its results
        ``ann_stale`` and ``repro fsck`` reports the drift.  An untagged
        index (generation ``-1``, pre-tag snapshots) counts as stale
        only when the catalog has any generation at all.
        """
        if self.ann_index is None:
            return False
        return self.ann_index.generation < self.generation

    def search_like(
        self,
        clip=None,
        *,
        query: LibraryQuery | None = None,
        query_vector: np.ndarray | None = None,
        weights: tuple[float, float] = (0.5, 0.5),
        k: int = 10,
        nprobe: int | None = None,
        trace: QueryTrace | None = None,
        budget: QueryBudget | None = None,
        top_n: int = 20,
    ) -> list[SceneResult]:
        """Query by example, optionally fused with a text/concept query.

        The example *clip* (possibly noisy or truncated) is embedded by
        the same vectorizer that indexed the corpus, the ANN index
        returns its *k* nearest shots over *nprobe* cells, and the shot
        distances become similarities ``1 / (1 + d)``.  With a *query*,
        the ANN evidence is fused with :meth:`search`'s ranking by
        weighted late fusion (Yu et al.):

        ``score = w_text * text_score + w_ann * best_shot_similarity``

        per video, where a video found only by ANN contributes its best
        hit shot as the scene.  Weights ``(1.0, 0.0)`` return the text ranking
        *exactly* (same objects, same scores); ``(0.0, 1.0)`` — or no
        *query* — is pure ANN ranking.  Stages ``ann_query``,
        ``ann_search`` and ``rank_fuse`` are traced and budget-checked
        like every other stage, so ANN respects deadlines and shows up
        in per-stage stats.
        """
        w_text, w_ann = float(weights[0]), float(weights[1])
        if w_text < 0.0 or w_ann < 0.0 or (w_text == 0.0 and w_ann == 0.0):
            raise ValueError(f"fusion weights must be >= 0 and not both zero: {weights}")
        if trace is None:
            trace = QueryTrace()
        if w_ann == 0.0:
            if query is None:
                raise ValueError("weights give all mass to text but no query was passed")
            return self.search(query, trace=trace, budget=budget)
        if self.ann_index is None or self.ann_vectorizer is None:
            raise RuntimeError("call build_ann_index() or adopt_ann() before search_like()")
        if clip is None and query_vector is None:
            raise ValueError("pass an example clip or a precomputed query_vector")

        results: list[SceneResult] = []
        try:
            if query_vector is None:
                with trace.stage("ann_query"):
                    self._enter_stage("ann_query", budget)
                    query_vector = self.ann_vectorizer.vectorize_clip(clip)

            with trace.stage("ann_search"):
                self._enter_stage("ann_search", budget)
                ids, distances = self.ann_index.search(
                    query_vector, k=k, nprobe=nprobe, budget=budget
                )

            # Best similarity per video, plus each hit shot's provenance.
            similarities = 1.0 / (1.0 + distances)
            video_best: dict[str, float] = {}
            hits: list[tuple[dict, float]] = []
            for ann_id, similarity in zip(ids.tolist(), similarities.tolist()):
                row = self.ann_meta[ann_id]
                hits.append((row, similarity))
                name = row["video_name"]
                if similarity > video_best.get(name, -1.0):
                    video_best[name] = similarity

            text_results: list[SceneResult] = []
            if query is not None and w_text > 0.0:
                text_results = self.search(query, trace=trace, budget=budget)

            with trace.stage("rank_fuse"):
                self._enter_stage("rank_fuse", budget)
                stale = self.ann_stale
                text_videos = {r.video_name for r in text_results}
                for r in text_results:
                    fused = w_text * r.score + w_ann * video_best.get(r.video_name, 0.0)
                    results.append(replace(r, score=fused, ann_stale=stale))
                seen: set[str] = set()
                for row, similarity in hits:
                    name = row["video_name"]
                    if name in text_videos or name in seen:
                        continue
                    seen.add(name)
                    results.append(
                        SceneResult(
                            video_name=name,
                            start=int(row["start"]),
                            stop=int(row["stop"]),
                            event_label=None,
                            match_title=self._match_title_of(name),
                            players=(),
                            score=w_ann * similarity,
                            ann_stale=stale,
                        )
                    )
                return _ranked(results, top_n)
        except DeadlineExceeded as exc:
            if exc.partial is None:
                exc.partial = _ranked(results, top_n)
            raise

    # ------------------------------------------------------------------ #
    # The keyword baseline
    # ------------------------------------------------------------------ #

    def keyword_search(self, text: str, n: int = 20) -> list[RankedHit]:
        """Pure keyword search over the rendered pages (crawler view)."""
        terms = self.dataset.pages.query_terms(text)
        return rank_full_scan(self.text_index, terms, n)
