"""Scoring detected boundaries and shot categories against ground truth.

Standard shot-boundary evaluation: a detected boundary matches a true
boundary when it falls within a small frame tolerance; each truth matches
at most one detection.  Classification is scored as a confusion matrix
over frames (each frame votes with its shot's category), which is robust
to small boundary placement differences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.shots.boundary import Boundary
from repro.shots.segmenter import DetectedShot
from repro.video.ground_truth import GroundTruth

__all__ = ["MatchResult", "boundary_scores", "confusion_matrix", "category_accuracy"]


@dataclass(frozen=True)
class MatchResult:
    """Precision/recall of boundary detection.

    Attributes:
        true_positives: detections matched to a distinct truth.
        false_positives: unmatched detections.
        false_negatives: unmatched truths.
    """

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0


def boundary_scores(
    detected: list[Boundary],
    truth_frames: list[int],
    tolerance: int = 2,
) -> MatchResult:
    """Match detected boundary frames to true boundary frames.

    Args:
        detected: detector output (any kind).
        truth_frames: true boundary frame indices (cut positions, or
            gradual span starts when scoring gradual detection).
        tolerance: maximum |detected - truth| distance for a match.

    Greedy matching in order of closeness; each truth and each detection
    participates in at most one match.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    remaining = sorted(truth_frames)
    matched_truth: set[int] = set()
    tp = 0
    for boundary in sorted(detected, key=lambda b: b.frame):
        best = None
        best_dist = tolerance + 1
        for idx, frame in enumerate(remaining):
            if idx in matched_truth:
                continue
            dist = abs(boundary.frame - frame)
            if dist < best_dist:
                best, best_dist = idx, dist
        if best is not None:
            matched_truth.add(best)
            tp += 1
    fp = len(detected) - tp
    fn = len(remaining) - tp
    return MatchResult(true_positives=tp, false_positives=fp, false_negatives=fn)


def transition_scores(
    detected: list[Boundary],
    truth: GroundTruth,
    tolerance: int = 2,
) -> MatchResult:
    """Score detections against *all* transitions (cuts and gradual).

    A detection matches a cut within *tolerance* frames, or a gradual
    transition when its frame falls inside the transition's span extended
    by *tolerance* on both sides.  This is the fair score for detectors
    that cannot tell the two kinds apart.
    """
    spans = []
    for t in truth.transitions:
        start, stop = t.span
        spans.append((start - tolerance, stop + tolerance))
    matched: set[int] = set()
    tp = 0
    for boundary in sorted(detected, key=lambda b: b.frame):
        for idx, (lo, hi) in enumerate(spans):
            if idx in matched:
                continue
            if lo <= boundary.frame < hi:
                matched.add(idx)
                tp += 1
                break
    fp = len(detected) - tp
    fn = len(spans) - tp
    return MatchResult(true_positives=tp, false_positives=fp, false_negatives=fn)


def confusion_matrix(
    detected: list[DetectedShot],
    truth: GroundTruth,
    categories: tuple[str, ...],
) -> np.ndarray:
    """Frame-level confusion matrix ``[true, predicted]``.

    Frames inside transitions (no true category) are skipped; frames not
    covered by any detected shot are skipped as well, so the matrix
    measures pure classification quality.
    """
    index = {name: i for i, name in enumerate(categories)}
    matrix = np.zeros((len(categories), len(categories)), dtype=np.int64)
    for shot in detected:
        if shot.category not in index:
            raise ValueError(f"unknown predicted category {shot.category!r}")
        for frame in range(shot.start, shot.stop):
            true_cat = truth.category_at(frame)
            if true_cat is None:
                continue
            matrix[index[true_cat], index[shot.category]] += 1
    return matrix


def category_accuracy(matrix: np.ndarray) -> float:
    """Overall frame accuracy from a confusion matrix."""
    total = matrix.sum()
    return float(np.trace(matrix) / total) if total else 1.0
