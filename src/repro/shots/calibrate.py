"""Court-colour calibration.

The rule classifier recognises court shots "based on the dominant
color" — but every tournament has its own surface (Melbourne's blue-
green Rebound Ace, Paris clay, London grass).  The paper's system
estimates the field-colour statistics from the footage itself; this
module does the same at library scale: given a sample of a broadcast,
find the recurring dominant colour that behaves like a court surface
and hand back a calibrated :class:`ShotFeatureExtractor`.

The heuristic: sample frames across the clip, take each frame's
dominant colour, require it to (a) dominate the frame and (b) be
bordered by other content at the top of the frame (a broadcast court
always is; interview backdrops and graphics panels are not), cluster
the surviving colours by proximity, and return the heaviest cluster.
"""

from __future__ import annotations

import numpy as np

from repro.shots.classify import ShotFeatureExtractor
from repro.video.frames import VideoClip
from repro.vision.dominant import color_coverage, color_distance, dominant_color

__all__ = ["estimate_court_color", "calibrated_extractor", "CalibrationError"]


class CalibrationError(RuntimeError):
    """Raised when no court-like colour can be found in the sample."""


def estimate_court_color(
    clip: VideoClip,
    n_samples: int = 24,
    min_coverage: float = 0.25,
    cluster_tolerance: float = 45.0,
) -> np.ndarray:
    """Estimate the tournament's court surface colour from a broadcast.

    Args:
        clip: any broadcast of the tournament (the longer the better).
        n_samples: frames sampled uniformly across the clip.
        min_coverage: minimum fraction of a frame within
            ``cluster_tolerance`` of the dominant colour for the frame
            to vote (court shots easily exceed this; crowd shots do not).
        cluster_tolerance: colours within this Euclidean RGB distance
            vote for the same cluster.

    Returns:
        The mean RGB of the winning cluster.

    Raises:
        CalibrationError: when no frame passes the coverage gate.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    indices = np.linspace(0, len(clip) - 1, num=min(n_samples, len(clip)), dtype=int)
    votes: list[tuple[np.ndarray, float]] = []
    for index in indices:
        frame = clip[int(index)]
        # The raw dominant-cell count underestimates coverage on noisy
        # frames (the surface splits across quantisation cells); measure
        # coverage as the fraction of pixels near the dominant colour.
        seed, _cell_coverage = dominant_color(frame, bins=8)
        coverage = color_coverage(frame, seed, tolerance=cluster_tolerance)
        if coverage < min_coverage:
            continue
        # Interview backdrops and studio graphics also have recurring
        # dominant colours — but they run to the very top of the frame,
        # whereas a broadcast court is always bordered by the stadium
        # surround.  (A skin gate does NOT work here: clay courts are
        # skin-coloured under the classic rules.)
        top_band = frame[: max(1, frame.shape[0] // 16)]
        if color_coverage(top_band, seed, tolerance=cluster_tolerance) > 0.4:
            continue
        votes.append((seed, coverage))
    if not votes:
        raise CalibrationError(
            "no frame with a dominant colour — is this broadcast footage?"
        )

    # Greedy clustering: each vote joins the first cluster within tolerance.
    clusters: list[list[tuple[np.ndarray, float]]] = []
    for color, coverage in votes:
        for cluster in clusters:
            if color_distance(color, cluster[0][0]) <= cluster_tolerance:
                cluster.append((color, coverage))
                break
        else:
            clusters.append([(color, coverage)])
    # Weight clusters by accumulated coverage: the court both recurs
    # and dominates its frames, which separates it from interview
    # backdrops that merely recur.
    winner = max(clusters, key=lambda c: sum(cov for _color, cov in c))
    colors = np.stack([color for color, _cov in winner])
    return colors.mean(axis=0)


def calibrated_extractor(
    clip: VideoClip,
    court_tolerance: float = 40.0,
    samples: int = 3,
    **calibration_kwargs,
) -> ShotFeatureExtractor:
    """A :class:`ShotFeatureExtractor` calibrated to *clip*'s tournament.

    Convenience wrapper: estimate the court colour, then build the
    extractor the segment detector needs.
    """
    color = estimate_court_color(clip, **calibration_kwargs)
    return ShotFeatureExtractor(
        court_color=color, court_tolerance=court_tolerance, samples=samples
    )
