"""The segment detector: boundary detection + shot classification.

This is the externally-implemented detector the tennis FDE executes
first: it "segments the video into different shots" and "encapsulates
shot classification".  The output — classified shots — drives which
downstream detectors (player tracking, events) run on which frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.shots.boundary import ThresholdCutDetector
from repro.shots.classify import (
    RuleBasedShotClassifier,
    ShotFeatureExtractor,
    ShotFeatures,
)
from repro.video.frames import VideoClip

__all__ = ["DetectedShot", "SegmentDetector"]


@dataclass(frozen=True)
class DetectedShot:
    """A classified shot produced by the segment detector.

    Attributes:
        start: first frame (inclusive).
        stop: one past the last frame.
        category: predicted category (tennis/closeup/audience/other).
        features: the features the classification was based on.
    """

    start: int
    stop: int
    category: str
    features: ShotFeatures

    @property
    def length(self) -> int:
        return self.stop - self.start


class SegmentDetector:
    """Segment a clip into classified shots.

    Args:
        boundary_detector: any object with ``detect(clip) -> list[Boundary]``;
            defaults to the paper's fixed-threshold histogram detector.
        extractor: shot feature extractor (court colour etc.).
        classifier: any object with ``classify(ShotFeatures) -> str``.
        min_shot_length: shots shorter than this are merged forward —
            transition residue and detector chatter, not real shots.
    """

    def __init__(
        self,
        boundary_detector=None,
        extractor: ShotFeatureExtractor | None = None,
        classifier=None,
        min_shot_length: int = 5,
    ):
        if min_shot_length < 1:
            raise ValueError(f"min_shot_length must be >= 1, got {min_shot_length}")
        self.boundary_detector = boundary_detector or ThresholdCutDetector()
        self.extractor = extractor or ShotFeatureExtractor()
        self.classifier = classifier or RuleBasedShotClassifier()
        self.min_shot_length = min_shot_length

    def shot_ranges(self, clip: VideoClip) -> list[tuple[int, int]]:
        """Split the clip into ``[start, stop)`` shot ranges.

        Gradual-boundary spans are excluded from both adjacent shots;
        ranges shorter than ``min_shot_length`` are dropped (their frames
        are transition residue).
        """
        boundaries = self.boundary_detector.detect(clip)
        ranges: list[tuple[int, int]] = []
        cursor = 0
        for boundary in sorted(boundaries, key=lambda b: b.frame):
            span_start, span_stop = boundary.span
            if boundary.kind == "cut":
                span_stop = span_start
            if span_start > cursor:
                ranges.append((cursor, span_start))
            cursor = max(cursor, span_stop)
        if cursor < len(clip):
            ranges.append((cursor, len(clip)))
        return [(a, b) for a, b in ranges if b - a >= self.min_shot_length]

    def detect(self, clip: VideoClip) -> list[DetectedShot]:
        """Full segment-detector run: boundaries, then classification."""
        shots = []
        for start, stop in self.shot_ranges(clip):
            features = self.extractor.extract_from_clip(clip, start, stop)
            category = self.classifier.classify(features)
            shots.append(
                DetectedShot(start=start, stop=stop, category=category, features=features)
            )
        return shots
