"""Shot-boundary detection from colour-histogram differences.

Three detectors, in increasing sophistication:

- :class:`ThresholdCutDetector` — the paper's method: declare a cut where
  the histogram difference between neighbouring frames exceeds a fixed
  threshold.
- :class:`AdaptiveCutDetector` — threshold set from the clip's own
  difference statistics (mean + k·std), robust across noise levels.
- :class:`TwinComparisonDetector` — Zhang et al.'s twin-comparison
  extension that also recovers *gradual* transitions (fades, dissolves)
  by accumulating consecutive moderate differences.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.video.frames import VideoClip
from repro.vision.histogram import (
    color_histogram,
    color_histograms,
    histogram_difference,
    hsv_histogram,
    hsv_histograms,
)

__all__ = [
    "Boundary",
    "frame_distances",
    "frame_distances_reference",
    "ThresholdCutDetector",
    "AdaptiveCutDetector",
    "TwinComparisonDetector",
]


@dataclass(frozen=True)
class Boundary:
    """A detected shot boundary.

    Attributes:
        frame: for a cut, the index of the first frame of the new shot;
            for a gradual transition, the first frame of the span.
        kind: ``"cut"`` or ``"gradual"``.
        length: transition length in frames (0 for cuts).
        score: the histogram-difference evidence behind the detection.
    """

    frame: int
    kind: str = "cut"
    length: int = 0
    score: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("cut", "gradual"):
            raise ValueError(f"unknown boundary kind {self.kind!r}")
        if self.frame < 1:
            raise ValueError("a boundary cannot precede frame 1")

    @property
    def span(self) -> tuple[int, int]:
        """Frame range ``[start, stop)`` covered by the transition."""
        return self.frame, self.frame + max(self.length, 1)


def frame_distances(
    clip: VideoClip | Sequence[np.ndarray], bins: int = 8, color_space: str = "rgb"
) -> np.ndarray:
    """Histogram difference between each frame and its predecessor.

    ``distances[i]`` is the difference between frames ``i-1`` and ``i``;
    entry 0 is 0 by convention (no predecessor).

    Args:
        clip: the video (or any sequence of RGB frames).
        bins: per-channel histogram quantisation.
        color_space: ``"rgb"`` (the paper's) or ``"hsv"`` (E2a ablation).

    Returns:
        float64 array of length ``len(clip)``.
    """
    if color_space not in ("rgb", "hsv"):
        raise ValueError(f"color_space must be rgb/hsv, got {color_space!r}")
    histograms = color_histograms if color_space == "rgb" else hsv_histograms
    if len(clip) == 0:
        return np.zeros(0)
    hists = histograms(clip, bins=bins)
    distances = np.zeros(hists.shape[0])
    if hists.shape[0] > 1:
        distances[1:] = np.abs(np.diff(hists, axis=0)).sum(axis=1) / 2.0
    return distances


def frame_distances_reference(
    clip: VideoClip | Sequence[np.ndarray], bins: int = 8, color_space: str = "rgb"
) -> np.ndarray:
    """Per-frame loop form of :func:`frame_distances` (the seed's code).

    Kept as the semantic anchor of the batched pass — the differential
    suite pins the two equal and the E9 vision gate measures the batched
    kernels' speedup against this loop.
    """
    if color_space not in ("rgb", "hsv"):
        raise ValueError(f"color_space must be rgb/hsv, got {color_space!r}")
    histogram = color_histogram if color_space == "rgb" else hsv_histogram
    frames = list(clip)
    distances = np.zeros(len(frames))
    if not frames:
        return distances
    prev = histogram(frames[0], bins=bins)
    for i in range(1, len(frames)):
        hist = histogram(frames[i], bins=bins)
        distances[i] = histogram_difference(prev, hist)
        prev = hist
    return distances


class ThresholdCutDetector:
    """Fixed-threshold cut detection — the paper's boundary method.

    A cut is declared at frame ``i`` when the histogram difference between
    frames ``i-1`` and ``i`` exceeds *threshold*.  Consecutive
    over-threshold frames (as produced by very fast motion) collapse into
    a single boundary at the first frame of the run.

    Args:
        threshold: difference level in ``[0, 1]`` that signals a cut.
        bins: histogram quantisation per channel.
    """

    def __init__(self, threshold: float = 0.35, bins: int = 8, color_space: str = "rgb"):
        if not 0 < threshold <= 1:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.bins = bins
        self.color_space = color_space

    def detect(self, clip: VideoClip | Sequence[np.ndarray]) -> list[Boundary]:
        """Detect cut boundaries in *clip*."""
        distances = frame_distances(clip, bins=self.bins, color_space=self.color_space)
        return self._from_distances(distances)

    def _from_distances(self, distances: np.ndarray) -> list[Boundary]:
        over = distances > self.threshold
        boundaries: list[Boundary] = []
        i = 1
        n = len(distances)
        while i < n:
            if over[i]:
                run_start = i
                while i < n and over[i]:
                    i += 1
                peak = float(distances[run_start:i].max())
                boundaries.append(Boundary(frame=run_start, kind="cut", score=peak))
            else:
                i += 1
        return boundaries


class AdaptiveCutDetector(ThresholdCutDetector):
    """Cut detection with a data-driven threshold.

    The threshold is ``median + k * MAD_std`` of the clip's difference
    series (median/MAD rather than mean/std so the cuts themselves do not
    inflate the threshold), floored at *min_threshold*.

    Args:
        k: number of robust standard deviations above the median.
        min_threshold: lower bound protecting against near-static clips
            where any flicker would otherwise fire.
        bins: histogram quantisation per channel.
    """

    def __init__(
        self,
        k: float = 6.0,
        min_threshold: float = 0.12,
        bins: int = 8,
        color_space: str = "rgb",
    ):
        super().__init__(threshold=min_threshold, bins=bins, color_space=color_space)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.min_threshold = min_threshold

    def detect(self, clip: VideoClip | Sequence[np.ndarray]) -> list[Boundary]:
        distances = frame_distances(clip, bins=self.bins, color_space=self.color_space)
        if len(distances) < 3:
            return []
        body = distances[1:]
        median = float(np.median(body))
        mad = float(np.median(np.abs(body - median)))
        robust_std = 1.4826 * mad
        self.threshold = max(self.min_threshold, median + self.k * robust_std)
        return self._from_distances(distances)


class TwinComparisonDetector:
    """Twin-comparison detection of cuts *and* gradual transitions.

    Differences above *high* are cuts.  A difference above *low* opens a
    candidate gradual transition; consecutive frames with differences
    above *low* accumulate, and if the accumulated difference exceeds
    *high* the span is reported as a gradual boundary.

    A post-processing pass merges events whose spans lie within
    *merge_gap* frames of each other: a fade produces interleaved spikes
    and accumulations, and the merged span — reported as gradual when it
    covers 3+ frames — is the actual transition.  True cuts are isolated
    one/two-frame spikes and survive merging unchanged.

    Args:
        high: cut threshold; single spikes above it are cuts.
        low: accumulation threshold for gradual candidates; must be < high.
        merge_gap: maximum quiet gap (frames) bridged when merging events.
        bins: histogram quantisation per channel.
    """

    def __init__(
        self, high: float = 0.8, low: float = 0.08, merge_gap: int = 3, bins: int = 8
    ):
        if not 0 < low < high <= 1:
            raise ValueError(f"need 0 < low < high <= 1, got low={low}, high={high}")
        if merge_gap < 0:
            raise ValueError(f"merge_gap must be >= 0, got {merge_gap}")
        self.high = high
        self.low = low
        self.merge_gap = merge_gap
        self.bins = bins

    def detect(self, clip: VideoClip | Sequence[np.ndarray]) -> list[Boundary]:
        """Detect both cut and gradual boundaries."""
        distances = frame_distances(clip, bins=self.bins)
        return self._merge(self._raw_events(distances))

    def _raw_events(self, distances: np.ndarray) -> list[Boundary]:
        """First pass: spike runs as cuts, accumulation runs as gradual."""
        events: list[Boundary] = []
        n = len(distances)
        i = 1
        while i < n:
            if distances[i] > self.high:
                run_start = i
                while i < n and distances[i] > self.high:
                    i += 1
                peak = float(distances[run_start:i].max())
                events.append(
                    Boundary(frame=run_start, kind="cut", length=0, score=peak)
                )
                continue
            if distances[i] > self.low:
                span_start = i
                accumulated = 0.0
                while i < n and self.low < distances[i] <= self.high:
                    accumulated += float(distances[i])
                    i += 1
                if accumulated > self.high:
                    events.append(
                        Boundary(
                            frame=span_start,
                            kind="gradual",
                            length=i - span_start,
                            score=accumulated,
                        )
                    )
                continue
            i += 1
        return events

    def _merge(self, events: list[Boundary]) -> list[Boundary]:
        """Second pass: merge nearby events; long merged spans are gradual."""
        merged: list[Boundary] = []
        for event in events:
            if merged and event.span[0] - merged[-1].span[1] <= self.merge_gap:
                prev = merged[-1]
                start = prev.span[0]
                stop = event.span[1]
                merged[-1] = Boundary(
                    frame=start,
                    kind="gradual" if stop - start >= 3 else "cut",
                    length=(stop - start) if stop - start >= 3 else 0,
                    score=max(prev.score, event.score),
                )
            else:
                merged.append(event)
        return merged
