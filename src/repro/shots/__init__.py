"""Shot segmentation and classification — the paper's *segment detector*.

The paper: "this detector ... segments the video into different shots.
The shot boundaries are detected using differences in color histograms of
neighboring frames.  The same algorithm encapsulates shot classification.
It classifies shots in four different categories: tennis, close-up,
audience, and other."

- :mod:`repro.shots.boundary` — histogram-difference cut detection
  (fixed and adaptive thresholds) plus the twin-comparison detector for
  gradual transitions.
- :mod:`repro.shots.classify` — the four-way shot classifier using
  dominant colour, skin ratio, entropy, mean and variance (rule-based and
  Gaussian naive-Bayes variants).
- :mod:`repro.shots.segmenter` — the facade combining both, yielding
  classified shots for the FDE.
- :mod:`repro.shots.evaluate` — precision/recall scoring against ground
  truth, used by the benchmarks.
"""

from repro.shots.boundary import (
    Boundary,
    frame_distances,
    frame_distances_reference,
    ThresholdCutDetector,
    AdaptiveCutDetector,
    TwinComparisonDetector,
)
from repro.shots.classify import (
    ShotFeatureExtractor,
    ShotFeatures,
    RuleBasedShotClassifier,
    NaiveBayesShotClassifier,
)
from repro.shots.segmenter import DetectedShot, SegmentDetector
from repro.shots.evaluate import boundary_scores, confusion_matrix, MatchResult
from repro.shots.keyframes import keyframe_index, keyframes_for_shots
from repro.shots.calibrate import estimate_court_color, calibrated_extractor

__all__ = [
    "Boundary",
    "frame_distances",
    "frame_distances_reference",
    "ThresholdCutDetector",
    "AdaptiveCutDetector",
    "TwinComparisonDetector",
    "ShotFeatureExtractor",
    "ShotFeatures",
    "RuleBasedShotClassifier",
    "NaiveBayesShotClassifier",
    "DetectedShot",
    "SegmentDetector",
    "boundary_scores",
    "confusion_matrix",
    "MatchResult",
    "keyframe_index",
    "keyframes_for_shots",
    "estimate_court_color",
    "calibrated_extractor",
]
