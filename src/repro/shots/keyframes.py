"""Keyframe selection.

A retrieved scene is presented by a *keyframe* — the frame that best
represents its shot.  The classic histogram criterion: the keyframe is
the frame whose colour histogram is closest to the shot's mean
histogram (the medoid under L1), which avoids both transition residue
at the edges and unrepresentative action peaks.
"""

from __future__ import annotations

import numpy as np

from repro.video.frames import VideoClip
from repro.vision.histogram import color_histogram, histogram_difference

__all__ = ["keyframe_index", "keyframes_for_shots"]


def keyframe_index(
    clip: VideoClip, start: int, stop: int, bins: int = 8, sample_step: int = 1
) -> int:
    """Index of the most representative frame of ``clip[start:stop)``.

    Args:
        clip: the video.
        start: first frame of the shot (inclusive).
        stop: one past the last frame.
        bins: histogram quantisation per channel.
        sample_step: consider every ``sample_step``-th frame (cost knob
            for long shots; 1 = exact medoid).

    Returns:
        An absolute frame index in ``[start, stop)``.
    """
    if not 0 <= start < stop <= len(clip):
        raise ValueError(f"invalid shot range [{start}, {stop})")
    if sample_step < 1:
        raise ValueError(f"sample_step must be >= 1, got {sample_step}")
    indices = list(range(start, stop, sample_step))
    histograms = [color_histogram(clip[i], bins=bins) for i in indices]
    mean = np.mean(np.stack(histograms), axis=0)
    distances = [histogram_difference(h, mean) for h in histograms]
    return indices[int(np.argmin(distances))]


def keyframes_for_shots(
    clip: VideoClip,
    shots: list[tuple[int, int]],
    bins: int = 8,
    sample_step: int = 2,
) -> list[int]:
    """Keyframe index per ``(start, stop)`` shot range."""
    return [
        keyframe_index(clip, start, stop, bins=bins, sample_step=sample_step)
        for start, stop in shots
    ]
