"""Shot classification into tennis / close-up / audience / other.

The paper: "The court shots are recognized based on the dominant color.
A shot is classified as close-up, if it contains a significant amount of
skin colored pixels.  For the classification, we also use entropy
characteristics, mean and variance."

Two classifiers over the same features:

- :class:`RuleBasedShotClassifier` — the paper's decision rules, with
  thresholds exposed for the ablation benchmark (E3a).
- :class:`NaiveBayesShotClassifier` — a Gaussian naive-Bayes model
  trained on labelled shots, the natural statistical upgrade.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.frames import VideoClip
from repro.video.shots import ShotCategory
from repro.vision.dominant import color_coverage, color_coverages, dominant_color, dominant_colors
from repro.vision.skin import DEFAULT_SKIN_MODEL, SkinColorModel
from repro.vision.stats import frame_statistics, frame_statistics_batch

__all__ = [
    "ShotFeatures",
    "ShotFeatureExtractor",
    "RuleBasedShotClassifier",
    "NaiveBayesShotClassifier",
]

#: Default Australian Open court surface colour (see repro.video.court).
DEFAULT_COURT_COLOR = np.array([40.0, 130.0, 80.0])


@dataclass(frozen=True)
class ShotFeatures:
    """Classification features of one shot.

    All values are averaged over the sampled frames of the shot.

    Attributes:
        court_coverage: fraction of pixels near the reference court colour.
        skin_ratio: fraction of skin-coloured pixels.
        entropy: greyscale intensity entropy (bits).
        mean: mean greyscale intensity.
        variance: greyscale intensity variance.
        dominant: the dominant RGB colour of the shot.
        dominant_coverage: fraction of pixels in the dominant colour cell.
    """

    court_coverage: float
    skin_ratio: float
    entropy: float
    mean: float
    variance: float
    dominant: tuple[float, float, float]
    dominant_coverage: float

    def as_vector(self) -> np.ndarray:
        """Numeric vector for statistical classifiers."""
        return np.array(
            [
                self.court_coverage,
                self.skin_ratio,
                self.entropy,
                self.mean,
                self.variance,
            ],
            dtype=np.float64,
        )

    #: Names aligned with :meth:`as_vector`, used by the ablation bench.
    VECTOR_NAMES = ("court_coverage", "skin_ratio", "entropy", "mean", "variance")


class ShotFeatureExtractor:
    """Compute :class:`ShotFeatures` from the frames of a shot.

    Features are averaged over up to *samples* frames spread uniformly
    through the shot, which smooths over player motion and noise.

    Args:
        court_color: reference court surface RGB; pass the colour estimated
            for the tournament being indexed.
        court_tolerance: Euclidean RGB distance counted as "court".
        skin_model: skin classifier shared with the close-up rule.
        samples: number of frames sampled per shot.
        batched: run the vision kernels once over the stacked sampled
            frames (the default) instead of per frame; the two paths
            produce identical features.
    """

    def __init__(
        self,
        court_color: np.ndarray | None = None,
        court_tolerance: float = 40.0,
        skin_model: SkinColorModel | None = None,
        samples: int = 3,
        batched: bool = True,
    ):
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        self.court_color = (
            np.asarray(court_color, dtype=np.float64)
            if court_color is not None
            else DEFAULT_COURT_COLOR.copy()
        )
        self.court_tolerance = court_tolerance
        self.skin_model = skin_model or DEFAULT_SKIN_MODEL
        self.samples = samples
        self.batched = batched

    def sample_indices(self, n_frames: int) -> list[int]:
        """Indices of the frames sampled from a shot of *n_frames* frames."""
        if n_frames < 1:
            raise ValueError("shot must contain at least one frame")
        count = min(self.samples, n_frames)
        # Midpoints of `count` equal segments: avoids transition-adjacent frames.
        return [int((2 * k + 1) * n_frames / (2 * count)) for k in range(count)]

    def extract(self, frames: list[np.ndarray]) -> ShotFeatures:
        """Features of a shot given as its list of frames.

        With :attr:`batched` set (the default) the sampled frames are
        stacked and each vision kernel makes one pass over the stack;
        the per-frame values, and therefore the averaged features, are
        identical to :meth:`extract_reference`.
        """
        if not self.batched:
            return self.extract_reference(frames)
        picks = [frames[i] for i in self.sample_indices(len(frames))]
        stack = np.stack(picks)
        court = np.mean(list(color_coverages(stack, self.court_color, self.court_tolerance)))
        skin = np.mean(list(self.skin_model.ratios(stack)))
        stats = frame_statistics_batch(stack)
        dom_colors, dom_covers = zip(*dominant_colors(stack))
        dominant = np.mean(np.stack(dom_colors), axis=0)
        return ShotFeatures(
            court_coverage=float(court),
            skin_ratio=float(skin),
            entropy=float(np.mean([s["entropy"] for s in stats])),
            mean=float(np.mean([s["mean"] for s in stats])),
            variance=float(np.mean([s["variance"] for s in stats])),
            dominant=(float(dominant[0]), float(dominant[1]), float(dominant[2])),
            dominant_coverage=float(np.mean(dom_covers)),
        )

    def extract_reference(self, frames: list[np.ndarray]) -> ShotFeatures:
        """Per-frame-loop form of :meth:`extract` (the seed's code path)."""
        picks = [frames[i] for i in self.sample_indices(len(frames))]
        court = np.mean([color_coverage(f, self.court_color, self.court_tolerance) for f in picks])
        skin = np.mean([self.skin_model.ratio(f) for f in picks])
        stats = [frame_statistics(f) for f in picks]
        dom_colors, dom_covers = zip(*(dominant_color(f) for f in picks))
        dominant = np.mean(np.stack(dom_colors), axis=0)
        return ShotFeatures(
            court_coverage=float(court),
            skin_ratio=float(skin),
            entropy=float(np.mean([s["entropy"] for s in stats])),
            mean=float(np.mean([s["mean"] for s in stats])),
            variance=float(np.mean([s["variance"] for s in stats])),
            dominant=(float(dominant[0]), float(dominant[1]), float(dominant[2])),
            dominant_coverage=float(np.mean(dom_covers)),
        )

    def extract_from_clip(self, clip: VideoClip, start: int, stop: int) -> ShotFeatures:
        """Features of the shot occupying ``clip[start:stop]``."""
        if not 0 <= start < stop <= len(clip):
            raise ValueError(f"invalid shot range [{start}, {stop})")
        return self.extract([clip[i] for i in range(start, stop)])


@dataclass
class RuleBasedShotClassifier:
    """The paper's decision rules, in order of precedence.

    1. court colour dominates  -> ``tennis``
    2. significant skin pixels -> ``closeup``
    3. high intensity entropy  -> ``audience``
    4. otherwise               -> ``other``

    Thresholds are fields so the ablation bench can sweep or disable them
    (setting a threshold to ``None`` removes that rule).
    """

    court_coverage_min: float | None = 0.30
    skin_ratio_min: float | None = 0.12
    entropy_min: float | None = 4.2

    def classify(self, features: ShotFeatures) -> str:
        """Map shot features to one of the four categories."""
        if (
            self.court_coverage_min is not None
            and features.court_coverage >= self.court_coverage_min
        ):
            return ShotCategory.TENNIS
        if self.skin_ratio_min is not None and features.skin_ratio >= self.skin_ratio_min:
            return ShotCategory.CLOSEUP
        if self.entropy_min is not None and features.entropy >= self.entropy_min:
            return ShotCategory.AUDIENCE
        return ShotCategory.OTHER


class NaiveBayesShotClassifier:
    """Gaussian naive Bayes over the shot feature vector.

    Fit on labelled :class:`ShotFeatures`; each class is modelled as an
    axis-aligned Gaussian in feature space with a variance floor for
    numerical stability.
    """

    _VAR_FLOOR = 1e-6

    def __init__(self) -> None:
        self.classes_: list[str] = []
        self._means: np.ndarray | None = None
        self._vars: np.ndarray | None = None
        self._log_priors: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._means is not None

    def fit(
        self, features: list[ShotFeatures], labels: list[str]
    ) -> "NaiveBayesShotClassifier":
        """Estimate per-class Gaussians from labelled shots."""
        if len(features) != len(labels):
            raise ValueError("features and labels must have equal length")
        if not features:
            raise ValueError("cannot fit on an empty training set")
        x = np.stack([f.as_vector() for f in features])
        y = np.asarray(labels)
        self.classes_ = sorted(set(labels))
        means, variances, priors = [], [], []
        for cls in self.classes_:
            member = x[y == cls]
            means.append(member.mean(axis=0))
            variances.append(member.var(axis=0) + self._VAR_FLOOR)
            priors.append(len(member) / len(x))
        self._means = np.stack(means)
        self._vars = np.stack(variances)
        self._log_priors = np.log(np.asarray(priors))
        return self

    def log_posteriors(self, features: ShotFeatures) -> np.ndarray:
        """Unnormalised log posterior per class (aligned with ``classes_``)."""
        if not self.is_fitted:
            raise RuntimeError("classifier is not fitted; call fit() first")
        x = features.as_vector()
        log_lik = -0.5 * (
            np.log(2.0 * np.pi * self._vars) + (x - self._means) ** 2 / self._vars
        ).sum(axis=1)
        return self._log_priors + log_lik

    def classify(self, features: ShotFeatures) -> str:
        """Most probable category for *features*."""
        return self.classes_[int(np.argmax(self.log_posteriors(features)))]
