"""Binary morphology: erosion, dilation, opening, closing.

The player segmentation mask is noisy (court texture, line markings); the
tracker cleans it with an opening before extracting regions, mirroring the
post-processing any 2002-era segmentation pipeline applied.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["erode", "dilate", "opening", "closing", "square_element"]


def square_element(size: int) -> np.ndarray:
    """A ``size`` x ``size`` all-ones structuring element."""
    if size < 1:
        raise ValueError(f"structuring element size must be >= 1, got {size}")
    return np.ones((size, size), dtype=bool)


def _check_mask(mask: np.ndarray) -> np.ndarray:
    arr = np.asarray(mask, dtype=bool)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D mask, got shape {arr.shape}")
    return arr


def erode(mask: np.ndarray, size: int = 3) -> np.ndarray:
    """Binary erosion with a square element of side *size*."""
    return ndimage.binary_erosion(_check_mask(mask), structure=square_element(size))


def dilate(mask: np.ndarray, size: int = 3) -> np.ndarray:
    """Binary dilation with a square element of side *size*."""
    return ndimage.binary_dilation(_check_mask(mask), structure=square_element(size))


def opening(mask: np.ndarray, size: int = 3) -> np.ndarray:
    """Erosion followed by dilation — removes specks smaller than the element."""
    return ndimage.binary_opening(_check_mask(mask), structure=square_element(size))


def closing(mask: np.ndarray, size: int = 3) -> np.ndarray:
    """Dilation followed by erosion — fills holes smaller than the element.

    The mask is padded before the operation so closing stays *extensive*
    (``mask ⊆ closing(mask)``) at the frame borders, which scipy's raw
    implementation does not guarantee.
    """
    checked = _check_mask(mask)
    padded = np.pad(checked, size, mode="constant", constant_values=False)
    closed = ndimage.binary_closing(padded, structure=square_element(size))
    return closed[size:-size, size:-size]
