"""Frame-level statistics: entropy, mean, variance.

The paper classifies shots using "entropy characteristics, mean and
variance" in addition to dominant colour and skin ratio.  These are the
corresponding primitives, computed on the greyscale rendering of a frame.
"""

from __future__ import annotations

import numpy as np

from repro.vision.color import ensure_frames, rgb_to_grey, rgb_to_grey_frames
from repro.vision.histogram import grey_histogram, grey_histograms

__all__ = [
    "frame_entropy",
    "frame_mean",
    "frame_variance",
    "frame_statistics",
    "frame_statistics_batch",
]


def _as_grey(image: np.ndarray) -> np.ndarray:
    arr = np.asarray(image)
    if arr.ndim == 3:
        return rgb_to_grey(arr)
    if arr.ndim == 2:
        return arr
    raise ValueError(f"expected an image array, got shape {arr.shape}")


def frame_entropy(image: np.ndarray, bins: int = 64) -> float:
    """Shannon entropy (bits) of the greyscale intensity distribution.

    Low for flat shots (empty court walls, uniform graphics), high for
    textured shots (audience).  Range is ``[0, log2(bins)]``.
    """
    hist = grey_histogram(_as_grey(image), bins=bins, normalize=True)
    positive = hist[hist > 0]
    if positive.size == 0:
        return 0.0
    return float(-(positive * np.log2(positive)).sum())


def frame_mean(image: np.ndarray) -> float:
    """Mean greyscale intensity of the frame (0..255)."""
    return float(_as_grey(image).mean())


def frame_variance(image: np.ndarray) -> float:
    """Variance of greyscale intensity of the frame."""
    return float(_as_grey(image).astype(np.float64).var())


def frame_statistics(image: np.ndarray, bins: int = 64) -> dict[str, float]:
    """Entropy, mean and variance in one pass over the greyscale frame."""
    grey = _as_grey(image)
    hist = grey_histogram(grey, bins=bins, normalize=True)
    positive = hist[hist > 0]
    entropy = float(-(positive * np.log2(positive)).sum()) if positive.size else 0.0
    as_float = grey.astype(np.float64)
    return {
        "entropy": entropy,
        "mean": float(as_float.mean()),
        "variance": float(as_float.var()),
    }


def frame_statistics_batch(frames, bins: int = 64) -> list[dict[str, float]]:
    """Batched :func:`frame_statistics` over a whole clip.

    The expensive passes — luma conversion and intensity histograms — run
    once over the stacked ``(N, H, W, 3)`` array; entropy, mean and
    variance then reduce each frame's row/plane with the same operations
    as the single-frame function, so every value matches it exactly.
    """
    arr = ensure_frames(frames)
    greys = rgb_to_grey_frames(arr)
    hists = grey_histograms(greys, bins=bins, normalize=True)
    out: list[dict[str, float]] = []
    for i in range(arr.shape[0]):
        positive = hists[i][hists[i] > 0]
        entropy = float(-(positive * np.log2(positive)).sum()) if positive.size else 0.0
        as_float = greys[i].astype(np.float64)
        out.append(
            {
                "entropy": entropy,
                "mean": float(as_float.mean()),
                "variance": float(as_float.var()),
            }
        )
    return out
