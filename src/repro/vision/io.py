"""Minimal image file IO: binary PPM/PGM.

The demo front end shows keyframes for retrieved scenes; a library
needs to write those images somewhere.  PPM (P6) and PGM (P5) are the
simplest open raster formats — stdlib-only to write and read, viewable
by practically everything.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["write_ppm", "read_ppm", "write_pgm", "read_pgm"]


def write_ppm(image: np.ndarray, path: str | Path) -> None:
    """Write an ``(H, W, 3)`` uint8 RGB image as binary PPM (P6)."""
    arr = np.asarray(image)
    if arr.ndim != 3 or arr.shape[2] != 3 or arr.dtype != np.uint8:
        raise ValueError(f"expected (H, W, 3) uint8, got {arr.shape} {arr.dtype}")
    height, width = arr.shape[:2]
    header = f"P6\n{width} {height}\n255\n".encode("ascii")
    Path(path).write_bytes(header + arr.tobytes())


def write_pgm(image: np.ndarray, path: str | Path) -> None:
    """Write an ``(H, W)`` uint8 greyscale image as binary PGM (P5)."""
    arr = np.asarray(image)
    if arr.ndim != 2 or arr.dtype != np.uint8:
        raise ValueError(f"expected (H, W) uint8, got {arr.shape} {arr.dtype}")
    height, width = arr.shape
    header = f"P5\n{width} {height}\n255\n".encode("ascii")
    Path(path).write_bytes(header + arr.tobytes())


def _read_netpbm(path: str | Path, magic: bytes) -> tuple[np.ndarray, int, int]:
    data = Path(path).read_bytes()
    if not data.startswith(magic):
        raise ValueError(f"not a {magic.decode()} file: {path}")
    # Header: magic, whitespace-separated width/height/maxval, then raster.
    fields: list[int] = []
    position = 2
    while len(fields) < 3:
        while position < len(data) and data[position : position + 1].isspace():
            position += 1
        if data[position : position + 1] == b"#":  # comment line
            while position < len(data) and data[position] != 0x0A:
                position += 1
            continue
        start = position
        while position < len(data) and not data[position : position + 1].isspace():
            position += 1
        fields.append(int(data[start:position]))
    position += 1  # single whitespace after maxval
    if fields[2] != 255:
        raise ValueError(f"only maxval 255 is supported, got {fields[2]}")
    raster = np.frombuffer(data[position:], dtype=np.uint8)
    return raster, fields[0], fields[1]


def read_ppm(path: str | Path) -> np.ndarray:
    """Read a binary PPM (P6) into an ``(H, W, 3)`` uint8 array."""
    raster, width, height = _read_netpbm(path, b"P6")
    expected = width * height * 3
    if len(raster) < expected:
        raise ValueError("truncated PPM raster")
    return raster[:expected].reshape(height, width, 3).copy()


def read_pgm(path: str | Path) -> np.ndarray:
    """Read a binary PGM (P5) into an ``(H, W)`` uint8 array."""
    raster, width, height = _read_netpbm(path, b"P5")
    expected = width * height
    if len(raster) < expected:
        raise ValueError("truncated PGM raster")
    return raster[:expected].reshape(height, width).copy()
