"""Geometric moments and shape features of binary regions.

The tennis detector extracts, for the segmented player's binary
representation, "the mass center, the area, the bounding box, the
orientation, and the eccentricity" — exactly the central-moment shape
descriptors implemented here.

Coordinates follow image convention: ``row`` (y, downwards) and ``col``
(x, rightwards).  Orientation is the angle in radians of the major axis
measured from the positive column (x) axis, in ``(-pi/2, pi/2]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ShapeFeatures",
    "raw_moment",
    "central_moments",
    "shape_features",
    "shape_features_batch",
]


@dataclass(frozen=True)
class ShapeFeatures:
    """Shape descriptors of a binary region.

    Attributes:
        area: pixel count of the region.
        centroid: ``(row, col)`` mass centre.
        bbox: ``(row_min, col_min, row_max, col_max)`` half-open bounds.
        orientation: major-axis angle in radians from the x (column) axis.
        eccentricity: 0 for a circle, ->1 for an elongated region.
        aspect_ratio: bbox height / bbox width.
    """

    area: int
    centroid: tuple[float, float]
    bbox: tuple[int, int, int, int]
    orientation: float
    eccentricity: float
    aspect_ratio: float

    def as_vector(self) -> np.ndarray:
        """Flatten to a feature vector (for classifiers / the meta-index)."""
        return np.array(
            [
                self.area,
                self.centroid[0],
                self.centroid[1],
                *self.bbox,
                self.orientation,
                self.eccentricity,
                self.aspect_ratio,
            ],
            dtype=np.float64,
        )


def raw_moment(mask: np.ndarray, p: int, q: int) -> float:
    """Raw image moment ``M_pq = sum(row**p * col**q)`` over true pixels."""
    rows, cols = np.nonzero(np.asarray(mask, dtype=bool))
    if rows.size == 0:
        return 0.0
    return float(np.sum((rows.astype(np.float64) ** p) * (cols.astype(np.float64) ** q)))


def central_moments(mask: np.ndarray) -> dict[str, float]:
    """Second-order central moments ``mu20, mu02, mu11`` of a binary mask."""
    rows, cols = np.nonzero(np.asarray(mask, dtype=bool))
    if rows.size == 0:
        return {"mu20": 0.0, "mu02": 0.0, "mu11": 0.0}
    r = rows.astype(np.float64)
    c = cols.astype(np.float64)
    r_mean = r.mean()
    c_mean = c.mean()
    dr = r - r_mean
    dc = c - c_mean
    return {
        "mu20": float(np.sum(dr * dr)),
        "mu02": float(np.sum(dc * dc)),
        "mu11": float(np.sum(dr * dc)),
    }


def _features_from_points(rows: np.ndarray, cols: np.ndarray) -> ShapeFeatures:
    """Shape descriptors from the true-pixel coordinates of one region.

    The coordinate arrays must come from ``np.nonzero`` on a 2-D mask
    (row-major order) — both the single-mask and batched entry points
    funnel through here, so their outputs are identical by construction.
    """
    area = int(rows.size)
    r_mean = float(rows.mean())
    c_mean = float(cols.mean())
    bbox = (int(rows.min()), int(cols.min()), int(rows.max()) + 1, int(cols.max()) + 1)

    r = rows.astype(np.float64)
    c = cols.astype(np.float64)
    dr = r - r.mean()
    dc = c - c.mean()
    # Normalised second central moments (per-pixel).
    u20 = float(np.sum(dr * dr)) / area
    u02 = float(np.sum(dc * dc)) / area
    u11 = float(np.sum(dr * dc)) / area

    # Orientation of the major axis relative to the column (x) axis.  The
    # covariance matrix here is over (row, col); converting to (x, y) with
    # y pointing up flips the sign of the cross term.
    if abs(u20 - u02) < 1e-12 and abs(u11) < 1e-12:
        orientation = 0.0
    else:
        orientation = 0.5 * np.arctan2(2.0 * u11, u02 - u20)

    # Eigenvalues of the covariance matrix give the axis lengths.
    common = np.sqrt(max((u20 - u02) ** 2 / 4.0 + u11**2, 0.0))
    lam1 = (u20 + u02) / 2.0 + common
    lam2 = (u20 + u02) / 2.0 - common
    if lam1 <= 1e-12:
        eccentricity = 0.0
    else:
        ratio = max(lam2, 0.0) / lam1
        eccentricity = float(np.sqrt(max(1.0 - ratio, 0.0)))

    height = bbox[2] - bbox[0]
    width = bbox[3] - bbox[1]
    aspect = float(height) / float(width) if width else float("inf")

    return ShapeFeatures(
        area=area,
        centroid=(r_mean, c_mean),
        bbox=bbox,
        orientation=float(orientation),
        eccentricity=eccentricity,
        aspect_ratio=aspect,
    )


def shape_features(mask: np.ndarray) -> ShapeFeatures | None:
    """Extract :class:`ShapeFeatures` from a binary mask.

    Returns ``None`` for an empty mask (no region to describe).
    """
    arr = np.asarray(mask, dtype=bool)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D mask, got shape {arr.shape}")
    rows, cols = np.nonzero(arr)
    if rows.size == 0:
        return None
    return _features_from_points(rows, cols)


def shape_features_batch(masks: np.ndarray) -> list[ShapeFeatures | None]:
    """:func:`shape_features` for a stack of masks, one ``nonzero`` pass.

    A single ``np.nonzero`` over the ``(N, H, W)`` stack yields every
    region's coordinates in frame order; frame boundaries are recovered
    with ``searchsorted`` and each slice feeds the same descriptor code
    as the single-mask function.  Entries are ``None`` for empty masks.
    """
    arr = np.asarray(masks, dtype=bool)
    if arr.ndim != 3:
        raise ValueError(f"expected an (N, H, W) mask stack, got shape {arr.shape}")
    frame_idx, rows, cols = np.nonzero(arr)
    bounds = np.searchsorted(frame_idx, np.arange(arr.shape[0] + 1))
    out: list[ShapeFeatures | None] = []
    for i in range(arr.shape[0]):
        start, stop = int(bounds[i]), int(bounds[i + 1])
        if start == stop:
            out.append(None)
        else:
            out.append(_features_from_points(rows[start:stop], cols[start:stop]))
    return out
