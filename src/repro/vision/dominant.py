"""Dominant-colour estimation.

"The court shots are recognized based on the dominant color" — this module
computes the dominant colour of a frame by histogram mode in quantised RGB
space, and the coverage of an arbitrary reference colour (used both to
recognise the court colour and, by the tracker, to estimate how much of the
frame is court).
"""

from __future__ import annotations

import numpy as np

from repro.vision.color import FRAME_BLOCK, ensure_frames, ensure_rgb

__all__ = [
    "dominant_color",
    "dominant_colors",
    "color_coverage",
    "color_coverages",
    "color_distance",
]


def dominant_color(image: np.ndarray, bins: int = 16) -> tuple[np.ndarray, float]:
    """Most frequent quantised colour of an RGB frame.

    The frame is quantised to ``bins`` levels per channel; the returned
    colour is the mean RGB of the pixels falling in the most populated cell,
    which is more accurate than the cell centre.

    Returns:
        ``(color, coverage)`` where *color* is a float64 RGB triple and
        *coverage* is the fraction of frame pixels in the winning cell.
    """
    rgb = ensure_rgb(image)
    quant = (rgb.astype(np.uint32) * bins) >> 8
    codes = (quant[..., 0] * bins + quant[..., 1]) * bins + quant[..., 2]
    flat_codes = codes.ravel()
    counts = np.bincount(flat_codes, minlength=bins**3)
    winner = int(counts.argmax())
    member = flat_codes == winner
    pixels = rgb.reshape(-1, 3)[member]
    color = pixels.mean(axis=0) if len(pixels) else np.zeros(3)
    coverage = float(member.mean()) if flat_codes.size else 0.0
    return color.astype(np.float64), coverage


def dominant_colors(frames, bins: int = 16) -> list[tuple[np.ndarray, float]]:
    """Batched :func:`dominant_color` over a whole clip.

    Quantisation is vectorised over cache-sized frame blocks; per frame,
    the winning cell and its channel sums come from plain and weighted
    bincounts.  All of it is integer counting (exact in float64), so
    each ``(color, coverage)`` pair matches the single-frame function
    exactly.
    """
    rgb = ensure_frames(frames)
    n = rgb.shape[0]
    n_cells = bins**3
    out: list[tuple[np.ndarray, float]] = []
    for s in range(0, n, FRAME_BLOCK):
        part = rgb[s : s + FRAME_BLOCK]
        quant = (part.astype(np.uint32) * bins) >> 8
        codes = (quant[..., 0] * bins + quant[..., 1]) * bins + quant[..., 2]
        flat = codes.reshape(codes.shape[0], -1)
        pixels = part.reshape(part.shape[0], -1, 3)
        for j in range(flat.shape[0]):
            counts = np.bincount(flat[j], minlength=n_cells)
            winner = int(counts.argmax())
            win_count = int(counts[winner])
            frame_size = flat.shape[1]
            if win_count:
                sums = np.array(
                    [
                        np.bincount(
                            flat[j],
                            weights=pixels[j, :, c].astype(np.float64),
                            minlength=n_cells,
                        )[winner]
                        for c in range(3)
                    ]
                )
                color = sums / float(win_count)
                coverage = float(win_count) / float(frame_size)
            else:
                color = np.zeros(3)
                coverage = 0.0
            out.append((color.astype(np.float64), coverage))
    return out


def color_distance(c1: np.ndarray, c2: np.ndarray) -> float:
    """Euclidean distance between two RGB colours (0..~441)."""
    a = np.asarray(c1, dtype=np.float64)
    b = np.asarray(c2, dtype=np.float64)
    if a.shape != (3,) or b.shape != (3,):
        raise ValueError("colours must be RGB triples")
    return float(np.linalg.norm(a - b))


def color_coverage(
    image: np.ndarray, color: np.ndarray, tolerance: float = 40.0
) -> float:
    """Fraction of pixels within Euclidean *tolerance* of *color*.

    Used to test whether a frame is dominated by a known court colour.
    """
    rgb = ensure_rgb(image).astype(np.float64)
    ref = np.asarray(color, dtype=np.float64).reshape(1, 1, 3)
    dist = np.sqrt(((rgb - ref) ** 2).sum(axis=-1))
    return float((dist <= tolerance).mean())


def color_coverages(frames, color: np.ndarray, tolerance: float = 40.0) -> np.ndarray:
    """Batched :func:`color_coverage` over a whole clip -> ``(N,)`` float64.

    Runs in cache-sized frame blocks with the squared distance expanded
    per channel (``d0*d0 + d1*d1 + d2*d2`` — the same left-to-right sum
    as the channel-axis reduction, minus its overhead).  Per-frame means
    are exact integer counts over the frame size, so each entry equals
    the single-frame function bit for bit.
    """
    frames = ensure_frames(frames)
    n = frames.shape[0]
    ref = np.asarray(color, dtype=np.float64).reshape(3)
    out = np.empty(n, dtype=np.float64)
    for s in range(0, n, FRAME_BLOCK):
        rgb = frames[s : s + FRAME_BLOCK].astype(np.float64)
        d0 = rgb[..., 0] - ref[0]
        d1 = rgb[..., 1] - ref[1]
        d2 = rgb[..., 2] - ref[2]
        dist = np.sqrt(d0 * d0 + d1 * d1 + d2 * d2)
        within = dist <= tolerance
        out[s : s + FRAME_BLOCK] = within.reshape(within.shape[0], -1).mean(axis=1)
    return out
