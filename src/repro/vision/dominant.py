"""Dominant-colour estimation.

"The court shots are recognized based on the dominant color" — this module
computes the dominant colour of a frame by histogram mode in quantised RGB
space, and the coverage of an arbitrary reference colour (used both to
recognise the court colour and, by the tracker, to estimate how much of the
frame is court).
"""

from __future__ import annotations

import numpy as np

from repro.vision.color import ensure_rgb

__all__ = ["dominant_color", "color_coverage", "color_distance"]


def dominant_color(image: np.ndarray, bins: int = 16) -> tuple[np.ndarray, float]:
    """Most frequent quantised colour of an RGB frame.

    The frame is quantised to ``bins`` levels per channel; the returned
    colour is the mean RGB of the pixels falling in the most populated cell,
    which is more accurate than the cell centre.

    Returns:
        ``(color, coverage)`` where *color* is a float64 RGB triple and
        *coverage* is the fraction of frame pixels in the winning cell.
    """
    rgb = ensure_rgb(image)
    quant = (rgb.astype(np.uint32) * bins) >> 8
    codes = (quant[..., 0] * bins + quant[..., 1]) * bins + quant[..., 2]
    flat_codes = codes.ravel()
    counts = np.bincount(flat_codes, minlength=bins**3)
    winner = int(counts.argmax())
    member = flat_codes == winner
    pixels = rgb.reshape(-1, 3)[member]
    color = pixels.mean(axis=0) if len(pixels) else np.zeros(3)
    coverage = float(member.mean()) if flat_codes.size else 0.0
    return color.astype(np.float64), coverage


def color_distance(c1: np.ndarray, c2: np.ndarray) -> float:
    """Euclidean distance between two RGB colours (0..~441)."""
    a = np.asarray(c1, dtype=np.float64)
    b = np.asarray(c2, dtype=np.float64)
    if a.shape != (3,) or b.shape != (3,):
        raise ValueError("colours must be RGB triples")
    return float(np.linalg.norm(a - b))


def color_coverage(
    image: np.ndarray, color: np.ndarray, tolerance: float = 40.0
) -> float:
    """Fraction of pixels within Euclidean *tolerance* of *color*.

    Used to test whether a frame is dominated by a known court colour.
    """
    rgb = ensure_rgb(image).astype(np.float64)
    ref = np.asarray(color, dtype=np.float64).reshape(1, 1, 3)
    dist = np.sqrt(((rgb - ref) ** 2).sum(axis=-1))
    return float((dist <= tolerance).mean())
