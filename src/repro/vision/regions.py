"""Connected-component labelling for binary masks.

The player segmentation step produces a binary "not court" mask; the
tracker then needs the connected regions of that mask to find the player
blob.  Labelling uses scipy's optimised implementation with pure-NumPy
helpers around it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["Region", "label_regions", "region_slices", "largest_region", "regions_in"]


@dataclass(frozen=True)
class Region:
    """A connected region of a binary mask.

    Attributes:
        label: label id in the label image (>= 1).
        area: number of pixels.
        bbox: ``(row_min, col_min, row_max, col_max)`` — half-open rows/cols.
        centroid: ``(row, col)`` mean pixel position.
    """

    label: int
    area: int
    bbox: tuple[int, int, int, int]
    centroid: tuple[float, float]

    @property
    def height(self) -> int:
        return self.bbox[2] - self.bbox[0]

    @property
    def width(self) -> int:
        return self.bbox[3] - self.bbox[1]


def label_regions(mask: np.ndarray, connectivity: int = 2) -> tuple[np.ndarray, int]:
    """Label connected components of a boolean mask.

    Args:
        mask: ``(H, W)`` boolean array.
        connectivity: 1 for 4-connectivity, 2 for 8-connectivity.

    Returns:
        ``(labels, count)`` — an int label image (0 = background) and the
        number of regions found.
    """
    arr = np.asarray(mask, dtype=bool)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D mask, got shape {arr.shape}")
    if connectivity not in (1, 2):
        raise ValueError("connectivity must be 1 or 2")
    structure = ndimage.generate_binary_structure(2, connectivity)
    labels, count = ndimage.label(arr, structure=structure)
    return labels, int(count)


def region_slices(labels: np.ndarray, count: int) -> list[tuple[slice, slice]]:
    """Bounding slices for each labelled region, in label order."""
    found = ndimage.find_objects(labels, max_label=count)
    return [s for s in found if s is not None]


def regions_in(mask: np.ndarray, connectivity: int = 2, min_area: int = 1) -> list[Region]:
    """All connected regions of *mask* with at least *min_area* pixels."""
    labels, count = label_regions(mask, connectivity=connectivity)
    if count == 0:
        return []
    areas = ndimage.sum_labels(np.ones_like(labels), labels, index=range(1, count + 1))
    centroids = ndimage.center_of_mass(mask, labels, index=range(1, count + 1))
    slices = ndimage.find_objects(labels, max_label=count)
    regions: list[Region] = []
    for idx in range(count):
        area = int(areas[idx])
        if area < min_area or slices[idx] is None:
            continue
        rs, cs = slices[idx]
        regions.append(
            Region(
                label=idx + 1,
                area=area,
                bbox=(rs.start, cs.start, rs.stop, cs.stop),
                centroid=(float(centroids[idx][0]), float(centroids[idx][1])),
            )
        )
    return regions


def largest_region(mask: np.ndarray, connectivity: int = 2) -> Region | None:
    """The largest connected region of *mask*, or ``None`` if mask is empty."""
    regions = regions_in(mask, connectivity=connectivity)
    if not regions:
        return None
    return max(regions, key=lambda r: r.area)
