"""Colour space conversions.

The shot classifier works on RGB statistics, dominant colours are more
stable in HSV, and the boundary detector and entropy work on greyscale.
Conversions follow the standard ITU-R BT.601 luma weights and the usual
hexcone HSV model, matching what the paper's 2002-era tooling (and
OpenCV today) computes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rgb_to_grey",
    "rgb_to_hsv",
    "hsv_to_rgb",
    "ensure_rgb",
    "ensure_frames",
    "rgb_to_grey_frames",
    "rgb_to_hsv_frames",
    "FRAME_BLOCK",
]

#: ITU-R BT.601 luma weights used for RGB -> greyscale.
_LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114])

#: Frames per block in the batched kernels.  Batched passes iterate the
#: clip in blocks of this many frames: large enough to amortise dispatch
#: overhead, small enough that a block's float temporaries stay resident
#: in cache instead of streaming clip-sized arrays through main memory
#: (measured fastest on memory-constrained hosts).
FRAME_BLOCK = 2


def ensure_rgb(image: np.ndarray) -> np.ndarray:
    """Validate that *image* is an ``(H, W, 3)`` array and return it.

    Raises:
        ValueError: if the array does not look like an RGB image.
    """
    arr = np.asarray(image)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"expected an (H, W, 3) RGB image, got shape {arr.shape}")
    return arr


def ensure_frames(frames) -> np.ndarray:
    """Coerce a clip / frame sequence / array to an ``(N, H, W, 3)`` array.

    Accepts a :class:`~repro.video.frames.VideoClip` (uses its cached
    stacked array), an already-stacked 4-D array, or any sequence of
    ``(H, W, 3)`` frames.

    Raises:
        ValueError: if the input does not describe a batch of RGB frames.
    """
    as_array = getattr(frames, "as_array", None)
    if callable(as_array):
        return as_array()
    arr = np.asarray(frames) if isinstance(frames, np.ndarray) else None
    if arr is None:
        arr = np.stack([np.asarray(f) for f in frames]) if len(frames) else np.empty((0, 1, 1, 3))
    if arr.ndim == 3 and arr.shape[-1] == 3:
        arr = arr[np.newaxis]
    if arr.ndim != 4 or arr.shape[-1] != 3:
        raise ValueError(f"expected (N, H, W, 3) RGB frames, got shape {arr.shape}")
    return arr


def rgb_to_grey(image: np.ndarray) -> np.ndarray:
    """Convert an RGB image to a ``uint8`` greyscale image.

    Args:
        image: ``(H, W, 3)`` array, any numeric dtype in the 0..255 range.

    Returns:
        ``(H, W)`` ``uint8`` array of luma values.
    """
    rgb = ensure_rgb(image).astype(np.float64)
    grey = rgb @ _LUMA_WEIGHTS
    return np.clip(np.rint(grey), 0, 255).astype(np.uint8)


def rgb_to_grey_frames(frames) -> np.ndarray:
    """Batched :func:`rgb_to_grey`: ``(N, H, W, 3)`` -> ``(N, H, W)`` uint8.

    One luma matmul over the whole clip; per-pixel arithmetic is
    identical to the single-frame function, so ``rgb_to_grey_frames(c)[i]``
    equals ``rgb_to_grey(c[i])`` exactly.
    """
    rgb = ensure_frames(frames)
    out = np.empty(rgb.shape[:3], dtype=np.uint8)
    for s in range(0, rgb.shape[0], FRAME_BLOCK):
        grey = rgb[s : s + FRAME_BLOCK].astype(np.float64) @ _LUMA_WEIGHTS
        out[s : s + FRAME_BLOCK] = np.clip(np.rint(grey), 0, 255).astype(np.uint8)
    return out


def _hsv_from_rgb_array(rgb: np.ndarray) -> np.ndarray:
    """Hexcone HSV of a float RGB array in [0, 1]; shape-preserving."""
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    maxc = rgb.max(axis=-1)
    minc = rgb.min(axis=-1)
    delta = maxc - minc

    hue = np.zeros_like(maxc)
    nonzero = delta > 0
    # Piecewise hue computation; np.where keeps it vectorised.
    rmax = nonzero & (maxc == r)
    gmax = nonzero & (maxc == g) & ~rmax
    bmax = nonzero & ~rmax & ~gmax
    with np.errstate(divide="ignore", invalid="ignore"):
        hue[rmax] = ((g - b)[rmax] / delta[rmax]) % 6.0
        hue[gmax] = (b - r)[gmax] / delta[gmax] + 2.0
        hue[bmax] = (r - g)[bmax] / delta[bmax] + 4.0
    hue *= 60.0

    saturation = np.zeros_like(maxc)
    vpos = maxc > 0
    saturation[vpos] = delta[vpos] / maxc[vpos]

    return np.stack([hue, saturation, maxc], axis=-1)


def rgb_to_hsv(image: np.ndarray) -> np.ndarray:
    """Convert ``uint8`` RGB to float HSV.

    Returns:
        ``(H, W, 3)`` float64 array with hue in ``[0, 360)`` degrees and
        saturation / value in ``[0, 1]``.
    """
    return _hsv_from_rgb_array(ensure_rgb(image).astype(np.float64) / 255.0)


def rgb_to_hsv_frames(frames) -> np.ndarray:
    """Batched :func:`rgb_to_hsv`: ``(N, H, W, 3)`` -> ``(N, H, W, 3)`` float64.

    The hexcone arithmetic is elementwise, so the batched result matches
    the per-frame conversion bit for bit.
    """
    rgb = ensure_frames(frames)
    out = np.empty(rgb.shape, dtype=np.float64)
    for s in range(0, rgb.shape[0], FRAME_BLOCK):
        out[s : s + FRAME_BLOCK] = _hsv_from_rgb_array(
            rgb[s : s + FRAME_BLOCK].astype(np.float64) / 255.0
        )
    return out


def hsv_to_rgb(hsv: np.ndarray) -> np.ndarray:
    """Convert float HSV (hue degrees, sat/val in 0..1) to ``uint8`` RGB."""
    arr = np.asarray(hsv, dtype=np.float64)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"expected an (H, W, 3) HSV image, got shape {arr.shape}")
    h = (arr[..., 0] % 360.0) / 60.0
    s = np.clip(arr[..., 1], 0.0, 1.0)
    v = np.clip(arr[..., 2], 0.0, 1.0)

    i = np.floor(h).astype(int) % 6
    f = h - np.floor(h)
    p = v * (1.0 - s)
    q = v * (1.0 - s * f)
    t = v * (1.0 - s * (1.0 - f))

    # For each sextant pick the (r, g, b) triple.
    choices = [
        (v, t, p),
        (q, v, p),
        (p, v, t),
        (p, q, v),
        (t, p, v),
        (v, p, q),
    ]
    r = np.choose(i, [c[0] for c in choices])
    g = np.choose(i, [c[1] for c in choices])
    b = np.choose(i, [c[2] for c in choices])
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(np.rint(rgb * 255.0), 0, 255).astype(np.uint8)
