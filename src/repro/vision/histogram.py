"""Colour histograms and histogram distances.

The paper's segment detector finds shot boundaries "using differences in
color histograms of neighboring frames".  This module provides the
histograms and the distance measures the boundary detector (and the shot
classifier) consume.
"""

from __future__ import annotations

import numpy as np

from repro.vision.color import (
    FRAME_BLOCK,
    _hsv_from_rgb_array,
    ensure_frames,
    ensure_rgb,
    rgb_to_hsv,
)

__all__ = [
    "color_histogram",
    "color_histograms",
    "hsv_histogram",
    "hsv_histograms",
    "grey_histogram",
    "grey_histograms",
    "histogram_difference",
    "histogram_intersection",
    "chi_square_distance",
    "bhattacharyya_distance",
]


def _count_rows(codes: np.ndarray, n_cells: int, out: np.ndarray, at: int) -> None:
    """Bincount each frame of a ``(m, H, W)`` code block into ``out[at:]``.

    Counting is per frame — a 12k-element bincount is cache-resident and
    beats one huge offset bincount on memory-constrained hosts.
    """
    flat = codes.reshape(codes.shape[0], -1)
    for j in range(flat.shape[0]):
        out[at + j] = np.bincount(flat[j], minlength=n_cells)


def _normalize_rows(hists: np.ndarray, normalize: bool) -> np.ndarray:
    if normalize:
        totals = hists.sum(axis=1)
        positive = totals > 0
        hists[positive] /= totals[positive, np.newaxis]
    return hists


def color_histogram(image: np.ndarray, bins: int = 8, normalize: bool = True) -> np.ndarray:
    """Joint RGB colour histogram.

    Each channel is quantised into *bins* levels, producing a flattened
    ``bins**3`` vector.  With ``normalize=True`` (the default) the histogram
    sums to 1 so that frames of different sizes are comparable.

    Args:
        image: ``(H, W, 3)`` uint8 RGB frame.
        bins: quantisation levels per channel (2..256).
        normalize: return frequencies instead of counts.

    Returns:
        float64 vector of length ``bins**3``.
    """
    if not 2 <= bins <= 256:
        raise ValueError(f"bins must be in 2..256, got {bins}")
    rgb = ensure_rgb(image)
    # Quantise each channel to 0..bins-1 and combine into a single code.
    quant = (rgb.astype(np.uint32) * bins) >> 8
    codes = (quant[..., 0] * bins + quant[..., 1]) * bins + quant[..., 2]
    hist = np.bincount(codes.ravel(), minlength=bins**3).astype(np.float64)
    if normalize:
        total = hist.sum()
        if total > 0:
            hist /= total
    return hist


def color_histograms(frames, bins: int = 8, normalize: bool = True) -> np.ndarray:
    """Batched :func:`color_histogram` over a whole clip.

    Returns an ``(N, bins**3)`` float64 array where row *i* equals
    ``color_histogram(frames[i], bins, normalize)`` exactly — same
    quantisation, integer counting and normalising division per frame.
    Frames are processed in cache-sized blocks (see
    :data:`~repro.vision.color.FRAME_BLOCK`): quantisation is vectorised
    per block, counting per frame, so working sets stay in cache instead
    of streaming clip-sized temporaries through memory.
    """
    if not 2 <= bins <= 256:
        raise ValueError(f"bins must be in 2..256, got {bins}")
    rgb = ensure_frames(frames)
    n = rgb.shape[0]
    hists = np.empty((n, bins**3), dtype=np.float64)
    for s in range(0, n, FRAME_BLOCK):
        part = rgb[s : s + FRAME_BLOCK]
        quant = (part.astype(np.uint32) * bins) >> 8
        codes = (quant[..., 0] * bins + quant[..., 1]) * bins + quant[..., 2]
        _count_rows(codes, bins**3, hists, s)
    return _normalize_rows(hists, normalize)


def hsv_histogram(image: np.ndarray, bins: int = 8, normalize: bool = True) -> np.ndarray:
    """Joint HSV colour histogram (hue/saturation/value quantised).

    Hue is perceptually dominant, so HSV binning is less sensitive to
    global brightness shifts than RGB — the colour-space ablation of E2a.
    """
    if not 2 <= bins <= 256:
        raise ValueError(f"bins must be in 2..256, got {bins}")
    hsv = rgb_to_hsv(image)
    h = np.minimum((hsv[..., 0] / 360.0 * bins).astype(np.uint32), bins - 1)
    s = np.minimum((hsv[..., 1] * bins).astype(np.uint32), bins - 1)
    v = np.minimum((hsv[..., 2] * bins).astype(np.uint32), bins - 1)
    codes = (h * bins + s) * bins + v
    hist = np.bincount(codes.ravel(), minlength=bins**3).astype(np.float64)
    if normalize:
        total = hist.sum()
        if total > 0:
            hist /= total
    return hist


def hsv_histograms(frames, bins: int = 8, normalize: bool = True) -> np.ndarray:
    """Batched :func:`hsv_histogram` over a whole clip -> ``(N, bins**3)``.

    The HSV conversion runs block-at-a-time so the float conversion of a
    long clip is never materialised whole.
    """
    if not 2 <= bins <= 256:
        raise ValueError(f"bins must be in 2..256, got {bins}")
    rgb = ensure_frames(frames)
    n = rgb.shape[0]
    hists = np.empty((n, bins**3), dtype=np.float64)
    for start in range(0, n, FRAME_BLOCK):
        part = rgb[start : start + FRAME_BLOCK]
        hsv = _hsv_from_rgb_array(part.astype(np.float64) / 255.0)
        h = np.minimum((hsv[..., 0] / 360.0 * bins).astype(np.uint32), bins - 1)
        s = np.minimum((hsv[..., 1] * bins).astype(np.uint32), bins - 1)
        v = np.minimum((hsv[..., 2] * bins).astype(np.uint32), bins - 1)
        codes = (h * bins + s) * bins + v
        _count_rows(codes, bins**3, hists, start)
    return _normalize_rows(hists, normalize)


def grey_histogram(grey: np.ndarray, bins: int = 64, normalize: bool = True) -> np.ndarray:
    """Histogram of a greyscale image with *bins* uniform buckets over 0..255."""
    if not 2 <= bins <= 256:
        raise ValueError(f"bins must be in 2..256, got {bins}")
    arr = np.asarray(grey)
    if arr.ndim != 2:
        raise ValueError(f"expected an (H, W) greyscale image, got shape {arr.shape}")
    codes = (arr.astype(np.uint32) * bins) >> 8
    hist = np.bincount(codes.ravel(), minlength=bins).astype(np.float64)
    if normalize:
        total = hist.sum()
        if total > 0:
            hist /= total
    return hist


def grey_histograms(greys: np.ndarray, bins: int = 64, normalize: bool = True) -> np.ndarray:
    """Batched :func:`grey_histogram`: ``(N, H, W)`` greys -> ``(N, bins)``."""
    if not 2 <= bins <= 256:
        raise ValueError(f"bins must be in 2..256, got {bins}")
    arr = np.asarray(greys)
    if arr.ndim != 3:
        raise ValueError(f"expected (N, H, W) greyscale frames, got shape {arr.shape}")
    n = arr.shape[0]
    hists = np.empty((n, bins), dtype=np.float64)
    for s in range(0, n, FRAME_BLOCK):
        codes = (arr[s : s + FRAME_BLOCK].astype(np.uint32) * bins) >> 8
        _count_rows(codes, bins, hists, s)
    return _normalize_rows(hists, normalize)


def _check_pair(h1: np.ndarray, h2: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(h1, dtype=np.float64)
    b = np.asarray(h2, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"histogram shapes differ: {a.shape} vs {b.shape}")
    return a, b


def histogram_difference(h1: np.ndarray, h2: np.ndarray) -> float:
    """L1 distance between two histograms, halved.

    For normalised histograms the result lies in ``[0, 1]``: 0 for identical
    frames, 1 for frames with disjoint colour content.  This is the measure
    the shot-boundary detector thresholds.
    """
    a, b = _check_pair(h1, h2)
    return float(np.abs(a - b).sum() / 2.0)


def histogram_intersection(h1: np.ndarray, h2: np.ndarray) -> float:
    """Histogram intersection similarity: sum of bin-wise minima (1 = identical)."""
    a, b = _check_pair(h1, h2)
    return float(np.minimum(a, b).sum())


def chi_square_distance(h1: np.ndarray, h2: np.ndarray) -> float:
    """Chi-square distance, robust alternative used in the ablation (E2a)."""
    a, b = _check_pair(h1, h2)
    denom = a + b
    mask = denom > 0
    diff = a - b
    return float(0.5 * np.sum(diff[mask] ** 2 / denom[mask]))


def bhattacharyya_distance(h1: np.ndarray, h2: np.ndarray) -> float:
    """Bhattacharyya distance between two normalised histograms."""
    a, b = _check_pair(h1, h2)
    coefficient = np.sum(np.sqrt(a * b))
    coefficient = min(max(coefficient, 0.0), 1.0)
    return float(np.sqrt(1.0 - coefficient))
