"""Colour histograms and histogram distances.

The paper's segment detector finds shot boundaries "using differences in
color histograms of neighboring frames".  This module provides the
histograms and the distance measures the boundary detector (and the shot
classifier) consume.
"""

from __future__ import annotations

import numpy as np

from repro.vision.color import ensure_rgb, rgb_to_hsv

__all__ = [
    "color_histogram",
    "hsv_histogram",
    "grey_histogram",
    "histogram_difference",
    "histogram_intersection",
    "chi_square_distance",
    "bhattacharyya_distance",
]


def color_histogram(image: np.ndarray, bins: int = 8, normalize: bool = True) -> np.ndarray:
    """Joint RGB colour histogram.

    Each channel is quantised into *bins* levels, producing a flattened
    ``bins**3`` vector.  With ``normalize=True`` (the default) the histogram
    sums to 1 so that frames of different sizes are comparable.

    Args:
        image: ``(H, W, 3)`` uint8 RGB frame.
        bins: quantisation levels per channel (2..256).
        normalize: return frequencies instead of counts.

    Returns:
        float64 vector of length ``bins**3``.
    """
    if not 2 <= bins <= 256:
        raise ValueError(f"bins must be in 2..256, got {bins}")
    rgb = ensure_rgb(image)
    # Quantise each channel to 0..bins-1 and combine into a single code.
    quant = (rgb.astype(np.uint32) * bins) >> 8
    codes = (quant[..., 0] * bins + quant[..., 1]) * bins + quant[..., 2]
    hist = np.bincount(codes.ravel(), minlength=bins**3).astype(np.float64)
    if normalize:
        total = hist.sum()
        if total > 0:
            hist /= total
    return hist


def hsv_histogram(image: np.ndarray, bins: int = 8, normalize: bool = True) -> np.ndarray:
    """Joint HSV colour histogram (hue/saturation/value quantised).

    Hue is perceptually dominant, so HSV binning is less sensitive to
    global brightness shifts than RGB — the colour-space ablation of E2a.
    """
    if not 2 <= bins <= 256:
        raise ValueError(f"bins must be in 2..256, got {bins}")
    hsv = rgb_to_hsv(image)
    h = np.minimum((hsv[..., 0] / 360.0 * bins).astype(np.uint32), bins - 1)
    s = np.minimum((hsv[..., 1] * bins).astype(np.uint32), bins - 1)
    v = np.minimum((hsv[..., 2] * bins).astype(np.uint32), bins - 1)
    codes = (h * bins + s) * bins + v
    hist = np.bincount(codes.ravel(), minlength=bins**3).astype(np.float64)
    if normalize:
        total = hist.sum()
        if total > 0:
            hist /= total
    return hist


def grey_histogram(grey: np.ndarray, bins: int = 64, normalize: bool = True) -> np.ndarray:
    """Histogram of a greyscale image with *bins* uniform buckets over 0..255."""
    if not 2 <= bins <= 256:
        raise ValueError(f"bins must be in 2..256, got {bins}")
    arr = np.asarray(grey)
    if arr.ndim != 2:
        raise ValueError(f"expected an (H, W) greyscale image, got shape {arr.shape}")
    codes = (arr.astype(np.uint32) * bins) >> 8
    hist = np.bincount(codes.ravel(), minlength=bins).astype(np.float64)
    if normalize:
        total = hist.sum()
        if total > 0:
            hist /= total
    return hist


def _check_pair(h1: np.ndarray, h2: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(h1, dtype=np.float64)
    b = np.asarray(h2, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"histogram shapes differ: {a.shape} vs {b.shape}")
    return a, b


def histogram_difference(h1: np.ndarray, h2: np.ndarray) -> float:
    """L1 distance between two histograms, halved.

    For normalised histograms the result lies in ``[0, 1]``: 0 for identical
    frames, 1 for frames with disjoint colour content.  This is the measure
    the shot-boundary detector thresholds.
    """
    a, b = _check_pair(h1, h2)
    return float(np.abs(a - b).sum() / 2.0)


def histogram_intersection(h1: np.ndarray, h2: np.ndarray) -> float:
    """Histogram intersection similarity: sum of bin-wise minima (1 = identical)."""
    a, b = _check_pair(h1, h2)
    return float(np.minimum(a, b).sum())


def chi_square_distance(h1: np.ndarray, h2: np.ndarray) -> float:
    """Chi-square distance, robust alternative used in the ablation (E2a)."""
    a, b = _check_pair(h1, h2)
    denom = a + b
    mask = denom > 0
    diff = a - b
    return float(0.5 * np.sum(diff[mask] ** 2 / denom[mask]))


def bhattacharyya_distance(h1: np.ndarray, h2: np.ndarray) -> float:
    """Bhattacharyya distance between two normalised histograms."""
    a, b = _check_pair(h1, h2)
    coefficient = np.sum(np.sqrt(a * b))
    coefficient = min(max(coefficient, 0.0), 1.0)
    return float(np.sqrt(1.0 - coefficient))
