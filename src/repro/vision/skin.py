"""Skin-colour detection.

The paper classifies a shot as a close-up "if it contains a significant
amount of skin colored pixels".  We model skin colour as an axis-aligned
box in HSV plus the classic RGB ratio constraints, which is what
early-2000s skin detectors (Peer et al., Kovac et al.) used.

The model is deliberately parametric so tests and the synthetic video
generator can agree exactly on what counts as skin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vision.color import FRAME_BLOCK, ensure_frames, ensure_rgb

__all__ = ["SkinColorModel", "skin_ratio", "DEFAULT_SKIN_MODEL"]


@dataclass(frozen=True)
class SkinColorModel:
    """Rule-based skin classifier in RGB space.

    A pixel is skin when all hold (the Peer/Kovac daylight rules):

    - ``r > r_min`` and ``g > g_min`` and ``b > b_min``
    - ``max(r,g,b) - min(r,g,b) > spread_min`` (skin is never grey)
    - ``r > g`` and ``r > b`` (red dominance)
    - ``|r - g| > rg_gap_min``
    """

    r_min: int = 95
    g_min: int = 40
    b_min: int = 20
    spread_min: int = 15
    rg_gap_min: int = 15

    def mask(self, image: np.ndarray) -> np.ndarray:
        """Boolean mask of skin pixels for an RGB frame."""
        rgb = ensure_rgb(image).astype(np.int32)
        r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
        maxc = rgb.max(axis=-1)
        minc = rgb.min(axis=-1)
        return (
            (r > self.r_min)
            & (g > self.g_min)
            & (b > self.b_min)
            & ((maxc - minc) > self.spread_min)
            & (np.abs(r - g) > self.rg_gap_min)
            & (r > g)
            & (r > b)
        )

    def ratio(self, image: np.ndarray) -> float:
        """Fraction of frame pixels classified as skin, in ``[0, 1]``."""
        mask = self.mask(image)
        return float(mask.mean()) if mask.size else 0.0

    def masks(self, frames) -> np.ndarray:
        """Boolean skin masks for a whole clip, ``(N, H, W)``.

        Batched form of :meth:`mask`: the rule chain runs over
        cache-sized frame blocks with per-channel slice arithmetic —
        ``maximum(maximum(r, g), b)`` instead of a reduction over the
        3-wide channel axis, which NumPy handles an order of magnitude
        slower.  Integer comparisons are exact, so ``masks(c)[i]``
        equals ``mask(c[i])`` bit for bit.
        """
        frames = ensure_frames(frames)
        out = np.empty(frames.shape[:3], dtype=bool)
        for s in range(0, frames.shape[0], FRAME_BLOCK):
            rgb = frames[s : s + FRAME_BLOCK].astype(np.int16)
            r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
            maxc = np.maximum(np.maximum(r, g), b)
            minc = np.minimum(np.minimum(r, g), b)
            out[s : s + FRAME_BLOCK] = (
                (r > self.r_min)
                & (g > self.g_min)
                & (b > self.b_min)
                & ((maxc - minc) > self.spread_min)
                & (np.abs(r - g) > self.rg_gap_min)
                & (r > g)
                & (r > b)
            )
        return out

    def ratios(self, frames) -> np.ndarray:
        """Per-frame skin fractions for a whole clip, ``(N,)`` float64.

        A mask mean is an integer pixel count divided by the frame size
        — exact in float64 — so each entry equals :meth:`ratio` on that
        frame.
        """
        masks = self.masks(frames)
        if masks.size == 0:
            return np.zeros(masks.shape[0], dtype=np.float64)
        return masks.reshape(masks.shape[0], -1).mean(axis=1)


#: Default model; also the model the synthetic close-up renderer targets.
DEFAULT_SKIN_MODEL = SkinColorModel()


def skin_ratio(image: np.ndarray, model: SkinColorModel | None = None) -> float:
    """Convenience wrapper: skin-pixel fraction under *model* (default model)."""
    return (model or DEFAULT_SKIN_MODEL).ratio(image)
