"""Pure-NumPy image processing primitives.

This package replaces the external C/C++ vision routines the paper's
"segment detector" and "tennis detector" relied on.  Every operator the
pipeline needs is implemented here on ``numpy.ndarray`` images:

- colour space conversion (:mod:`repro.vision.color`),
- colour histograms and histogram distances (:mod:`repro.vision.histogram`),
- frame statistics: entropy, mean, variance (:mod:`repro.vision.stats`),
- a parametric skin-colour model (:mod:`repro.vision.skin`),
- dominant-colour estimation (:mod:`repro.vision.dominant`),
- connected-component labelling (:mod:`repro.vision.regions`),
- binary morphology (:mod:`repro.vision.morphology`),
- geometric moments and shape features (:mod:`repro.vision.moments`).

Images are ``uint8`` arrays of shape ``(H, W, 3)`` (RGB) or ``(H, W)``
(greyscale / binary masks).  All operators are vectorised and allocate
rather than mutate their inputs.  Every per-frame operator on the
pipeline's hot path also has a *batched* form (``color_histograms``,
``frame_statistics_batch``, ``SkinColorModel.masks`` …) that makes one
pass over a stacked ``(N, H, W, 3)`` clip and produces exactly the
per-frame values.
"""

from repro.vision.color import (
    rgb_to_grey,
    rgb_to_grey_frames,
    rgb_to_hsv,
    rgb_to_hsv_frames,
    hsv_to_rgb,
    ensure_frames,
)
from repro.vision.histogram import (
    color_histogram,
    color_histograms,
    grey_histogram,
    grey_histograms,
    hsv_histograms,
    histogram_difference,
    histogram_intersection,
    chi_square_distance,
)
from repro.vision.stats import (
    frame_entropy,
    frame_mean,
    frame_variance,
    frame_statistics_batch,
)
from repro.vision.skin import SkinColorModel, skin_ratio
from repro.vision.dominant import (
    dominant_color,
    dominant_colors,
    color_coverage,
    color_coverages,
)
from repro.vision.regions import label_regions, region_slices, largest_region
from repro.vision.morphology import erode, dilate, opening, closing
from repro.vision.moments import ShapeFeatures, shape_features, shape_features_batch

__all__ = [
    "rgb_to_grey",
    "rgb_to_grey_frames",
    "rgb_to_hsv",
    "rgb_to_hsv_frames",
    "hsv_to_rgb",
    "ensure_frames",
    "color_histogram",
    "color_histograms",
    "grey_histogram",
    "grey_histograms",
    "hsv_histograms",
    "histogram_difference",
    "histogram_intersection",
    "chi_square_distance",
    "frame_entropy",
    "frame_mean",
    "frame_variance",
    "frame_statistics_batch",
    "SkinColorModel",
    "skin_ratio",
    "dominant_color",
    "dominant_colors",
    "color_coverage",
    "color_coverages",
    "label_regions",
    "region_slices",
    "largest_region",
    "erode",
    "dilate",
    "opening",
    "closing",
    "ShapeFeatures",
    "shape_features",
    "shape_features_batch",
]
