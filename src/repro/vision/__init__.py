"""Pure-NumPy image processing primitives.

This package replaces the external C/C++ vision routines the paper's
"segment detector" and "tennis detector" relied on.  Every operator the
pipeline needs is implemented here on ``numpy.ndarray`` images:

- colour space conversion (:mod:`repro.vision.color`),
- colour histograms and histogram distances (:mod:`repro.vision.histogram`),
- frame statistics: entropy, mean, variance (:mod:`repro.vision.stats`),
- a parametric skin-colour model (:mod:`repro.vision.skin`),
- dominant-colour estimation (:mod:`repro.vision.dominant`),
- connected-component labelling (:mod:`repro.vision.regions`),
- binary morphology (:mod:`repro.vision.morphology`),
- geometric moments and shape features (:mod:`repro.vision.moments`).

Images are ``uint8`` arrays of shape ``(H, W, 3)`` (RGB) or ``(H, W)``
(greyscale / binary masks).  All operators are vectorised and allocate
rather than mutate their inputs.
"""

from repro.vision.color import rgb_to_grey, rgb_to_hsv, hsv_to_rgb
from repro.vision.histogram import (
    color_histogram,
    grey_histogram,
    histogram_difference,
    histogram_intersection,
    chi_square_distance,
)
from repro.vision.stats import frame_entropy, frame_mean, frame_variance
from repro.vision.skin import SkinColorModel, skin_ratio
from repro.vision.dominant import dominant_color, color_coverage
from repro.vision.regions import label_regions, region_slices, largest_region
from repro.vision.morphology import erode, dilate, opening, closing
from repro.vision.moments import ShapeFeatures, shape_features

__all__ = [
    "rgb_to_grey",
    "rgb_to_hsv",
    "hsv_to_rgb",
    "color_histogram",
    "grey_histogram",
    "histogram_difference",
    "histogram_intersection",
    "chi_square_distance",
    "frame_entropy",
    "frame_mean",
    "frame_variance",
    "SkinColorModel",
    "skin_ratio",
    "dominant_color",
    "color_coverage",
    "label_regions",
    "region_slices",
    "largest_region",
    "erode",
    "dilate",
    "opening",
    "closing",
    "ShapeFeatures",
    "shape_features",
]
