"""Cooperative query budgets and the serving-fault taxonomy.

Interactive serving only works when every query is *bounded*: a slow
stage must not hold the read lock (and a user) hostage.  This module is
the substrate the serving layer builds its overload story on:

- :class:`QueryBudget` — a wall-clock deadline plus an optional
  postings/work budget, carried through the query pipeline and checked
  cooperatively at stage boundaries and inside the hot scan loops
  (:meth:`~repro.ir.topn.FragmentedIndex.search`, the scene/sequence
  scans of :class:`~repro.library.engine.DigitalLibraryEngine`).  The
  clock is injectable, so tests drive expiry deterministically.
- :class:`DeadlineExceeded` — raised when a budget runs out; carries
  the stage that blew it, the reason (``deadline`` or ``postings``),
  and whatever ranked partial results the evaluation had accumulated,
  so the degradation ladder can decide what is still servable.
- :class:`OverloadedError` / :class:`LockTimeout` — admission-control
  and lock-acquisition rejections, the load-shedding half of the
  taxonomy.

The module sits below both :mod:`repro.ir` and :mod:`repro.library`
(it imports only the standard library), mirroring how
:mod:`repro.grammar.runtime` classifies *indexing* failures: serving
code catches these types, never bare exceptions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "DeadlineExceeded",
    "LockTimeout",
    "OverloadedError",
    "QueryBudget",
    "ServingError",
]


class ServingError(Exception):
    """Base class of classified query-serving faults."""

    #: Taxonomy tag, mirroring ``repro.grammar.runtime.classify_error``.
    kind = "serving"


class DeadlineExceeded(ServingError):
    """A query budget ran out mid-evaluation.

    Attributes:
        stage: the pipeline stage that tripped the check.
        reason: ``"deadline"`` (wall clock) or ``"postings"`` (work).
        partial: ranked results accumulated before expiry (``None`` when
            nothing useful was produced) — the degradation ladder's raw
            material.
    """

    kind = "deadline"

    def __init__(
        self,
        message: str,
        *,
        stage: str | None = None,
        reason: str = "deadline",
        partial: list | None = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.reason = reason
        self.partial = partial


class OverloadedError(ServingError):
    """The serving layer shed this request instead of queueing it.

    Attributes:
        reason: ``"queue_full"``, ``"queue_timeout"`` or
            ``"lock_timeout"`` — which shedding mechanism fired.
    """

    kind = "overload"

    def __init__(self, message: str, *, reason: str = "overloaded") -> None:
        super().__init__(message)
        self.reason = reason


class LockTimeout(OverloadedError):
    """A timed readers-writer-lock acquisition gave up."""

    kind = "lock_timeout"

    def __init__(self, message: str, *, reason: str = "lock_timeout") -> None:
        super().__init__(message, reason=reason)


@dataclass
class QueryBudget:
    """A per-query deadline and work budget, checked cooperatively.

    The budget starts ticking at construction.  Pipeline code calls
    :meth:`check` at stage boundaries, :meth:`tick` inside hot loops
    (samples the clock once every :attr:`tick_stride` calls, so the
    common case is one integer increment), and :meth:`charge_postings`
    before doing text-scan work whose cost is known up front.

    Args:
        seconds: wall-clock allowance (``None`` = unbounded time).
        postings: postings-processed allowance (``None`` = unbounded).
        clock: monotonic time source (injectable for tests).
        tick_stride: loop iterations between clock samples in
            :meth:`tick`.

    Attributes:
        started: clock reading at construction.
        postings_used: postings charged so far.
        checks: how many clock checks actually ran (observability).
    """

    seconds: float | None = None
    postings: int | None = None
    clock: Callable[[], float] = time.monotonic
    tick_stride: int = 32
    started: float = field(init=False)
    postings_used: int = field(default=0, init=False)
    checks: int = field(default=0, init=False)
    _ticks: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.seconds is not None and self.seconds < 0:
            raise ValueError(f"seconds must be >= 0 or None, got {self.seconds}")
        if self.postings is not None and self.postings < 0:
            raise ValueError(f"postings must be >= 0 or None, got {self.postings}")
        if self.tick_stride < 1:
            raise ValueError(f"tick_stride must be >= 1, got {self.tick_stride}")
        self.started = self.clock()

    @property
    def deadline(self) -> float | None:
        """Absolute expiry on the budget's clock (``None`` = never)."""
        if self.seconds is None:
            return None
        return self.started + self.seconds

    def remaining(self) -> float | None:
        """Seconds left before expiry (may be negative; ``None`` = unbounded)."""
        if self.seconds is None:
            return None
        return self.started + self.seconds - self.clock()

    @property
    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def slice_seconds(self, fraction: float) -> float | None:
        """Carve a sub-deadline from the remaining wall-clock budget.

        The scatter-gather layer gives every shard of a fan-out
        ``remaining() * fraction`` seconds, keeping the rest as gather
        and merge margin.  Monotonic clocks do not travel across process
        boundaries, so the slice is returned as a *duration* for the
        remote side to start its own budget from.  Returns ``None`` for
        an unbounded budget and clamps at zero for an expired one.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        remaining = self.remaining()
        if remaining is None:
            return None
        return max(0.0, remaining * fraction)

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the wall clock ran out."""
        self.checks += 1
        if self.expired:
            raise DeadlineExceeded(
                f"query deadline of {self.seconds * 1e3:.1f} ms exceeded in {stage!r}",
                stage=stage,
            )

    def tick(self, stage: str) -> None:
        """Cheap loop-body check: samples the clock every ``tick_stride`` calls."""
        self._ticks += 1
        if self._ticks % self.tick_stride == 0:
            self.check(stage)

    def tick_batch(self, n: int, stage: str) -> None:
        """Batch form of :meth:`tick` for vectorized loops.

        A whole-array kernel processes *n* postings in one call instead
        of *n* loop iterations; this advances the tick counter by *n*
        and samples the clock if the batch crossed a stride boundary, so
        check density per posting matches the scalar loop's.
        """
        if n <= 0:
            return
        before = self._ticks
        self._ticks += n
        if self._ticks // self.tick_stride > before // self.tick_stride:
            self.check(stage)

    def charge_postings(self, n: int, stage: str = "text_topn") -> None:
        """Charge *n* postings; raise when the work budget is exhausted.

        Charging happens *before* the work runs, so an evaluation whose
        known up-front cost already exceeds the allowance is rejected
        without scanning a single posting.
        """
        self.postings_used += n
        if self.postings is not None and self.postings_used > self.postings:
            raise DeadlineExceeded(
                f"postings budget of {self.postings} exceeded in {stage!r} "
                f"({self.postings_used} charged)",
                stage=stage,
                reason="postings",
            )
