"""Tournament simulation.

Each edition runs a single-elimination draw per gender from the player
field; winners accumulate titles.  Higher seeds win more often
(probability weighted by seed difference) so the title distribution is
realistically skewed toward the top of the field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.players import PlayerRecord

__all__ = ["MatchRecord", "simulate_tournaments"]

_ROUND_NAMES = {8: "quarterfinal", 4: "semifinal", 2: "final"}


@dataclass
class MatchRecord:
    """One played match.

    Attributes:
        title: page title (e.g. ``"A. Kor vs B. Vel, 2001 final"``).
        year: tournament edition.
        round_name: quarterfinal / semifinal / final (or ``round of N``).
        player_a: first player's name.
        player_b: second player's name.
        winner: winning player's name.
        sets: number of sets played.
        score: rendered score line.
        gender: the draw this match belongs to.
    """

    title: str
    year: int
    round_name: str
    player_a: str
    player_b: str
    winner: str
    sets: int
    score: str
    gender: str


def _round_name(n_remaining: int) -> str:
    return _ROUND_NAMES.get(n_remaining, f"round of {n_remaining}")


def _play_match(
    a: PlayerRecord, b: PlayerRecord, rng: np.random.Generator
) -> PlayerRecord:
    """Winner by seed-weighted coin flip: seed 1 beats seed 16 ~75%."""
    edge = (b.seed - a.seed) / 30.0  # in [-0.5, 0.5] for 16-player draws
    p_a = min(max(0.5 + edge, 0.1), 0.9)
    return a if rng.random() < p_a else b


def _score_line(sets: int, best_of: int, rng: np.random.Generator) -> str:
    games = []
    for _ in range(sets):
        loser_games = int(rng.integers(0, 6))
        winner_games = 6 if loser_games < 5 else 7
        games.append(f"{winner_games}-{loser_games}")
    return " ".join(games)


def simulate_tournaments(
    players: list[PlayerRecord],
    years: list[int],
    rng: np.random.Generator,
) -> list[MatchRecord]:
    """Simulate one edition per year and update player titles in place.

    The draw per gender is the full field of that gender, highest seeds
    first, padded down to a power of two by dropping the lowest seeds.
    """
    if not years:
        raise ValueError("need at least one tournament year")
    matches: list[MatchRecord] = []
    for year in sorted(years):
        for gender in ("female", "male"):
            field = sorted(
                (p for p in players if p.gender == gender), key=lambda p: p.seed
            )
            draw_size = 1
            while draw_size * 2 <= len(field):
                draw_size *= 2
            field = field[:draw_size]
            if len(field) < 2:
                raise ValueError(f"not enough {gender} players for a draw")
            matches.extend(_run_draw(field, year, gender, rng))
    return matches


def _run_draw(
    field: list[PlayerRecord], year: int, gender: str, rng: np.random.Generator
) -> list[MatchRecord]:
    best_of = 3 if gender == "female" else 5
    matches: list[MatchRecord] = []
    remaining = list(field)
    while len(remaining) > 1:
        round_name = _round_name(len(remaining))
        next_round: list[PlayerRecord] = []
        for i in range(0, len(remaining), 2):
            a, b = remaining[i], remaining[i + 1]
            winner = _play_match(a, b, rng)
            sets = int(rng.integers((best_of + 1) // 2, best_of + 1))
            matches.append(
                MatchRecord(
                    title=f"{a.name} vs {b.name}, {year} {round_name}",
                    year=year,
                    round_name=round_name,
                    player_a=a.name,
                    player_b=b.name,
                    winner=winner.name,
                    sets=sets,
                    score=_score_line(sets, best_of, rng),
                    gender=gender,
                )
            )
            next_round.append(winner)
        remaining = next_round
    remaining[0].titles += 1
    return matches
