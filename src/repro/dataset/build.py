"""Assemble the full Australian Open dataset.

:func:`build_australian_open` wires everything together: players,
simulated tournament history, the webspace object graph, the rendered
(lossy) HTML pages, interview transcripts, and video plans — one
coherent library keyed by a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataset.annotations import VideoPlan, plan_match_video
from repro.dataset.interviews import interview_text
from repro.dataset.matches import MatchRecord, simulate_tournaments
from repro.dataset.players import PlayerRecord, generate_players
from repro.ir.collection import DocumentCollection
from repro.video.generator import BroadcastConfig
from repro.webspace.html import page_text, render_page
from repro.webspace.instances import WebspaceInstance, WebspaceObject
from repro.webspace.schema import WebspaceSchema

__all__ = ["tennis_schema", "TournamentDataset", "build_australian_open"]


def tennis_schema() -> WebspaceSchema:
    """The webspace schema of the tournament site."""
    schema = WebspaceSchema("australian_open")
    schema.add_class(
        "Player",
        name="str",
        gender="str",
        handedness="str",
        country="str",
        seed="int",
        titles="int",
    )
    schema.add_class(
        "Match",
        title="str",
        year="int",
        round="str",
        sets="int",
        score="str",
        gender="str",
    )
    schema.add_class("Video", name="str", n_frames="int")
    schema.add_class("Interview", text="str")
    schema.add_association("played", "Player", "Match")
    schema.add_association("won", "Player", "Match")
    schema.add_association("recorded_in", "Match", "Video")
    schema.add_association("interviewed_in", "Player", "Interview")
    return schema


@dataclass
class TournamentDataset:
    """Everything the digital library engine builds on.

    Attributes:
        schema: the webspace schema.
        instance: the populated object graph.
        pages: document collection of rendered site pages + transcripts.
        players: the raw player records.
        matches: the raw match records.
        video_plans: deferred broadcasts, one per *recorded* match.
        match_objects: match title -> webspace Match object.
        player_objects: player name -> webspace Player object.
    """

    schema: WebspaceSchema
    instance: WebspaceInstance
    pages: DocumentCollection
    players: list[PlayerRecord]
    matches: list[MatchRecord]
    video_plans: list[VideoPlan]
    match_objects: dict[str, WebspaceObject] = field(default_factory=dict)
    player_objects: dict[str, WebspaceObject] = field(default_factory=dict)

    def plan_for(self, match_title: str) -> VideoPlan:
        for plan in self.video_plans:
            if plan.match_title == match_title:
                return plan
        raise KeyError(f"no video plan for match {match_title!r}")


def build_australian_open(
    seed: int = 0,
    n_per_gender: int = 16,
    years: list[int] | None = None,
    recorded_rounds: tuple[str, ...] = ("final", "semifinal"),
    video_shots: int = 10,
    video_config: BroadcastConfig | None = None,
) -> TournamentDataset:
    """Build the complete synthetic tournament library.

    Args:
        seed: master seed; everything derives from it.
        n_per_gender: players per singles draw.
        years: tournament editions to simulate (default 1998..2001 —
            "the past" relative to the paper's 2002 demo).
        recorded_rounds: which rounds get broadcast videos.
        video_shots: shots per broadcast.
        video_config: broadcast configuration for all planned videos.

    Returns:
        A fully-populated :class:`TournamentDataset`.
    """
    rng = np.random.default_rng(seed)
    years = list(years) if years is not None else [1998, 1999, 2000, 2001]

    players = generate_players(rng, n_per_gender=n_per_gender)
    matches = simulate_tournaments(players, years, rng)

    # The paper's motivating query asks for "left-handed female players who
    # have won the Australian Open in the past" — on the real 2002 site the
    # answer was non-empty (Monica Seles).  Guarantee the synthetic library
    # supports the demo: if chance produced no such champion, the most
    # titled female champion is made left-handed.
    female_champions = [p for p in players if p.gender == "female" and p.titles > 0]
    if female_champions and not any(p.handedness == "left" for p in female_champions):
        max(female_champions, key=lambda p: p.titles).handedness = "left"

    schema = tennis_schema()
    instance = WebspaceInstance(schema)
    pages = DocumentCollection()

    player_objects: dict[str, WebspaceObject] = {}
    for player in players:
        obj = instance.create(
            "Player",
            name=player.name,
            gender=player.gender,
            handedness=player.handedness,
            country=player.country,
            seed=player.seed,
            titles=player.titles,
        )
        player_objects[player.name] = obj
        pages.add(
            f"players/{player.name.lower().replace(' ', '_')}.html",
            page_text(render_page(obj)),
            metadata={"class": "Player", "oid": obj.oid},
        )

    match_objects: dict[str, WebspaceObject] = {}
    video_plans: list[VideoPlan] = []
    for index, match in enumerate(matches):
        match_obj = instance.create(
            "Match",
            title=match.title,
            year=match.year,
            round=match.round_name,
            sets=match.sets,
            score=match.score,
            gender=match.gender,
        )
        match_objects[match.title] = match_obj
        instance.link("played", player_objects[match.player_a], match_obj)
        instance.link("played", player_objects[match.player_b], match_obj)
        instance.link("won", player_objects[match.winner], match_obj)
        pages.add(
            f"matches/{index:03d}.html",
            page_text(render_page(match_obj)),
            metadata={"class": "Match", "oid": match_obj.oid},
        )

        transcript = interview_text(match, rng)
        interview_obj = instance.create("Interview", text=transcript)
        instance.link(
            "interviewed_in", player_objects[match.winner], interview_obj
        )
        pages.add(
            f"interviews/{index:03d}.html",
            page_text(render_page(interview_obj)),
            metadata={"class": "Interview", "oid": interview_obj.oid},
        )

        if match.round_name in recorded_rounds:
            video_plans.append(
                plan_match_video(
                    match, index, n_shots=video_shots, config=video_config
                )
            )

    return TournamentDataset(
        schema=schema,
        instance=instance,
        pages=pages,
        players=players,
        matches=matches,
        video_plans=video_plans,
        match_objects=match_objects,
        player_objects=player_objects,
    )
