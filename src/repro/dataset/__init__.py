"""The synthetic Australian Open tournament dataset.

The paper demos on http://tournament.ausopen.org/ (the 2002 site), which
no longer exists.  This package generates a statistically equivalent
stand-in: a player field, simulated tournament editions (so "has won the
Australian Open in the past" is a derivable fact), web pages rendered
lossily from the concept graph, interview transcripts, and *video
plans* — per-match shot scripts the broadcast generator turns into
pixels on demand.

Entry point: :func:`repro.dataset.build.build_australian_open`.
"""

from repro.dataset.players import PlayerRecord, generate_players
from repro.dataset.matches import MatchRecord, simulate_tournaments
from repro.dataset.interviews import interview_text
from repro.dataset.annotations import VideoPlan, plan_match_video
from repro.dataset.build import TournamentDataset, build_australian_open, tennis_schema
from repro.dataset.site import write_site, crawl_site

__all__ = [
    "PlayerRecord",
    "generate_players",
    "MatchRecord",
    "simulate_tournaments",
    "interview_text",
    "VideoPlan",
    "plan_match_video",
    "TournamentDataset",
    "build_australian_open",
    "tennis_schema",
    "write_site",
    "crawl_site",
]
