"""Video plans: per-match broadcast scripts.

A :class:`VideoPlan` is a deferred video: the shot spec sequence and the
seed needed to materialise identical pixels on demand.  Deferring
materialisation keeps the dataset build cheap — only videos the caller
actually indexes are rendered.

The shot mix mirrors a match highlight reel: court shots realising
rallies, services, baseline play and net approaches, interleaved with
close-ups, crowd shots and graphics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.dataset.matches import MatchRecord
from repro.video.frames import VideoClip
from repro.video.generator import BroadcastConfig, BroadcastGenerator
from repro.video.ground_truth import GroundTruth

__all__ = ["VideoPlan", "plan_match_video"]


@dataclass
class VideoPlan:
    """A deferred per-match broadcast.

    Attributes:
        name: video name (meta-index key).
        match_title: the match this video records.
        n_shots: shots in the highlight reel.
        seed: generator seed — same plan, same pixels.
        config: broadcast configuration.
    """

    name: str
    match_title: str
    n_shots: int
    seed: int
    config: BroadcastConfig = field(default_factory=BroadcastConfig)

    def materialise(self) -> tuple[VideoClip, GroundTruth]:
        """Render the broadcast (deterministic in the plan)."""
        generator = BroadcastGenerator(self.config, seed=self.seed)
        clip, truth = generator.generate(self.n_shots, name=self.name)
        return clip, truth


def plan_match_video(
    match: MatchRecord,
    index: int,
    n_shots: int = 10,
    config: BroadcastConfig | None = None,
) -> VideoPlan:
    """Build the video plan for one match.

    The plan seed derives from the match index so the whole library is
    reproducible from one dataset seed.
    """
    if n_shots < 2:
        raise ValueError("a highlight reel needs at least 2 shots")
    safe_name = match.title.lower().replace(" ", "_").replace(",", "")
    return VideoPlan(
        name=f"video_{index:03d}_{safe_name}",
        match_title=match.title,
        n_shots=n_shots,
        seed=100_000 + index,
        config=config or BroadcastConfig(),
    )
