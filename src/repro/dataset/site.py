"""The tournament web site on disk.

The webspace method starts from an actual site; this module writes the
generated pages as ``.html`` files in the structure of the 2002 demo's
source (``players/``, ``matches/``, ``interviews/``) and provides the
crawler counterpart: walking the files back into a
:class:`~repro.ir.collection.DocumentCollection`, which is *all* a
generic search engine can see — the starting point of the paper's
argument.
"""

from __future__ import annotations

from pathlib import Path

from repro.dataset.build import TournamentDataset
from repro.ir.collection import DocumentCollection
from repro.webspace.html import page_text, render_page

__all__ = ["write_site", "crawl_site"]


def write_site(dataset: TournamentDataset, out_dir: str | Path) -> list[Path]:
    """Render every webspace object's page to *out_dir* as HTML files.

    The directory layout mirrors the document names of
    ``dataset.pages`` (``players/<name>.html`` etc.).

    Returns:
        The written paths, in page order.
    """
    out_dir = Path(out_dir)
    written: list[Path] = []
    # Pages carry (class, oid) metadata; re-render the HTML (pages store
    # only the crawlable text).
    for document in dataset.pages:
        oid = document.metadata.get("oid")
        if oid is None:
            continue
        html = render_page(dataset.instance.object(oid))
        path = out_dir / document.name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(html)
        written.append(path)
    return written


def crawl_site(site_dir: str | Path) -> DocumentCollection:
    """Crawl a written site back into a document collection.

    This is the generic-search-engine view: file names and stripped page
    text, no conceptual structure.  Page names are site-relative paths,
    so a crawl of :func:`write_site` output aligns document-for-document
    with the dataset's own collection.
    """
    site_dir = Path(site_dir)
    if not site_dir.is_dir():
        raise FileNotFoundError(f"no site at {site_dir}")
    collection = DocumentCollection()
    for path in sorted(site_dir.rglob("*.html")):
        name = str(path.relative_to(site_dir))
        collection.add(name, page_text(path.read_text()))
    return collection
