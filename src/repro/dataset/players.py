"""Synthetic tennis players.

Names are generated from syllable pools (no real players), so the
dataset is self-contained and rights-free.  The attribute distributions
matter for the motivating query: both genders are represented, roughly
15% of players are left-handed, and titles are assigned later by the
tournament simulation — "has won the Australian Open in the past" is a
*derived* fact, exactly the hidden semantics the webspace method exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PlayerRecord", "generate_players"]

_GIVEN_FEMALE = (
    "Amelie", "Serena", "Justine", "Kim", "Elena", "Martina", "Lindsay",
    "Jennifer", "Monica", "Arantxa", "Anke", "Conchita", "Magda", "Iva",
)
_GIVEN_MALE = (
    "Andre", "Pete", "Marat", "Gustavo", "Yevgeny", "Patrick", "Thomas",
    "Goran", "Tim", "Carlos", "Lleyton", "Sebastien", "Alex", "Magnus",
)
_SURNAME_A = ("Kor", "Vel", "Mar", "San", "Hol", "Ber", "Lin", "Rau", "Dem", "Fal",
              "Gor", "Tav", "Bren", "Cas")
_SURNAME_B = ("anov", "ters", "tinez", "drová", "man", "etti", "qvist", "sen",
              "ilova", "court", "ari", "ssen", "dera", "nare")

_COUNTRIES = (
    "Australia", "United States", "France", "Spain", "Russia", "Belgium",
    "Germany", "Sweden", "Brazil", "Croatia", "Switzerland", "Argentina",
)


@dataclass
class PlayerRecord:
    """One player of the synthetic tour.

    ``titles`` counts Australian Open wins and is filled in by the
    tournament simulation.
    """

    name: str
    gender: str
    handedness: str
    country: str
    seed: int
    titles: int = 0


def generate_players(
    rng: np.random.Generator,
    n_per_gender: int = 16,
    left_handed_fraction: float = 0.15,
) -> list[PlayerRecord]:
    """Generate ``2 * n_per_gender`` players with unique names.

    Args:
        rng: randomness source.
        n_per_gender: players per singles draw.
        left_handed_fraction: expected fraction of left-handers.
    """
    if n_per_gender < 2:
        raise ValueError("need at least 2 players per gender")
    if not 0 <= left_handed_fraction <= 1:
        raise ValueError("left_handed_fraction must be in [0, 1]")
    players: list[PlayerRecord] = []
    used_names: set[str] = set()
    for gender, given_pool in (("female", _GIVEN_FEMALE), ("male", _GIVEN_MALE)):
        for seed in range(1, n_per_gender + 1):
            name = _unique_name(rng, given_pool, used_names)
            used_names.add(name)
            players.append(
                PlayerRecord(
                    name=name,
                    gender=gender,
                    handedness=(
                        "left" if rng.random() < left_handed_fraction else "right"
                    ),
                    country=str(rng.choice(_COUNTRIES)),
                    seed=seed,
                )
            )
    return players


def _unique_name(
    rng: np.random.Generator, given_pool: tuple[str, ...], used: set[str]
) -> str:
    for _ in range(1000):
        given = str(rng.choice(given_pool))
        surname = str(rng.choice(_SURNAME_A)) + str(rng.choice(_SURNAME_B))
        name = f"{given} {surname}"
        if name not in used:
            return name
    raise RuntimeError("name pool exhausted; reduce player count")
