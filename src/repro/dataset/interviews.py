"""Interview transcript generation.

Transcripts give the IR engine realistic, Zipf-ish text: a pool of
sentence templates mentioning the player, the opponent, tactics (net
play, rallies, serving) and the tournament.  Each transcript mixes a
few templates, so term statistics vary across documents.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.matches import MatchRecord

__all__ = ["interview_text"]

_TEMPLATES = (
    "{winner} said the {round_name} against {loser} was a tough battle from the baseline.",
    "I tried to come to the net early, {winner} explained after the {round_name}.",
    "The serve worked well today and the volley felt natural, said {winner}.",
    "{loser} admitted the long rallies in the {year} Australian Open took their toll.",
    "The crowd in Melbourne was amazing, {winner} told the press conference.",
    "{winner} praised {loser} for an aggressive return game throughout the match.",
    "Coming back after the second set was about patience and footwork, {winner} noted.",
    "{winner} felt the approach shots and net play decided the {round_name}.",
    "It is a dream to keep winning here in Australia, said {winner} after the {round_name}.",
    "{loser} struggled with the first serve percentage in the {round_name}.",
    "The heat was brutal but the rally tempo suited my game, {winner} commented.",
    "{winner} now prepares for the next round of the Australian Open {year}.",
)


def interview_text(
    match: MatchRecord, rng: np.random.Generator, n_sentences: int = 5
) -> str:
    """A transcript for the winner's post-match interview."""
    if n_sentences < 1:
        raise ValueError("a transcript needs at least one sentence")
    loser = match.player_b if match.winner == match.player_a else match.player_a
    picks = rng.choice(len(_TEMPLATES), size=min(n_sentences, len(_TEMPLATES)), replace=False)
    sentences = [
        _TEMPLATES[int(i)].format(
            winner=match.winner,
            loser=loser,
            round_name=match.round_name,
            year=match.year,
        )
        for i in picks
    ]
    return " ".join(sentences)
