"""Materialised association-path views.

The webspace engine materialises frequently-navigated association paths
(e.g. Player -> Match -> Video) into flat binding tables, so conceptual
queries over long paths do not re-walk the object graph.  Views are
rebuilt explicitly; staleness is tracked by instance object count.
"""

from __future__ import annotations

from repro.webspace.instances import WebspaceInstance, WebspaceObject
from repro.webspace.schema import SchemaViolation

__all__ = ["PathView"]


class PathView:
    """A materialised view over an association path.

    Args:
        instance: the webspace instance.
        root_class: the path's first class.
        path: ordered association names to follow from the root.
    """

    def __init__(self, instance: WebspaceInstance, root_class: str, path: list[str]):
        self.instance = instance
        self.root_class = root_class
        self.path = list(path)
        self._validate()
        self._rows: list[tuple[WebspaceObject, ...]] = []
        self._built_at = -1
        self.refresh()

    def _validate(self) -> None:
        schema = self.instance.schema
        current = self.root_class
        schema.cls(current)
        for name in self.path:
            assoc = schema.association(name)
            if assoc.source != current:
                raise SchemaViolation(
                    f"path step {name!r} does not start at {current!r}"
                )
            current = assoc.target
        self.leaf_class = current

    def refresh(self) -> None:
        """Rebuild the view from the current instance contents."""
        rows: list[tuple[WebspaceObject, ...]] = [
            (obj,) for obj in self.instance.objects(self.root_class)
        ]
        for name in self.path:
            rows = [
                row + (target,)
                for row in rows
                for target in self.instance.follow(name, row[-1])
            ]
        self._rows = rows
        self._built_at = sum(self.instance.counts().values())

    @property
    def stale(self) -> bool:
        """True when objects were added since the last refresh."""
        return sum(self.instance.counts().values()) != self._built_at

    def rows(self) -> list[tuple[WebspaceObject, ...]]:
        """The binding tuples (root, ..., leaf)."""
        return list(self._rows)

    def select(self, **root_equals) -> list[tuple[WebspaceObject, ...]]:
        """Rows whose root object matches the attribute equalities."""
        out = []
        for row in self._rows:
            root = row[0]
            if all(root.get(k) == v for k, v in root_equals.items()):
                out.append(row)
        return out

    def leaves_for(self, root: WebspaceObject) -> list[WebspaceObject]:
        """Distinct leaf objects reachable from *root* along the path."""
        seen: dict[int, WebspaceObject] = {}
        for row in self._rows:
            if row[0].oid == root.oid:
                seen.setdefault(row[-1].oid, row[-1])
        return list(seen.values())
