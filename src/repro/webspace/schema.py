"""Webspace schema: classes, attributes, associations.

The schema plays the role of the conceptual model the webspace method
recovers for a site: what concepts exist, what they record, and how they
connect.  Instances are validated against it, so the "hidden semantical
structure" of the site is explicit and queryable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AttributeDef", "AssociationDef", "ClassDef", "WebspaceSchema", "SchemaViolation"]

_ATTRIBUTE_TYPES = ("str", "int", "float", "bool")


class SchemaViolation(ValueError):
    """Raised when instances or queries do not fit the schema."""


@dataclass(frozen=True)
class AttributeDef:
    """One attribute of a concept class."""

    name: str
    type_name: str

    def __post_init__(self) -> None:
        if self.type_name not in _ATTRIBUTE_TYPES:
            raise SchemaViolation(
                f"attribute {self.name!r}: unknown type {self.type_name!r}"
            )

    def check(self, value) -> None:
        expected = {"str": str, "int": int, "float": (int, float), "bool": bool}[
            self.type_name
        ]
        if self.type_name in ("int", "bool") and isinstance(value, bool) != (
            self.type_name == "bool"
        ):
            raise SchemaViolation(
                f"attribute {self.name!r} expects {self.type_name}, got {value!r}"
            )
        if not isinstance(value, expected):
            raise SchemaViolation(
                f"attribute {self.name!r} expects {self.type_name}, got {value!r}"
            )


@dataclass(frozen=True)
class AssociationDef:
    """A named, directed association between two classes.

    Attributes:
        name: association name (navigation key).
        source: source class name.
        target: target class name.
        to_many: True for one-to-many (default), False for one-to-one.
    """

    name: str
    source: str
    target: str
    to_many: bool = True


@dataclass
class ClassDef:
    """A concept class: named attributes in declaration order."""

    name: str
    attributes: list[AttributeDef] = field(default_factory=list)

    def attribute(self, name: str) -> AttributeDef:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaViolation(f"class {self.name!r} has no attribute {name!r}")

    @property
    def attribute_names(self) -> list[str]:
        return [a.name for a in self.attributes]


class WebspaceSchema:
    """The schema of one webspace (one modelled site)."""

    def __init__(self, name: str):
        self.name = name
        self._classes: dict[str, ClassDef] = {}
        self._associations: dict[str, AssociationDef] = {}

    # -- construction ----------------------------------------------------- #

    def add_class(self, class_name: str, **attributes: str) -> ClassDef:
        """Declare a class with ``attribute=type`` keyword pairs.

        The class name is positional so an attribute may itself be
        called ``name`` (players have one).
        """
        if class_name in self._classes:
            raise SchemaViolation(f"class {class_name!r} already declared")
        cls = ClassDef(
            name=class_name,
            attributes=[AttributeDef(a, t) for a, t in attributes.items()],
        )
        self._classes[class_name] = cls
        return cls

    def add_association(
        self, name: str, source: str, target: str, to_many: bool = True
    ) -> AssociationDef:
        """Declare a directed association; both classes must exist."""
        if name in self._associations:
            raise SchemaViolation(f"association {name!r} already declared")
        for cls in (source, target):
            if cls not in self._classes:
                raise SchemaViolation(f"association {name!r}: unknown class {cls!r}")
        assoc = AssociationDef(name=name, source=source, target=target, to_many=to_many)
        self._associations[name] = assoc
        return assoc

    # -- lookup ------------------------------------------------------------#

    def cls(self, name: str) -> ClassDef:
        if name not in self._classes:
            raise SchemaViolation(f"unknown class {name!r}")
        return self._classes[name]

    def association(self, name: str) -> AssociationDef:
        if name not in self._associations:
            raise SchemaViolation(f"unknown association {name!r}")
        return self._associations[name]

    @property
    def class_names(self) -> list[str]:
        return sorted(self._classes)

    @property
    def association_names(self) -> list[str]:
        return sorted(self._associations)

    def associations_from(self, source: str) -> list[AssociationDef]:
        return [a for a in self._associations.values() if a.source == source]
