"""Relational compilation of the webspace.

"The database approach": the paper's engines run inside a main-memory
DBMS, so the webspace, too, must be queryable as *tables*, not only as
a Python object graph.  This module materialises a
:class:`~repro.webspace.instances.WebspaceInstance` into the column
store — one table per class, one link table per association — and
compiles :class:`~repro.webspace.query.ConceptQuery` objects into scans
and hash joins over those tables.

The compiled evaluation is verified (by tests and the E7 harness) to
return exactly the bindings the object-graph evaluator returns.
"""

from __future__ import annotations

from repro.storage.catalog import Catalog
from repro.webspace.instances import WebspaceInstance
from repro.webspace.query import ConceptQuery, Condition
from repro.webspace.schema import SchemaViolation

__all__ = ["instance_to_catalog", "RelationalConceptEvaluator"]

_TYPE_MAP = {"str": "str", "int": "int", "float": "float", "bool": "bool"}


def instance_to_catalog(instance: WebspaceInstance, catalog: Catalog | None = None) -> Catalog:
    """Materialise a webspace instance as relational tables.

    Per class ``C``: table ``ws_C`` with an ``oid`` column plus the
    class attributes.  Per association ``a``: table ``ws_link_a`` with
    ``source_oid`` / ``target_oid``.
    """
    catalog = catalog or Catalog()
    schema = instance.schema

    for class_name in schema.class_names:
        cls = schema.cls(class_name)
        table_schema = {"oid": "int"}
        for attribute in cls.attributes:
            table_schema[attribute.name] = _TYPE_MAP[attribute.type_name]
        table = catalog.create_table(f"ws_{class_name}", table_schema)
        for obj in instance.objects(class_name):
            row = {"oid": obj.oid}
            row.update(obj.attributes)
            table.append(row)

    for assoc_name in schema.association_names:
        table = catalog.create_table(
            f"ws_link_{assoc_name}", {"source_oid": "int", "target_oid": "int"}
        )
        assoc = schema.association(assoc_name)
        for source in instance.objects(assoc.source):
            for target in instance.follow(assoc_name, source):
                table.append({"source_oid": source.oid, "target_oid": target.oid})
        catalog.create_hash_index(f"ws_link_{assoc_name}", "source_oid")
    return catalog


class RelationalConceptEvaluator:
    """Evaluate concept queries against the relational webspace.

    Args:
        instance: the source instance (schema + objects, used for query
            validation and to hand back :class:`WebspaceObject` results).
        catalog: a catalogue produced by :func:`instance_to_catalog`
            (built on demand when omitted).
    """

    def __init__(self, instance: WebspaceInstance, catalog: Catalog | None = None):
        self.instance = instance
        self.catalog = catalog or instance_to_catalog(instance)

    def _matching_oids(self, class_name: str, conditions) -> list[int]:
        """Scan ``ws_<class>`` and filter by the conditions."""
        table = self.catalog.table(f"ws_{class_name}")
        out = []
        for row in table.scan():
            if all(self._holds(condition, row) for condition in conditions):
                out.append(row["oid"])
        return out

    @staticmethod
    def _holds(condition: Condition, row: dict) -> bool:
        if condition.attribute not in row:
            raise SchemaViolation(
                f"row has no attribute {condition.attribute!r}"
            )
        actual = row[condition.attribute]
        if condition.op == "=":
            return actual == condition.value
        if condition.op == "!=":
            return actual != condition.value
        if condition.op == "contains":
            return isinstance(actual, str) and str(condition.value).lower() in actual.lower()
        if condition.op == ">":
            return actual > condition.value
        if condition.op == ">=":
            return actual >= condition.value
        if condition.op == "<":
            return actual < condition.value
        return actual <= condition.value

    def run(self, query: ConceptQuery) -> list[tuple]:
        """Evaluate and return binding tuples of :class:`WebspaceObject`.

        The plan: filter the root table, then for each hop an indexed
        lookup into the association link table followed by a filtered
        probe of the target class table.
        """
        query._validate(self.instance)  # same validation as the graph path
        bindings: list[tuple[int, ...]] = [
            (oid,) for oid in self._matching_oids(query.root_class, query._root_conditions)
        ]
        for hop in query._hops:
            link_index = self.catalog.hash_index(f"ws_link_{hop.association}", "source_oid")
            link_table = self.catalog.table(f"ws_link_{hop.association}")
            target_table = self.catalog.table(f"ws_{hop.target_class}")
            target_rows = {row["oid"]: row for row in target_table.scan()}
            extended: list[tuple[int, ...]] = []
            for binding in bindings:
                for link_row_id in link_index.lookup(binding[-1]):
                    target_oid = link_table.row(int(link_row_id))["target_oid"]
                    row = target_rows.get(target_oid)
                    if row is None:
                        continue  # association target of a different class
                    if all(self._holds(c, row) for c in hop.conditions):
                        extended.append(binding + (target_oid,))
            bindings = extended
        return [
            tuple(self.instance.object(oid) for oid in binding) for binding in bindings
        ]

    def run_distinct_roots(self, query: ConceptQuery) -> list:
        """Distinct root objects with at least one binding."""
        seen: dict[int, object] = {}
        for binding in self.run(query):
            seen.setdefault(binding[0].oid, binding[0])
        return list(seen.values())
