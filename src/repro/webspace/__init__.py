"""The webspace method: conceptual modelling of a limited-domain site.

Contribution (3) of the paper: "for a more limited domain, like an
Intranet, conceptual modeling can offer additional and more powerful
query facilities" — the webspace method of van Zwol & Apers (CIKM 2000).

A *webspace schema* describes the concepts of the site (players,
matches, videos...), their attributes and associations.  Instances form
an object graph; HTML pages are a *lossy rendering* of that graph ("some
semantic concepts ... are lost due to the translation of the source data
into HTML"), which is why keyword search underperforms conceptual
queries — the effect the E7 benchmark measures.

- :mod:`repro.webspace.schema` — classes, attributes, associations,
- :mod:`repro.webspace.instances` — the webspace object graph,
- :mod:`repro.webspace.query` — conceptual query evaluation,
- :mod:`repro.webspace.views` — materialised association-path views,
- :mod:`repro.webspace.html` — the lossy HTML rendering.
"""

from repro.webspace.schema import (
    WebspaceSchema,
    ClassDef,
    AttributeDef,
    AssociationDef,
    SchemaViolation,
)
from repro.webspace.instances import WebspaceObject, WebspaceInstance
from repro.webspace.query import ConceptQuery, Condition
from repro.webspace.views import PathView
from repro.webspace.html import render_page, page_text

__all__ = [
    "WebspaceSchema",
    "ClassDef",
    "AttributeDef",
    "AssociationDef",
    "SchemaViolation",
    "WebspaceObject",
    "WebspaceInstance",
    "ConceptQuery",
    "Condition",
    "PathView",
    "render_page",
    "page_text",
]
