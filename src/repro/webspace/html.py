"""Lossy HTML rendering of webspace objects.

"Some semantic concepts, which were clearly available in the source data
used for this page, are lost due to the translation of the source data
into HTML."  This module performs exactly that translation: structured
objects become prose-and-markup pages in which attribute *names*
disappear (a page says "Serena Hingis-Practice" and "left-handed",
never ``handedness=left`` as a queryable field).  ``page_text`` strips
the markup, giving the bag-of-words view a crawler-based search engine
sees — the E7 keyword baseline.
"""

from __future__ import annotations

import re

from repro.webspace.instances import WebspaceObject

__all__ = ["render_page", "page_text"]

_TAG_RE = re.compile(r"<[^>]+>")


def _player_page(player: WebspaceObject) -> str:
    hand = "left-handed" if player.get("handedness") == "left" else "right-handed"
    gender = "women's" if player.get("gender") == "female" else "men's"
    titles = player.get("titles")
    title_sentence = (
        f"<p>{player.get('name')} has won the Australian Open {titles} "
        f"time{'s' if titles != 1 else ''}.</p>"
        if titles
        else f"<p>{player.get('name')} is yet to win a grand slam title.</p>"
    )
    return (
        f"<html><head><title>{player.get('name')}</title></head><body>"
        f"<h1>{player.get('name')}</h1>"
        f"<p>{player.get('name')} of {player.get('country')} competes in the "
        f"{gender} singles draw. A {hand} player, currently seeded "
        f"{player.get('seed')}.</p>"
        f"{title_sentence}"
        "</body></html>"
    )


def _match_page(match: WebspaceObject) -> str:
    return (
        f"<html><head><title>{match.get('title')}</title></head><body>"
        f"<h1>{match.get('title')}</h1>"
        f"<p>A {match.get('round')} match of the {match.get('year')} "
        f"Australian Open, won in {match.get('sets')} sets "
        f"({match.get('score')}).</p>"
        "</body></html>"
    )


def _video_page(video: WebspaceObject) -> str:
    return (
        f"<html><head><title>{video.get('name')}</title></head><body>"
        f"<h1>Video: {video.get('name')}</h1>"
        f"<p>Broadcast footage, {video.get('n_frames')} frames.</p>"
        "</body></html>"
    )


def _interview_page(interview: WebspaceObject) -> str:
    return (
        "<html><head><title>Interview</title></head><body>"
        "<h1>Interview transcript</h1>"
        f"<p>{interview.get('text')}</p>"
        "</body></html>"
    )


_RENDERERS = {
    "Player": _player_page,
    "Match": _match_page,
    "Video": _video_page,
    "Interview": _interview_page,
}


def render_page(obj: WebspaceObject) -> str:
    """Render one webspace object to its HTML page."""
    renderer = _RENDERERS.get(obj.class_name)
    if renderer is None:
        raise ValueError(f"no page template for class {obj.class_name!r}")
    return renderer(obj)


def page_text(html: str) -> str:
    """Strip markup: the text a crawler indexes."""
    return _TAG_RE.sub(" ", html)
