"""Conceptual queries over a webspace instance.

A :class:`ConceptQuery` selects objects of a class by attribute
conditions and navigates associations, each hop optionally filtered
again — the "more precise" query formulation the paper contrasts with
keyword search.  Example::

    ConceptQuery("Player")
        .where("handedness", "=", "left")
        .where("gender", "=", "female")
        .follow("played", "Match")
        .where("round", "=", "final")
        .run(instance)

returns the (Player, ..., Match) binding tuples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.webspace.instances import WebspaceInstance, WebspaceObject
from repro.webspace.schema import SchemaViolation

__all__ = ["Condition", "ConceptQuery"]

_OPS = ("=", "!=", ">", ">=", "<", "<=", "contains")


@dataclass(frozen=True)
class Condition:
    """One attribute condition: ``attribute op value``."""

    attribute: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise SchemaViolation(f"unknown operator {self.op!r}")

    def holds(self, obj: WebspaceObject) -> bool:
        actual = obj.get(self.attribute)
        if self.op == "=":
            return actual == self.value
        if self.op == "!=":
            return actual != self.value
        if self.op == "contains":
            return isinstance(actual, str) and str(self.value).lower() in actual.lower()
        if actual is None:
            return False
        if self.op == ">":
            return actual > self.value
        if self.op == ">=":
            return actual >= self.value
        if self.op == "<":
            return actual < self.value
        return actual <= self.value


@dataclass(frozen=True)
class _Hop:
    association: str
    target_class: str
    conditions: tuple[Condition, ...]


class ConceptQuery:
    """A fluent conceptual query: root class, conditions, navigation hops.

    The builder methods return ``self`` for chaining; ``run`` evaluates
    against an instance and returns binding tuples, one object per hop
    (root first).
    """

    def __init__(self, root_class: str):
        self.root_class = root_class
        self._root_conditions: list[Condition] = []
        self._hops: list[_Hop] = []

    def where(self, attribute: str, op: str, value) -> "ConceptQuery":
        """Add a condition to the most recent step (root or last hop)."""
        condition = Condition(attribute, op, value)
        if self._hops:
            last = self._hops[-1]
            self._hops[-1] = _Hop(
                association=last.association,
                target_class=last.target_class,
                conditions=last.conditions + (condition,),
            )
        else:
            self._root_conditions.append(condition)
        return self

    def follow(self, association: str, target_class: str) -> "ConceptQuery":
        """Navigate an association to *target_class*."""
        self._hops.append(
            _Hop(association=association, target_class=target_class, conditions=())
        )
        return self

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def run(self, instance: WebspaceInstance) -> list[tuple[WebspaceObject, ...]]:
        """Evaluate and return all binding tuples."""
        self._validate(instance)
        bindings: list[tuple[WebspaceObject, ...]] = [
            (obj,)
            for obj in instance.objects(self.root_class)
            if all(c.holds(obj) for c in self._root_conditions)
        ]
        for hop in self._hops:
            extended: list[tuple[WebspaceObject, ...]] = []
            for binding in bindings:
                for target in instance.follow(hop.association, binding[-1]):
                    if target.class_name != hop.target_class:
                        continue
                    if all(c.holds(target) for c in hop.conditions):
                        extended.append(binding + (target,))
            bindings = extended
        return bindings

    def run_distinct_roots(self, instance: WebspaceInstance) -> list[WebspaceObject]:
        """Evaluate and return the distinct root objects with any binding."""
        seen: dict[int, WebspaceObject] = {}
        for binding in self.run(instance):
            seen.setdefault(binding[0].oid, binding[0])
        return list(seen.values())

    def _validate(self, instance: WebspaceInstance) -> None:
        schema = instance.schema
        cls = schema.cls(self.root_class)
        for condition in self._root_conditions:
            cls.attribute(condition.attribute)
        current = self.root_class
        for hop in self._hops:
            assoc = schema.association(hop.association)
            if assoc.source != current:
                raise SchemaViolation(
                    f"association {hop.association!r} does not start at {current!r}"
                )
            if assoc.target != hop.target_class:
                raise SchemaViolation(
                    f"association {hop.association!r} ends at {assoc.target!r}, "
                    f"not {hop.target_class!r}"
                )
            target_cls = schema.cls(hop.target_class)
            for condition in hop.conditions:
                target_cls.attribute(condition.attribute)
            current = hop.target_class
