"""The webspace object graph: typed objects + association links."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.webspace.schema import SchemaViolation, WebspaceSchema

__all__ = ["WebspaceObject", "WebspaceInstance"]


@dataclass(frozen=True)
class WebspaceObject:
    """One instance of a schema class.

    Attributes:
        oid: instance-wide object id.
        class_name: the schema class.
        attributes: attribute name -> value, validated against the schema.
    """

    oid: int
    class_name: str
    attributes: dict[str, object] = field(default_factory=dict)

    def get(self, name: str):
        if name not in self.attributes:
            raise KeyError(f"object {self.oid} ({self.class_name}) has no {name!r}")
        return self.attributes[name]


class WebspaceInstance:
    """Objects and links conforming to a :class:`WebspaceSchema`."""

    def __init__(self, schema: WebspaceSchema):
        self.schema = schema
        self._objects: dict[int, WebspaceObject] = {}
        self._by_class: dict[str, list[int]] = {}
        # association name -> source oid -> [target oids]
        self._links: dict[str, dict[int, list[int]]] = {}
        self._next_oid = 1

    # -- population --------------------------------------------------------#

    def create(self, class_name: str, **attributes) -> WebspaceObject:
        """Create a validated object of *class_name*."""
        cls = self.schema.cls(class_name)
        unknown = set(attributes) - set(cls.attribute_names)
        if unknown:
            raise SchemaViolation(
                f"class {class_name!r} has no attributes {sorted(unknown)}"
            )
        missing = set(cls.attribute_names) - set(attributes)
        if missing:
            raise SchemaViolation(
                f"object of {class_name!r} missing attributes {sorted(missing)}"
            )
        for name, value in attributes.items():
            cls.attribute(name).check(value)
        obj = WebspaceObject(
            oid=self._next_oid, class_name=class_name, attributes=dict(attributes)
        )
        self._next_oid += 1
        self._objects[obj.oid] = obj
        self._by_class.setdefault(class_name, []).append(obj.oid)
        return obj

    def link(self, association: str, source: WebspaceObject, target: WebspaceObject) -> None:
        """Connect two objects along a declared association."""
        assoc = self.schema.association(association)
        if source.class_name != assoc.source:
            raise SchemaViolation(
                f"association {association!r} starts at {assoc.source!r}, "
                f"not {source.class_name!r}"
            )
        if target.class_name != assoc.target:
            raise SchemaViolation(
                f"association {association!r} ends at {assoc.target!r}, "
                f"not {target.class_name!r}"
            )
        targets = self._links.setdefault(association, {}).setdefault(source.oid, [])
        if not assoc.to_many and targets:
            raise SchemaViolation(
                f"association {association!r} is to-one and {source.oid} is already linked"
            )
        if target.oid not in targets:
            targets.append(target.oid)

    # -- navigation ----------------------------------------------------------#

    def object(self, oid: int) -> WebspaceObject:
        return self._objects[oid]

    def objects(self, class_name: str) -> list[WebspaceObject]:
        """All objects of one class, in creation order."""
        self.schema.cls(class_name)  # validates the name
        return [self._objects[oid] for oid in self._by_class.get(class_name, [])]

    def follow(self, association: str, source: WebspaceObject) -> list[WebspaceObject]:
        """Objects linked from *source* along *association*."""
        self.schema.association(association)
        oids = self._links.get(association, {}).get(source.oid, [])
        return [self._objects[oid] for oid in oids]

    def sources_of(self, association: str, target: WebspaceObject) -> list[WebspaceObject]:
        """Inverse navigation: objects linking *to* target."""
        self.schema.association(association)
        out = []
        for source_oid, targets in self._links.get(association, {}).items():
            if target.oid in targets:
                out.append(self._objects[source_oid])
        return out

    def counts(self) -> dict[str, int]:
        return {name: len(oids) for name, oids in sorted(self._by_class.items())}
