"""Named crash points for durability testing.

The storage write path (snapshot save, journal append) calls
:func:`trip` at the moments a real process is most likely to die:
before the temp file is written, after it, just before the atomic
rename, halfway through a journal append.  In production every call is
a no-op; a test arms a point with :class:`CrashPoint` and the next trip
raises :class:`SimulatedCrash`, which models ``kill -9`` — it derives
from :class:`BaseException` so no ``except Exception`` recovery code
can accidentally "survive" a crash that a real process would not.

This module lives in :mod:`repro.storage` (not :mod:`repro.faults`) so
the storage layer has no dependency on the grammar runtime; the fault
harness re-exports it.
"""

from __future__ import annotations

__all__ = [
    "SimulatedCrash",
    "CrashPoint",
    "trip",
    "is_armed",
    "armed_points",
    "SNAPSHOT_POINTS",
    "JOURNAL_POINTS",
    "STREAM_POINTS",
    "WRITE_POINTS",
]

#: Crash points in the snapshot write path, in execution order.
SNAPSHOT_POINTS = (
    "snapshot-pre-temp-write",
    "snapshot-post-temp-write",
    "snapshot-pre-rotate",
    "snapshot-pre-replace",
    "snapshot-post-replace",
)

#: Crash points in the journal append path, in execution order.
#: ``journal-mid-append`` writes *half* the record's bytes before
#: crashing — the torn-tail case replay must tolerate.
JOURNAL_POINTS = (
    "journal-pre-append",
    "journal-mid-append",
    "journal-post-append",
)

#: Crash points in the streaming chunk-commit path, in execution order.
#: A chunk lands as journal ``chunk_begin`` → model mutation → snapshot
#: save → journal ``chunk_commit`` → generation bump; these points sit
#: between those steps so the kill matrix can die at every edge.
STREAM_POINTS = (
    "chunk-post-begin",
    "chunk-pre-snapshot",
    "chunk-pre-commit",
    "chunk-pre-generation",
    "chunk-post-generation",
)

#: Every named crash point in the storage write path (the test matrix).
WRITE_POINTS = SNAPSHOT_POINTS + JOURNAL_POINTS + STREAM_POINTS

_armed: dict[str, list[int]] = {}  # point -> [skips remaining, trips remaining (-1 = forever)]


class SimulatedCrash(BaseException):
    """The process "died" at a named crash point.

    Deliberately *not* an :class:`Exception`: recovery code that
    catches broad exceptions must not be able to swallow a simulated
    kill, exactly as it could not swallow a real one.
    """

    def __init__(self, point: str):
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


class CrashPoint:
    """Arm one or more crash points for the duration of a ``with`` block.

    Args:
        points: crash point names (see :data:`WRITE_POINTS`).
        times: how many trips each point delivers before going quiet
            (``None`` = every trip while armed).
        after: how many trips each point lets through unharmed first —
            e.g. ``after=1`` survives the first snapshot save and dies
            during the second (a mid-batch checkpoint crash).

    Example::

        with CrashPoint("snapshot-pre-replace"):
            with pytest.raises(SimulatedCrash):
                save_catalog(catalog, path)
        load_catalog(path)  # the previous good snapshot
    """

    def __init__(self, *points: str, times: int | None = 1, after: int = 0):
        unknown = [p for p in points if p not in WRITE_POINTS]
        if unknown:
            raise ValueError(f"unknown crash point(s) {unknown}; see WRITE_POINTS")
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1 or None, got {times}")
        if after < 0:
            raise ValueError(f"after must be >= 0, got {after}")
        self.points = points
        self.times = times
        self.after = after

    def __enter__(self) -> "CrashPoint":
        for point in self.points:
            _armed[point] = [self.after, -1 if self.times is None else self.times]
        return self

    def __exit__(self, *exc_info) -> None:
        for point in self.points:
            _armed.pop(point, None)


def is_armed(point: str) -> bool:
    """True when *point* would crash on its next :func:`trip`."""
    entry = _armed.get(point)
    return entry is not None and entry[0] == 0 and entry[1] != 0


def armed_points() -> list[str]:
    """Currently armed crash points (test hygiene checks)."""
    return sorted(p for p in _armed if _armed[p][1] != 0)


def trip(point: str) -> None:
    """Crash here if *point* is armed; no-op otherwise."""
    entry = _armed.get(point)
    if entry is None:
        return
    if entry[0] > 0:  # still skipping early trips
        entry[0] -= 1
        return
    if entry[1] == 0:
        return
    if entry[1] > 0:
        entry[1] -= 1
    raise SimulatedCrash(point)
