"""Typed append-only columns.

Numeric and boolean columns keep their values in geometrically-grown
NumPy buffers so scans and filters are vectorised; string columns use a
Python list (strings do not vectorise usefully).  Row ids are implicit
positions — the column-store convention Monet made famous.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

__all__ = ["Column", "IntColumn", "FloatColumn", "StrColumn", "BoolColumn", "column_for"]


class Column:
    """Abstract column interface."""

    #: Type tag used by schemas and persistence ("int" / "float" / ...).
    type_name: str = ""

    def __len__(self) -> int:
        raise NotImplementedError

    def append(self, value) -> None:
        raise NotImplementedError

    def extend(self, values: Iterable) -> None:
        """Append many values; subclasses vectorise where they can."""
        for value in values:
            self.append(value)

    def get(self, row: int):
        raise NotImplementedError

    def values(self) -> np.ndarray | list:
        """All values as an array (numeric) or list (strings)."""
        raise NotImplementedError

    def take(self, rows: np.ndarray) -> list:
        """Values at the given row positions."""
        raise NotImplementedError

    def equals_mask(self, value) -> np.ndarray:
        """Boolean mask of rows equal to *value*."""
        raise NotImplementedError


class _NumpyColumn(Column):
    """Shared buffer management for NumPy-backed columns."""

    _dtype: np.dtype

    def __init__(self, initial: Iterable | None = None):
        self._buffer = np.empty(16, dtype=self._dtype)
        self._size = 0
        if initial is not None:
            for value in initial:
                self.append(value)

    def __len__(self) -> int:
        return self._size

    def _grow_to(self, capacity: int) -> None:
        if capacity <= len(self._buffer):
            return
        new_capacity = max(capacity, len(self._buffer) * 2)
        new_buffer = np.empty(new_capacity, dtype=self._dtype)
        new_buffer[: self._size] = self._buffer[: self._size]
        self._buffer = new_buffer

    def append(self, value) -> None:
        self._grow_to(self._size + 1)
        self._buffer[self._size] = self._cast(value)
        self._size += 1

    def extend(self, values: Iterable) -> None:
        """Bulk append through one buffer write (the snapshot-load path)."""
        array = self._cast_bulk(values)
        if len(array) == 0:
            return
        self._grow_to(self._size + len(array))
        self._buffer[self._size : self._size + len(array)] = array
        self._size += len(array)

    def _cast(self, value):
        raise NotImplementedError

    def _cast_bulk(self, values: Iterable) -> np.ndarray:
        """Cast a batch to the buffer dtype with `_cast`-equivalent strictness."""
        raise NotImplementedError

    def get(self, row: int):
        if not 0 <= row < self._size:
            raise IndexError(f"row {row} out of range 0..{self._size - 1}")
        return self._buffer[row].item()

    def values(self) -> np.ndarray:
        """A read-only view of the live portion of the buffer."""
        view = self._buffer[: self._size]
        view.flags.writeable = False
        return view

    def take(self, rows: np.ndarray) -> list:
        return [v.item() for v in self._buffer[: self._size][rows]]

    def equals_mask(self, value) -> np.ndarray:
        return self._buffer[: self._size] == self._cast(value)

    def range_mask(self, low=None, high=None) -> np.ndarray:
        """Mask of rows with ``low <= value <= high`` (either side optional)."""
        data = self._buffer[: self._size]
        mask = np.ones(self._size, dtype=bool)
        if low is not None:
            mask &= data >= self._cast(low)
        if high is not None:
            mask &= data <= self._cast(high)
        return mask


class IntColumn(_NumpyColumn):
    """64-bit integer column."""

    type_name = "int"
    _dtype = np.dtype(np.int64)

    def _cast(self, value) -> int:
        out = int(value)
        if isinstance(value, float) and value != out:
            raise TypeError(f"refusing lossy cast of {value} to int")
        return out

    def _cast_bulk(self, values: Iterable) -> np.ndarray:
        array = np.asarray(list(values))
        if array.size == 0:
            return np.empty(0, dtype=self._dtype)
        if not np.issubdtype(array.dtype, np.integer):
            raise TypeError(f"refusing lossy bulk cast of {array.dtype} to int")
        return array.astype(self._dtype)


class FloatColumn(_NumpyColumn):
    """Float64 column."""

    type_name = "float"
    _dtype = np.dtype(np.float64)

    def _cast(self, value) -> float:
        return float(value)

    def _cast_bulk(self, values: Iterable) -> np.ndarray:
        return np.asarray([float(v) for v in values], dtype=self._dtype)


class BoolColumn(_NumpyColumn):
    """Boolean column."""

    type_name = "bool"
    _dtype = np.dtype(bool)

    def _cast(self, value) -> bool:
        if not isinstance(value, (bool, np.bool_)):
            raise TypeError(f"expected a bool, got {value!r}")
        return bool(value)

    def _cast_bulk(self, values: Iterable) -> np.ndarray:
        values = list(values)
        for value in values:
            if not isinstance(value, (bool, np.bool_)):
                raise TypeError(f"expected a bool, got {value!r}")
        return np.asarray(values, dtype=self._dtype)


class StrColumn(Column):
    """String column (Python-list backed)."""

    type_name = "str"

    def __init__(self, initial: Iterable[str] | None = None):
        self._values: list[str] = []
        if initial is not None:
            for value in initial:
                self.append(value)

    def __len__(self) -> int:
        return len(self._values)

    def append(self, value) -> None:
        if not isinstance(value, str):
            raise TypeError(f"expected a str, got {value!r}")
        self._values.append(value)

    def extend(self, values: Iterable) -> None:
        values = list(values)
        for value in values:
            if not isinstance(value, str):
                raise TypeError(f"expected a str, got {value!r}")
        self._values.extend(values)

    def get(self, row: int) -> str:
        return self._values[row]

    def values(self) -> list[str]:
        return list(self._values)

    def take(self, rows: np.ndarray) -> list[str]:
        return [self._values[int(r)] for r in rows]

    def equals_mask(self, value) -> np.ndarray:
        return np.fromiter(
            (v == value for v in self._values), dtype=bool, count=len(self._values)
        )


_COLUMN_TYPES = {
    cls.type_name: cls for cls in (IntColumn, FloatColumn, StrColumn, BoolColumn)
}


def column_for(type_name: str) -> Column:
    """Instantiate an empty column of the given type tag."""
    if type_name not in _COLUMN_TYPES:
        raise ValueError(
            f"unknown column type {type_name!r}; expected one of {sorted(_COLUMN_TYPES)}"
        )
    return _COLUMN_TYPES[type_name]()
