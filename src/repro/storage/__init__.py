"""A small main-memory column store.

The paper's systems run inside Monet (the MonetDB predecessor): the
meta-index lives in database tables, and the IR engine of Blok et al.
runs "the database approach" — set-oriented operators over columns — in
main memory.  This package is the corresponding substrate:

- :mod:`repro.storage.columns` — typed, append-only columns over NumPy
  buffers,
- :mod:`repro.storage.table` — tables: schema, append, scan, select,
- :mod:`repro.storage.index` — hash and sorted secondary indexes,
- :mod:`repro.storage.catalog` — the named-table catalogue,
- :mod:`repro.storage.query` — joins and aggregate helpers,
- :mod:`repro.storage.persist` — crash-safe JSON persistence of a
  catalogue: atomic checksummed snapshots with generational fallback,
- :mod:`repro.storage.journal` — append-only indexing journal (the
  resume log of checkpointed library indexing),
- :mod:`repro.storage.crashpoints` — named crash points the durability
  test matrix kills the writer at.
"""

from repro.storage.columns import Column, IntColumn, FloatColumn, StrColumn, BoolColumn
from repro.storage.table import Table, Schema, SchemaError
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.catalog import Catalog
from repro.storage.query import hash_join, group_count, order_by
from repro.storage.persist import (
    CatalogCorruptionError,
    SnapshotReport,
    load_catalog,
    save_catalog,
    snapshot_generations,
    verify_snapshot,
)
from repro.storage.journal import IndexingJournal, JournalCorruptionError, JournalReport
from repro.storage.crashpoints import CrashPoint, SimulatedCrash

__all__ = [
    "Column",
    "IntColumn",
    "FloatColumn",
    "StrColumn",
    "BoolColumn",
    "Table",
    "Schema",
    "SchemaError",
    "HashIndex",
    "SortedIndex",
    "Catalog",
    "hash_join",
    "group_count",
    "order_by",
    "save_catalog",
    "load_catalog",
    "verify_snapshot",
    "snapshot_generations",
    "CatalogCorruptionError",
    "SnapshotReport",
    "IndexingJournal",
    "JournalCorruptionError",
    "JournalReport",
    "CrashPoint",
    "SimulatedCrash",
]
