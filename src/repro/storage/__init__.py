"""A small main-memory column store.

The paper's systems run inside Monet (the MonetDB predecessor): the
meta-index lives in database tables, and the IR engine of Blok et al.
runs "the database approach" — set-oriented operators over columns — in
main memory.  This package is the corresponding substrate:

- :mod:`repro.storage.columns` — typed, append-only columns over NumPy
  buffers,
- :mod:`repro.storage.table` — tables: schema, append, scan, select,
- :mod:`repro.storage.index` — hash and sorted secondary indexes,
- :mod:`repro.storage.catalog` — the named-table catalogue,
- :mod:`repro.storage.query` — joins and aggregate helpers,
- :mod:`repro.storage.persist` — JSON persistence of a catalogue.
"""

from repro.storage.columns import Column, IntColumn, FloatColumn, StrColumn, BoolColumn
from repro.storage.table import Table, Schema, SchemaError
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.catalog import Catalog
from repro.storage.query import hash_join, group_count, order_by
from repro.storage.persist import save_catalog, load_catalog

__all__ = [
    "Column",
    "IntColumn",
    "FloatColumn",
    "StrColumn",
    "BoolColumn",
    "Table",
    "Schema",
    "SchemaError",
    "HashIndex",
    "SortedIndex",
    "Catalog",
    "hash_join",
    "group_count",
    "order_by",
    "save_catalog",
    "load_catalog",
]
