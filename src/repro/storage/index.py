"""Secondary indexes over table columns.

A :class:`HashIndex` accelerates equality lookups; a :class:`SortedIndex`
answers range queries by binary search.  Indexes are built once over the
current table contents and refreshed explicitly — the incremental-update
bookkeeping the FDE needs is handled at the meta-index level, not here.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.storage.table import Table

__all__ = ["HashIndex", "SortedIndex"]


class HashIndex:
    """value -> row ids map over one column.

    Args:
        table: indexed table.
        column: indexed column name.
    """

    def __init__(self, table: Table, column: str):
        self.table = table
        self.column = column
        self._map: dict[object, list[int]] = {}
        self._indexed_rows = 0
        self.refresh()

    def refresh(self) -> None:
        """Index rows appended since the last refresh."""
        col = self.table.column(self.column)
        for row_id in range(self._indexed_rows, len(col)):
            self._map.setdefault(col.get(row_id), []).append(row_id)
        self._indexed_rows = len(col)

    @property
    def stale(self) -> bool:
        """True when the table has rows the index has not seen."""
        return self._indexed_rows < len(self.table)

    def lookup(self, value) -> np.ndarray:
        """Row ids with the given value (empty array when absent)."""
        return np.asarray(self._map.get(value, []), dtype=np.int64)

    def distinct_values(self) -> list:
        return list(self._map)


class SortedIndex:
    """Sorted (value, row id) pairs over one numeric column.

    Supports range lookups ``low <= value <= high`` in O(log n + k).
    """

    def __init__(self, table: Table, column: str):
        self.table = table
        self.column = column
        self._values: list = []
        self._row_ids: list[int] = []
        self.refresh()

    def refresh(self) -> None:
        """Rebuild from the current table contents."""
        col = self.table.column(self.column)
        pairs = sorted((col.get(i), i) for i in range(len(col)))
        self._values = [p[0] for p in pairs]
        self._row_ids = [p[1] for p in pairs]

    @property
    def stale(self) -> bool:
        return len(self._values) < len(self.table)

    def range(self, low=None, high=None) -> np.ndarray:
        """Row ids with ``low <= value <= high`` (either bound optional)."""
        lo = 0 if low is None else bisect.bisect_left(self._values, low)
        hi = len(self._values) if high is None else bisect.bisect_right(self._values, high)
        return np.asarray(sorted(self._row_ids[lo:hi]), dtype=np.int64)
