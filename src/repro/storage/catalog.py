"""The table catalogue: named tables + their indexes."""

from __future__ import annotations

from collections.abc import Mapping

from repro.storage.index import HashIndex, SortedIndex
from repro.storage.table import SchemaError, Table

__all__ = ["Catalog"]


class Catalog:
    """A registry of tables and their secondary indexes."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._indexes: dict[tuple[str, str, str], object] = {}
        self._generation = 0

    # -- generation stamping --------------------------------------------- #

    @property
    def generation(self) -> int:
        """Monotone change counter over the catalogue's contents.

        Every DDL change (table created or dropped) bumps it
        automatically; bulk writers stamp their commits explicitly via
        :meth:`bump_generation`.  Readers that cache derived state (the
        query-serving layer, materialised snapshots) key it on this
        counter so stale reads are structurally impossible.
        """
        return self._generation

    def bump_generation(self) -> int:
        """Stamp a commit: advance and return the generation counter."""
        self._generation += 1
        return self._generation

    # -- tables ---------------------------------------------------------- #

    def create_table(self, name: str, schema: Mapping[str, str]) -> Table:
        """Create and register a table; duplicate names are errors."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        self.bump_generation()
        return table

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise KeyError(f"no table named {name!r}")
        return self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def drop_table(self, name: str) -> None:
        """Remove a table and any indexes built on it."""
        if name not in self._tables:
            raise KeyError(f"no table named {name!r}")
        del self._tables[name]
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]
        self.bump_generation()

    # -- indexes ----------------------------------------------------------#

    def create_hash_index(self, table: str, column: str) -> HashIndex:
        key = (table, column, "hash")
        if key not in self._indexes:
            self._indexes[key] = HashIndex(self.table(table), column)
        return self._indexes[key]

    def create_sorted_index(self, table: str, column: str) -> SortedIndex:
        key = (table, column, "sorted")
        if key not in self._indexes:
            self._indexes[key] = SortedIndex(self.table(table), column)
        return self._indexes[key]

    def hash_index(self, table: str, column: str) -> HashIndex:
        """The hash index for (table, column), refreshed if stale."""
        index = self.create_hash_index(table, column)
        if index.stale:
            index.refresh()
        return index

    def sorted_index(self, table: str, column: str) -> SortedIndex:
        """The sorted index for (table, column), refreshed if stale."""
        index = self.create_sorted_index(table, column)
        if index.stale:
            index.refresh()
        return index
