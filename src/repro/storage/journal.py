"""Append-only indexing journal.

Indexing a library is a long batch of expensive per-video extractions;
the journal is the write-ahead record that makes the batch resumable.
Every record is one JSON object per line (``journal.jsonl`` style):

- ``{"op": "begin", "video": name}`` — extraction started;
- ``{"op": "commit", "video": name, "degraded": bool}`` — the video's
  meta-data is durably in a snapshot (the checkpointing indexer saves
  the snapshot *before* appending the commit record, so a commit is a
  promise the data survives);
- ``{"op": "note", ...}`` — free-form annotations (e.g. a snapshot
  marker);
- ``{"op": "chunk_begin", "stream": name, "seq": n, ...}`` /
  ``{"op": "chunk_commit", "stream": name, "seq": n, "watermark": w,
  "generation": g, ...}`` — streaming chunk-append progress.  A
  ``chunk_commit`` is written *after* the chunk's snapshot save, so it
  promises the snapshot holds every shot up to ``watermark``.  Chunk
  records carry a ``stream`` key (not ``video``) so they never perturb
  the video-level committed/interrupted sets.

Appends are flushed and fsynced, so after a crash the journal is intact
up to at most one torn final line.  :meth:`IndexingJournal.replay`
tolerates exactly that torn tail; corruption anywhere *else* is real
damage and raises :class:`JournalCorruptionError` (``repro fsck``
reports it).  :meth:`IndexingJournal.recover` truncates the torn tail
so a resumed process can append cleanly.

A video whose ``begin`` has no matching ``commit`` was in flight when
the process died; ``repro index --resume`` re-indexes exactly those
plus the never-begun remainder.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.storage.crashpoints import is_armed, trip

__all__ = ["IndexingJournal", "JournalCorruptionError", "JournalReport"]


class JournalCorruptionError(ValueError):
    """A journal line before the final one does not parse."""


@dataclass
class JournalReport:
    """`repro fsck` verdict for one journal file.

    Attributes:
        path: the file checked.
        records: parseable records, in order.
        torn_tail: True when the file ends in a partial line (the
            recoverable crash signature).
        corrupt_lines: 1-based numbers of unparseable non-final lines
            (unrecoverable damage).
        committed: video name -> degraded flag, from commit records.
        interrupted: videos with a begin but no commit, in begin order.
        chunk_commits: stream name -> chunk_commit records, in order.
        orphan_chunks: stream name -> seqs of chunk_begin records with
            no matching chunk_commit (in flight at a crash; recoverable,
            the snapshot's stream_state is the authoritative resume
            point).
    """

    path: Path
    records: list[dict] = field(default_factory=list)
    torn_tail: bool = False
    corrupt_lines: list[int] = field(default_factory=list)
    committed: dict[str, bool] = field(default_factory=dict)
    interrupted: list[str] = field(default_factory=list)
    chunk_commits: dict[str, list[dict]] = field(default_factory=dict)
    orphan_chunks: dict[str, list[int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.corrupt_lines


class IndexingJournal:
    """Durable append-only record of indexing progress.

    Appends are serialized on an internal lock, so stray concurrent
    writers cannot interleave half-records.  The parallel indexer does
    not rely on this: it funnels every journal write through its single
    committer thread, which is what keeps the record *order* (and hence
    the journal bytes) identical to a sequential run.

    Args:
        path: the journal file; created on first append.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()

    # -- writing -------------------------------------------------------- #

    def append(self, record: dict) -> None:
        """Append one record durably (fsync before returning)."""
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            trip("journal-pre-append")
            with open(self.path, "ab") as handle:
                if is_armed("journal-mid-append"):
                    # Simulate dying halfway through the write: flush a
                    # prefix of the record's bytes, then crash.
                    handle.write(data[: max(1, len(data) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
                    trip("journal-mid-append")
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            trip("journal-post-append")

    def begin(self, video: str) -> None:
        """Record that *video*'s extraction has started."""
        self.append({"op": "begin", "video": video})

    def commit(self, video: str, degraded: bool = False) -> None:
        """Record that *video*'s meta-data is durably snapshotted."""
        self.append({"op": "commit", "video": video, "degraded": degraded})

    def note(self, **fields) -> None:
        """Append a free-form annotation record."""
        self.append({"op": "note", **fields})

    def chunk_begin(self, stream: str, seq: int, start: int, stop: int) -> None:
        """Record that chunk *seq* of *stream* (frames [start, stop)) is
        being applied."""
        self.append(
            {"op": "chunk_begin", "stream": stream, "seq": seq, "start": start, "stop": stop}
        )

    def chunk_commit(
        self,
        stream: str,
        seq: int,
        watermark: int,
        frames: int,
        shots: int,
        generation: int,
    ) -> None:
        """Record that chunk *seq* of *stream* is durably snapshotted.

        ``watermark`` is the exactly-once resume point (frames below it
        are in the snapshot), ``frames``/``shots`` are cumulative stream
        totals and ``generation`` the post-commit indexer generation.
        """
        self.append(
            {
                "op": "chunk_commit",
                "stream": stream,
                "seq": seq,
                "watermark": watermark,
                "frames": frames,
                "shots": shots,
                "generation": generation,
            }
        )

    def clear(self) -> None:
        """Start a fresh journal (a new from-scratch indexing run)."""
        if self.path.exists():
            self.path.unlink()

    def recover(self) -> int:
        """Truncate a torn final line so appends stay parseable.

        Returns:
            How many torn bytes were dropped (0 for a clean journal).
        """
        if not self.path.exists():
            return 0
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return 0
        keep = data.rfind(b"\n") + 1  # 0 when no newline at all
        with open(self.path, "r+b") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())
        return len(data) - keep

    # -- reading -------------------------------------------------------- #

    def replay(self) -> list[dict]:
        """All records, tolerating (only) a torn final line.

        A missing journal replays as empty; an unparseable line that is
        *not* the torn tail raises :class:`JournalCorruptionError`.
        """
        report = self._scan()
        if report.corrupt_lines:
            raise JournalCorruptionError(
                f"journal {self.path} has unparseable line(s) "
                f"{report.corrupt_lines} before the tail"
            )
        return report.records

    def committed(self) -> dict[str, bool]:
        """video name -> degraded flag for every committed video."""
        out: dict[str, bool] = {}
        for record in self.replay():
            if record.get("op") == "commit":
                out[record["video"]] = bool(record.get("degraded", False))
        return out

    def interrupted(self) -> list[str]:
        """Videos whose begin record has no commit (in-flight at crash)."""
        begun: list[str] = []
        committed: set[str] = set()
        for record in self.replay():
            if record.get("op") == "begin":
                begun.append(record["video"])
            elif record.get("op") == "commit":
                committed.add(record["video"])
        return [name for name in begun if name not in committed]

    def verify(self) -> JournalReport:
        """Full integrity scan for ``repro fsck`` (never raises)."""
        return self._scan()

    def _scan(self) -> JournalReport:
        report = JournalReport(path=self.path)
        if not self.path.exists():
            return report
        data = self.path.read_bytes()
        if not data:
            return report
        report.torn_tail = not data.endswith(b"\n")
        lines = data.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        begun: list[str] = []
        chunk_begun: dict[str, list[int]] = {}
        for number, line in enumerate(lines, start=1):
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict) or "op" not in record:
                    raise ValueError("not a journal record")
            except (ValueError, UnicodeDecodeError):
                if number == len(lines) and report.torn_tail:
                    continue  # the recoverable torn tail
                report.corrupt_lines.append(number)
                continue
            report.records.append(record)
            if record["op"] == "begin":
                begun.append(record["video"])
            elif record["op"] == "commit":
                report.committed[record["video"]] = bool(record.get("degraded", False))
            elif record["op"] == "chunk_begin":
                chunk_begun.setdefault(record["stream"], []).append(int(record["seq"]))
            elif record["op"] == "chunk_commit":
                report.chunk_commits.setdefault(record["stream"], []).append(record)
        report.interrupted = [v for v in begun if v not in report.committed]
        for stream, seqs in chunk_begun.items():
            done = {int(r["seq"]) for r in report.chunk_commits.get(stream, [])}
            orphans = [s for s in seqs if s not in done]
            if orphans:
                report.orphan_chunks[stream] = orphans
        return report
