"""Tables: an ordered set of named, equal-length columns.

A table's schema maps column names to type tags.  Rows are appended as
dicts; scans produce either row dicts (convenient) or raw column arrays
(fast path for the IR engine).  Selection composes vectorised masks.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.storage.columns import Column, column_for

__all__ = ["Schema", "SchemaError", "Table"]

Schema = dict[str, str]


class SchemaError(ValueError):
    """Raised for schema violations (unknown columns, bad types...)."""


class Table:
    """A named table with typed columns.

    Args:
        name: table name (catalogue key).
        schema: ordered mapping of column name -> type tag
            (``int`` / ``float`` / ``str`` / ``bool``).
    """

    def __init__(self, name: str, schema: Mapping[str, str]):
        if not schema:
            raise SchemaError("a table needs at least one column")
        self.name = name
        self.schema: Schema = dict(schema)
        self._columns: dict[str, Column] = {
            col: column_for(type_name) for col, type_name in self.schema.items()
        }

    def __len__(self) -> int:
        first = next(iter(self._columns.values()))
        return len(first)

    @property
    def column_names(self) -> list[str]:
        return list(self.schema)

    def column(self, name: str) -> Column:
        """Direct access to a column (the fast path)."""
        if name not in self._columns:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return self._columns[name]

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def append(self, row: Mapping[str, object]) -> int:
        """Append one row; returns its row id.

        Every schema column must be present; extra keys are rejected so
        typos fail loudly.
        """
        extra = set(row) - set(self.schema)
        if extra:
            raise SchemaError(f"unknown columns {sorted(extra)} for table {self.name!r}")
        missing = set(self.schema) - set(row)
        if missing:
            raise SchemaError(f"missing columns {sorted(missing)} for table {self.name!r}")
        row_id = len(self)
        appended: list[str] = []
        try:
            for name, column in self._columns.items():
                column.append(row[name])
                appended.append(name)
        except Exception:
            # Keep columns equal length: a partial append would corrupt
            # the table, and columns are append-only, so rebuild them.
            for name in appended:
                column = self._columns[name]
                rebuilt = column_for(self.schema[name])
                keep = len(column) - 1
                for i in range(keep):
                    rebuilt.append(column.get(i))
                self._columns[name] = rebuilt
            raise
        return row_id

    def extend(self, rows: Iterable[Mapping[str, object]]) -> None:
        for row in rows:
            self.append(row)

    def load_columns(self, columns: Mapping[str, list]) -> None:
        """Bulk-load whole column value lists into an empty table.

        The snapshot-restore fast path: one vectorised buffer write per
        column instead of one :meth:`append` per row.  Every schema
        column must be present, all lists equal length, and the table
        empty (bulk loads are whole-table restores, not increments) —
        violations raise :class:`SchemaError` before anything mutates.
        """
        if len(self) != 0:
            raise SchemaError(f"table {self.name!r} is not empty; load_columns is a restore")
        extra = set(columns) - set(self.schema)
        if extra:
            raise SchemaError(f"unknown columns {sorted(extra)} for table {self.name!r}")
        missing = set(self.schema) - set(columns)
        if missing:
            raise SchemaError(f"missing columns {sorted(missing)} for table {self.name!r}")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"table {self.name!r} has ragged columns: {sorted(lengths)}")
        # Stage into fresh columns so a bad value leaves the table empty.
        staged = {name: column_for(self.schema[name]) for name in self.schema}
        for name, column in staged.items():
            column.extend(columns[name])
        self._columns = staged

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def row(self, row_id: int) -> dict[str, object]:
        if not 0 <= row_id < len(self):
            raise IndexError(f"row {row_id} out of range 0..{len(self) - 1}")
        return {name: col.get(row_id) for name, col in self._columns.items()}

    def rows(self, row_ids: Iterable[int] | np.ndarray) -> list[dict[str, object]]:
        ids = np.asarray(list(row_ids), dtype=np.int64)
        taken = {name: col.take(ids) for name, col in self._columns.items()}
        return [
            {name: taken[name][i] for name in self._columns} for i in range(len(ids))
        ]

    def scan(self) -> list[dict[str, object]]:
        """All rows as dicts (row order)."""
        return self.rows(np.arange(len(self)))

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #

    def mask(self, **equals) -> np.ndarray:
        """Conjunctive equality mask, e.g. ``table.mask(category="tennis")``."""
        out = np.ones(len(self), dtype=bool)
        for name, value in equals.items():
            out &= self.column(name).equals_mask(value)
        return out

    def select_ids(self, **equals) -> np.ndarray:
        """Row ids matching the conjunctive equality predicate."""
        return np.nonzero(self.mask(**equals))[0]

    def select(self, **equals) -> list[dict[str, object]]:
        """Rows matching the conjunctive equality predicate."""
        return self.rows(self.select_ids(**equals))

    def where(self, mask: np.ndarray) -> list[dict[str, object]]:
        """Rows selected by an externally-built boolean mask."""
        if mask.shape != (len(self),):
            raise ValueError(
                f"mask length {mask.shape} does not match table length {len(self)}"
            )
        return self.rows(np.nonzero(mask)[0])
