"""Set-oriented helpers over tables: joins, grouping, ordering.

These are the handful of relational operators the search engine and the
benchmarks need — a hash join for meta-index/webspace lookups, group
counting for reports, and top-k ordering.
"""

from __future__ import annotations


from repro.storage.table import Table

__all__ = ["hash_join", "group_count", "order_by"]


def hash_join(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    prefix: tuple[str, str] = ("l_", "r_"),
) -> list[dict[str, object]]:
    """Equi-join two tables on ``left.left_key == right.right_key``.

    The smaller side is hashed.  Output rows carry every column of both
    tables, name-disambiguated with the given prefixes only where the
    names collide.

    Returns:
        A list of joined row dicts (inner join).
    """
    if len(right) < len(left):
        # Hash the smaller side; swap prefixes so output naming is stable.
        swapped = hash_join(right, left, right_key, left_key, (prefix[1], prefix[0]))
        return swapped

    collisions = set(left.column_names) & set(right.column_names)

    def name(side: int, column: str) -> str:
        return f"{prefix[side]}{column}" if column in collisions else column

    hashed: dict[object, list[int]] = {}
    left_col = left.column(left_key)
    for row_id in range(len(left)):
        hashed.setdefault(left_col.get(row_id), []).append(row_id)

    out: list[dict[str, object]] = []
    right_col = right.column(right_key)
    for right_id in range(len(right)):
        matches = hashed.get(right_col.get(right_id))
        if not matches:
            continue
        right_row = right.row(right_id)
        for left_id in matches:
            left_row = left.row(left_id)
            joined = {name(0, k): v for k, v in left_row.items()}
            joined.update({name(1, k): v for k, v in right_row.items()})
            out.append(joined)
    return out


def group_count(table: Table, column: str) -> dict[object, int]:
    """Count rows per distinct value of *column*."""
    col = table.column(column)
    counts: dict[object, int] = {}
    for row_id in range(len(table)):
        value = col.get(row_id)
        counts[value] = counts.get(value, 0) + 1
    return counts


def order_by(
    rows: list[dict[str, object]], key: str, descending: bool = False, limit: int | None = None
) -> list[dict[str, object]]:
    """Sort row dicts by one key, optionally keeping only the top *limit*."""
    ordered = sorted(rows, key=lambda r: r[key], reverse=descending)
    return ordered if limit is None else ordered[:limit]
