"""Crash-safe catalogue persistence.

The meta-index survives process restarts by saving the catalogue to a
single JSON document: schemas plus column values.  JSON keeps the format
inspectable (handy when debugging detector output); the data volumes of
a video meta-index are tiny by database standards.

Extraction is the expensive step, so the snapshot is the durable asset —
and it is written accordingly (format version 2):

- **Atomic replace.** The document goes to ``<path>.tmp`` in the same
  directory, is flushed and fsynced, and only then renamed over *path*
  with :func:`os.replace`.  A reader never observes a half-written
  snapshot.
- **Checksummed.** The document embeds a CRC32 of its canonicalised
  table payload; :func:`load_catalog` recomputes it, so silent torn or
  bit-rotted snapshots are detected, not parsed into garbage.
- **Generational.** The previous snapshot is rotated to ``<path>.prev``
  before the replace.  When the current generation is missing or
  corrupt, :func:`load_catalog` falls back to the last good one, so a
  crash at *any* point of the write loses at most the newest save.

Every write step passes a named crash point
(:mod:`repro.storage.crashpoints`); the durability test matrix kills the
writer at each one and asserts recovery.  Version-1 documents (no
checksum, written non-atomically by earlier releases) still load.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.storage.catalog import Catalog
from repro.storage.crashpoints import trip
from repro.storage.table import SchemaError

__all__ = [
    "save_catalog",
    "load_catalog",
    "verify_snapshot",
    "snapshot_generations",
    "CatalogCorruptionError",
    "SnapshotReport",
]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


class CatalogCorruptionError(ValueError):
    """A snapshot file is torn, checksum-bad, ragged or unreadable."""


def _tables_document(catalog: Catalog) -> dict:
    return {
        name: {
            "schema": catalog.table(name).schema,
            "columns": {
                column: [
                    value.item() if hasattr(value, "item") else value
                    for value in catalog.table(name).column(column).values()
                ]
                for column in catalog.table(name).column_names
            },
        }
        for name in catalog.table_names
    }


def _payload_text(tables: dict) -> str:
    """Canonical serialisation of the tables payload (what the CRC covers)."""
    return json.dumps(tables, sort_keys=True, separators=(",", ":"))


def snapshot_generations(path: str | Path) -> tuple[Path, Path]:
    """The (current, previous) snapshot paths for *path*."""
    path = Path(path)
    return path, path.with_name(path.name + ".prev")


def save_catalog(catalog: Catalog, path: str | Path) -> None:
    """Atomically write every table of *catalog* to *path*.

    Write protocol: serialise, write + fsync ``<path>.tmp``, rotate the
    live snapshot to ``<path>.prev``, then ``os.replace`` the temp file
    over *path*.  A crash anywhere leaves either the new snapshot or
    the previous good generation loadable — never a torn file at the
    live path.
    """
    path, prev = snapshot_generations(path)
    tables = _tables_document(catalog)
    payload = _payload_text(tables)
    document = {
        "version": _FORMAT_VERSION,
        "checksum": zlib.crc32(payload.encode("utf-8")),
        "tables": tables,
    }
    text = json.dumps(document)

    trip("snapshot-pre-temp-write")
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    trip("snapshot-post-temp-write")
    trip("snapshot-pre-rotate")
    if path.exists():
        os.replace(path, prev)
    trip("snapshot-pre-replace")
    os.replace(tmp, path)
    trip("snapshot-post-replace")
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Flush the directory entry so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms/filesystems without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _read_document(path: Path) -> dict:
    """Parse and checksum-verify one snapshot file (no fallback)."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CatalogCorruptionError(f"cannot read snapshot {path}: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CatalogCorruptionError(f"torn/unparseable snapshot {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise CatalogCorruptionError(f"snapshot {path} is not a JSON object")
    version = document.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise CatalogCorruptionError(
            f"unsupported catalogue format version {version!r} in {path}"
        )
    if version >= 2:
        expected = document.get("checksum")
        actual = zlib.crc32(_payload_text(document.get("tables", {})).encode("utf-8"))
        if expected != actual:
            raise CatalogCorruptionError(
                f"checksum mismatch in {path}: stored {expected!r}, computed {actual}"
            )
    return document


def _catalog_from_document(document: dict, source: Path) -> Catalog:
    """Bulk-load a parsed document into a fresh catalogue."""
    catalog = Catalog()
    for name, payload in document["tables"].items():
        table = catalog.create_table(name, payload["schema"])
        columns = dict(payload["columns"])
        bools = {c for c, t in payload["schema"].items() if t == "bool"}
        for column in bools:
            # Version-1 writers serialised numpy bools leniently.
            columns[column] = [bool(v) for v in columns.get(column, [])]
        try:
            table.load_columns(columns)
        except (SchemaError, TypeError) as exc:
            raise CatalogCorruptionError(f"snapshot {source}: {exc}") from exc
    return catalog


def load_catalog(path: str | Path) -> Catalog:
    """Rebuild a catalogue from a snapshot written by :func:`save_catalog`.

    Tries the live generation first; when it is missing, torn or fails
    its checksum, falls back to ``<path>.prev`` (the rotation target of
    the last successful save).  Raises :class:`CatalogCorruptionError`
    when no generation is loadable, or :class:`FileNotFoundError` when
    neither file exists at all.
    """
    current, prev = snapshot_generations(path)
    if not current.exists() and not prev.exists():
        raise FileNotFoundError(f"no snapshot at {current} (nor {prev.name})")
    errors: list[str] = []
    for candidate in (current, prev):
        if not candidate.exists():
            errors.append(f"{candidate.name}: missing")
            continue
        try:
            return _catalog_from_document(_read_document(candidate), candidate)
        except CatalogCorruptionError as exc:
            errors.append(str(exc))
    raise CatalogCorruptionError(
        "no loadable snapshot generation: " + " | ".join(errors)
    )


@dataclass
class SnapshotReport:
    """`repro fsck` verdict for one snapshot file.

    Attributes:
        path: the file checked.
        ok: loadable end to end (parse + checksum + column shape).
        version: format version, when parseable.
        n_tables: table count, when loadable.
        n_rows: total row count, when loadable.
        error: what failed, when not ok.
    """

    path: Path
    ok: bool
    version: int | None = None
    n_tables: int = 0
    n_rows: int = 0
    error: str | None = None


def verify_snapshot(path: str | Path) -> SnapshotReport:
    """Fully validate one snapshot file without fallback (fsck helper)."""
    path = Path(path)
    if not path.exists():
        return SnapshotReport(path=path, ok=False, error="missing")
    try:
        document = _read_document(path)
        catalog = _catalog_from_document(document, path)
    except CatalogCorruptionError as exc:
        version = None
        try:
            version = json.loads(path.read_text(encoding="utf-8")).get("version")
        except Exception:  # noqa: BLE001 — best-effort detail for the report
            pass
        return SnapshotReport(path=path, ok=False, version=version, error=str(exc))
    return SnapshotReport(
        path=path,
        ok=True,
        version=document["version"],
        n_tables=len(catalog.table_names),
        n_rows=sum(len(catalog.table(name)) for name in catalog.table_names),
    )
