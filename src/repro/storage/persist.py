"""Catalogue persistence.

The meta-index survives process restarts by saving the catalogue to a
single JSON document: schemas plus column values.  JSON keeps the format
inspectable (handy when debugging detector output); the data volumes of
a video meta-index are tiny by database standards.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.storage.catalog import Catalog

__all__ = ["save_catalog", "load_catalog"]

_FORMAT_VERSION = 1


def save_catalog(catalog: Catalog, path: str | Path) -> None:
    """Write every table of *catalog* to *path* as JSON."""
    document = {"version": _FORMAT_VERSION, "tables": {}}
    for name in catalog.table_names:
        table = catalog.table(name)
        document["tables"][name] = {
            "schema": table.schema,
            "columns": {
                column: [
                    value.item() if hasattr(value, "item") else value
                    for value in table.column(column).values()
                ]
                for column in table.column_names
            },
        }
    Path(path).write_text(json.dumps(document))


def load_catalog(path: str | Path) -> Catalog:
    """Rebuild a catalogue from a JSON document written by :func:`save_catalog`."""
    document = json.loads(Path(path).read_text())
    version = document.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported catalogue format version {version!r}")
    catalog = Catalog()
    for name, payload in document["tables"].items():
        table = catalog.create_table(name, payload["schema"])
        columns = payload["columns"]
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"table {name!r} has ragged columns: {lengths}")
        n_rows = lengths.pop() if lengths else 0
        bools = {c for c, t in payload["schema"].items() if t == "bool"}
        for row_id in range(n_rows):
            row = {
                column: (bool(values[row_id]) if column in bools else values[row_id])
                for column, values in columns.items()
            }
            table.append(row)
    return catalog
