"""Command-line interface for the digital library.

Subcommands::

    repro figure1
        Print the paper's Figure 1 (tennis FDE detector dependencies)
        as Graphviz DOT.

    repro index --seed S --videos N --out META.json
        Build the synthetic tournament (seed S), index the first N
        planned videos through the tennis FDE, and save the meta-index.

    repro query --seed S --metaindex META.json "SCENES WHERE ..."
        Rebuild the tournament from the same seed, restore the saved
        meta-index, and answer a combined query written in the query
        language of :mod:`repro.library.parser`.

    repro demo --seed S
        The motivating query of the paper, end to end (indexes the
        qualifying videos on the fly).

    repro export-mpeg7 --metaindex META.json --out DOC.xml
        Convert a saved meta-index to MPEG-7-style XML.

    repro build-site --seed S --out DIR
        Write the generated tournament web site as HTML files.

    repro stats --metaindex META.json
        Summarise a saved meta-index (shots per category, events per
        label, track coverage, event density).

    repro health --seed S --videos N
        Index N videos under a chosen fault-tolerance policy and print
        the per-detector indexing health report.

    repro faults --seed S --videos N --rate R
        Fault-injection run: index N videos while randomly sabotaging
        detectors at rate R, then report health, degraded videos and
        meta-data completeness (see repro.faults).

All commands are deterministic in their seeds.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Content-based video indexing for digital library search (ICDE 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figure1", help="print Figure 1 as Graphviz DOT")

    index_cmd = sub.add_parser("index", help="index tournament videos into a meta-index file")
    index_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")
    index_cmd.add_argument("--videos", type=int, default=2, help="how many planned videos to index")
    index_cmd.add_argument("--out", required=True, help="output meta-index JSON path")

    query_cmd = sub.add_parser("query", help="answer a combined query against a saved meta-index")
    query_cmd.add_argument("--seed", type=int, default=7, help="dataset seed (must match index run)")
    query_cmd.add_argument("--metaindex", required=True, help="meta-index JSON path")
    query_cmd.add_argument("text", help='query, e.g. \'SCENES WHERE event = net_play\'')

    demo_cmd = sub.add_parser("demo", help="run the paper's motivating query end to end")
    demo_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")

    export_cmd = sub.add_parser("export-mpeg7", help="convert a saved meta-index to MPEG-7 XML")
    export_cmd.add_argument("--metaindex", required=True, help="meta-index JSON path")
    export_cmd.add_argument("--out", required=True, help="output XML path")

    site_cmd = sub.add_parser("build-site", help="write the tournament web site as HTML files")
    site_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")
    site_cmd.add_argument("--out", required=True, help="output directory")

    stats_cmd = sub.add_parser("stats", help="summarise a saved meta-index")
    stats_cmd.add_argument("--metaindex", required=True, help="meta-index JSON path")

    def add_policy_options(cmd, default_policy: str) -> None:
        cmd.add_argument(
            "--policy",
            choices=("fail_fast", "skip_subtree", "quarantine"),
            default=default_policy,
            help="failure-isolation policy",
        )
        cmd.add_argument("--retries", type=int, default=1, help="max retries per detector")
        cmd.add_argument(
            "--backoff", type=float, default=0.01, help="base retry backoff (seconds)"
        )
        cmd.add_argument(
            "--timeout", type=float, default=None, help="per-attempt budget (seconds)"
        )
        cmd.add_argument(
            "--deadline", type=float, default=None, help="per-video budget (seconds)"
        )
        cmd.add_argument(
            "--quarantine-after",
            type=int,
            default=3,
            help="consecutive failing videos before a detector is quarantined",
        )

    health_cmd = sub.add_parser(
        "health", help="index videos and report per-detector indexing health"
    )
    health_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")
    health_cmd.add_argument("--videos", type=int, default=2, help="how many videos to index")
    add_policy_options(health_cmd, default_policy="skip_subtree")

    faults_cmd = sub.add_parser(
        "faults", help="index videos with randomly injected detector failures"
    )
    faults_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")
    faults_cmd.add_argument("--videos", type=int, default=2, help="how many videos to index")
    faults_cmd.add_argument(
        "--rate", type=float, default=0.25, help="fault probability per (detector, video)"
    )
    faults_cmd.add_argument(
        "--fault-seed", type=int, default=0, help="seed of the fault plan sampler"
    )
    faults_cmd.add_argument(
        "--error",
        choices=("transient", "permanent", "timeout"),
        default="transient",
        help="error class the injected faults raise",
    )
    faults_cmd.add_argument(
        "--times",
        type=int,
        default=1,
        help="attempts each fault sabotages (0 = every attempt, forever)",
    )
    add_policy_options(faults_cmd, default_policy="skip_subtree")

    return parser


def _policy_from_args(args):
    from repro.grammar.runtime import RunPolicy

    return RunPolicy(
        max_retries=args.retries,
        backoff_base=args.backoff,
        timeout=args.timeout,
        deadline=args.deadline,
        isolation=args.policy,
        quarantine_after=args.quarantine_after,
    )


def _cmd_figure1(_args) -> int:
    from repro.grammar.dot import figure_one

    print(figure_one())
    return 0


def _cmd_index(args) -> int:
    from repro.dataset import build_australian_open
    from repro.library import DigitalLibraryEngine
    from repro.library.persistence import save_model

    dataset = build_australian_open(seed=args.seed)
    engine = DigitalLibraryEngine(dataset)
    for plan in dataset.video_plans[: args.videos]:
        print(f"indexing {plan.name} ...")
        engine.indexer.index_plan(plan)
    save_model(engine.indexer.model, args.out)
    counts = engine.indexer.model.counts()
    print(
        f"saved {args.out}: {counts['raw']} videos, {counts['feature']} shots, "
        f"{counts['object']} objects, {counts['event']} events"
    )
    return 0


def _cmd_query(args) -> int:
    from repro.dataset import build_australian_open
    from repro.library import DigitalLibraryEngine, parse_query
    from repro.library.persistence import load_model

    dataset = build_australian_open(seed=args.seed)
    engine = DigitalLibraryEngine(dataset)
    restored = engine.indexer.restore(load_model(args.metaindex))
    print(f"restored {restored} indexed video(s)")
    query = parse_query(args.text)
    results = engine.search(query)
    if not results:
        print("no scenes found")
        return 1
    for scene in results:
        players = ", ".join(scene.players) if scene.players else "-"
        print(
            f"{scene.video_name}  frames [{scene.start},{scene.stop})  "
            f"{scene.event_label or 'whole video'}  score={scene.score:.2f}  {players}"
        )
    return 0


def _cmd_demo(args) -> int:
    from repro.dataset import build_australian_open
    from repro.library import DigitalLibraryEngine, LibraryQuery

    dataset = build_australian_open(seed=args.seed)
    engine = DigitalLibraryEngine(dataset)
    qualifying = engine.concept_players(
        {"handedness": "left", "gender": "female", "past_winner": True}
    )
    names = [p.get("name") for p in qualifying]
    print(f"left-handed female past champions: {names}")
    plans = [
        plan
        for plan in dataset.video_plans
        if any(name in plan.match_title for name in names)
    ][:2]
    for plan in plans:
        print(f"indexing {plan.name} ...")
        engine.indexer.index_plan(plan)
    query = LibraryQuery(
        player={"handedness": "left", "gender": "female", "past_winner": True},
        event="net_play",
    )
    results = engine.search(query)
    print(f"\n{len(results)} scene(s):")
    for scene in results:
        print(
            f"  {scene.video_name}  frames [{scene.start},{scene.stop})  "
            f"{', '.join(scene.players)}"
        )
    return 0


def _cmd_export_mpeg7(args) -> int:
    from pathlib import Path

    from repro.core.mpeg7 import export_mpeg7
    from repro.library.persistence import load_model

    model = load_model(args.metaindex)
    Path(args.out).write_text(export_mpeg7(model))
    print(f"wrote {args.out} ({model.counts()})")
    return 0


def _cmd_build_site(args) -> int:
    from repro.dataset import build_australian_open
    from repro.dataset.site import write_site

    dataset = build_australian_open(seed=args.seed)
    paths = write_site(dataset, args.out)
    print(f"wrote {len(paths)} pages under {args.out}")
    return 0


def _cmd_stats(args) -> int:
    from repro.library.persistence import load_model
    from repro.library.stats import collect_stats, format_stats

    model = load_model(args.metaindex)
    print(format_stats(collect_stats(model)))
    return 0


def _index_with_policy(args, make_fault_plan=None) -> int:
    """Shared driver of ``health`` and ``faults``: index and report."""
    from repro.dataset import build_australian_open
    from repro.grammar.runtime import format_health_table
    from repro.grammar.tennis import build_tennis_fde
    from repro.library import DigitalLibraryEngine

    dataset = build_australian_open(seed=args.seed)
    fde = build_tennis_fde(policy=_policy_from_args(args))
    engine = DigitalLibraryEngine(dataset, fde=fde)
    plans = dataset.video_plans[: args.videos]
    fault_plan = (
        make_fault_plan([plan.name for plan in plans]) if make_fault_plan else None
    )
    injector = fault_plan.install(fde.registry) if fault_plan is not None else None

    rolled_back = 0
    for plan in plans:
        try:
            engine.indexer.index_plan(plan)
        except Exception as exc:  # fail_fast rollback: the batch goes on
            rolled_back += 1
            print(f"{plan.name}: rolled back — {exc}")
    if injector is not None:
        print(f"injected {injector.injected} fault(s) from {len(fault_plan.specs)} spec(s)")

    reports = engine.indexing_health()
    print(format_health_table(reports))
    if rolled_back:
        print(f"rolled back: {rolled_back} video(s)")
    quarantined = fde.runner.quarantined_detectors
    if quarantined:
        print(f"quarantined detectors: {', '.join(quarantined)}")
    counts = engine.indexer.model.counts()
    print(
        f"meta-index: {counts['raw']} videos, {counts['feature']} shots, "
        f"{counts['object']} objects, {counts['event']} events"
    )
    return 0


def _cmd_health(args) -> int:
    return _index_with_policy(args)


def _cmd_faults(args) -> int:
    from repro.faults import FaultPlan
    from repro.grammar.runtime import (
        DetectorTimeoutError,
        PermanentDetectorError,
        TransientDetectorError,
    )

    error = {
        "transient": TransientDetectorError,
        "permanent": PermanentDetectorError,
        "timeout": DetectorTimeoutError,
    }[args.error]

    def make_fault_plan(names: list[str]) -> FaultPlan:
        return FaultPlan.random(
            detectors=["segment", "tennis", "shape", "rules"],
            videos=names,
            rate=args.rate,
            seed=args.fault_seed,
            error=error,
            times=args.times if args.times > 0 else None,
        )

    return _index_with_policy(args, make_fault_plan=make_fault_plan)


_COMMANDS = {
    "figure1": _cmd_figure1,
    "index": _cmd_index,
    "query": _cmd_query,
    "demo": _cmd_demo,
    "export-mpeg7": _cmd_export_mpeg7,
    "build-site": _cmd_build_site,
    "stats": _cmd_stats,
    "health": _cmd_health,
    "faults": _cmd_faults,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
