"""Command-line interface for the digital library.

Subcommands::

    repro figure1
        Print the paper's Figure 1 (tennis FDE detector dependencies)
        as Graphviz DOT.

    repro index --seed S --videos N --out META.json
        Build the synthetic tournament (seed S), index the first N
        planned videos through the tennis FDE, and save the meta-index.

    repro query --seed S --metaindex META.json "SCENES WHERE ..."
        Rebuild the tournament from the same seed, restore the saved
        meta-index, and answer a combined query written in the query
        language of :mod:`repro.library.parser`.

    repro demo --seed S
        The motivating query of the paper, end to end (indexes the
        qualifying videos on the fly).

    repro export-mpeg7 --metaindex META.json --out DOC.xml
        Convert a saved meta-index to MPEG-7-style XML.

    repro build-site --seed S --out DIR
        Write the generated tournament web site as HTML files.

    repro stats --metaindex META.json
        Summarise a saved meta-index (shots per category, events per
        label, track coverage, event density).

All commands are deterministic in their seeds.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Content-based video indexing for digital library search (ICDE 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figure1", help="print Figure 1 as Graphviz DOT")

    index_cmd = sub.add_parser("index", help="index tournament videos into a meta-index file")
    index_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")
    index_cmd.add_argument("--videos", type=int, default=2, help="how many planned videos to index")
    index_cmd.add_argument("--out", required=True, help="output meta-index JSON path")

    query_cmd = sub.add_parser("query", help="answer a combined query against a saved meta-index")
    query_cmd.add_argument("--seed", type=int, default=7, help="dataset seed (must match index run)")
    query_cmd.add_argument("--metaindex", required=True, help="meta-index JSON path")
    query_cmd.add_argument("text", help='query, e.g. \'SCENES WHERE event = net_play\'')

    demo_cmd = sub.add_parser("demo", help="run the paper's motivating query end to end")
    demo_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")

    export_cmd = sub.add_parser("export-mpeg7", help="convert a saved meta-index to MPEG-7 XML")
    export_cmd.add_argument("--metaindex", required=True, help="meta-index JSON path")
    export_cmd.add_argument("--out", required=True, help="output XML path")

    site_cmd = sub.add_parser("build-site", help="write the tournament web site as HTML files")
    site_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")
    site_cmd.add_argument("--out", required=True, help="output directory")

    stats_cmd = sub.add_parser("stats", help="summarise a saved meta-index")
    stats_cmd.add_argument("--metaindex", required=True, help="meta-index JSON path")

    return parser


def _cmd_figure1(_args) -> int:
    from repro.grammar.dot import figure_one

    print(figure_one())
    return 0


def _cmd_index(args) -> int:
    from repro.dataset import build_australian_open
    from repro.library import DigitalLibraryEngine
    from repro.library.persistence import save_model

    dataset = build_australian_open(seed=args.seed)
    engine = DigitalLibraryEngine(dataset)
    for plan in dataset.video_plans[: args.videos]:
        print(f"indexing {plan.name} ...")
        engine.indexer.index_plan(plan)
    save_model(engine.indexer.model, args.out)
    counts = engine.indexer.model.counts()
    print(
        f"saved {args.out}: {counts['raw']} videos, {counts['feature']} shots, "
        f"{counts['object']} objects, {counts['event']} events"
    )
    return 0


def _cmd_query(args) -> int:
    from repro.dataset import build_australian_open
    from repro.library import DigitalLibraryEngine, parse_query
    from repro.library.persistence import load_model

    dataset = build_australian_open(seed=args.seed)
    engine = DigitalLibraryEngine(dataset)
    restored = engine.indexer.restore(load_model(args.metaindex))
    print(f"restored {restored} indexed video(s)")
    query = parse_query(args.text)
    results = engine.search(query)
    if not results:
        print("no scenes found")
        return 1
    for scene in results:
        players = ", ".join(scene.players) if scene.players else "-"
        print(
            f"{scene.video_name}  frames [{scene.start},{scene.stop})  "
            f"{scene.event_label or 'whole video'}  score={scene.score:.2f}  {players}"
        )
    return 0


def _cmd_demo(args) -> int:
    from repro.dataset import build_australian_open
    from repro.library import DigitalLibraryEngine, LibraryQuery

    dataset = build_australian_open(seed=args.seed)
    engine = DigitalLibraryEngine(dataset)
    qualifying = engine.concept_players(
        {"handedness": "left", "gender": "female", "past_winner": True}
    )
    names = [p.get("name") for p in qualifying]
    print(f"left-handed female past champions: {names}")
    plans = [
        plan
        for plan in dataset.video_plans
        if any(name in plan.match_title for name in names)
    ][:2]
    for plan in plans:
        print(f"indexing {plan.name} ...")
        engine.indexer.index_plan(plan)
    query = LibraryQuery(
        player={"handedness": "left", "gender": "female", "past_winner": True},
        event="net_play",
    )
    results = engine.search(query)
    print(f"\n{len(results)} scene(s):")
    for scene in results:
        print(
            f"  {scene.video_name}  frames [{scene.start},{scene.stop})  "
            f"{', '.join(scene.players)}"
        )
    return 0


def _cmd_export_mpeg7(args) -> int:
    from pathlib import Path

    from repro.core.mpeg7 import export_mpeg7
    from repro.library.persistence import load_model

    model = load_model(args.metaindex)
    Path(args.out).write_text(export_mpeg7(model))
    print(f"wrote {args.out} ({model.counts()})")
    return 0


def _cmd_build_site(args) -> int:
    from repro.dataset import build_australian_open
    from repro.dataset.site import write_site

    dataset = build_australian_open(seed=args.seed)
    paths = write_site(dataset, args.out)
    print(f"wrote {len(paths)} pages under {args.out}")
    return 0


def _cmd_stats(args) -> int:
    from repro.library.persistence import load_model
    from repro.library.stats import collect_stats, format_stats

    model = load_model(args.metaindex)
    print(format_stats(collect_stats(model)))
    return 0


_COMMANDS = {
    "figure1": _cmd_figure1,
    "index": _cmd_index,
    "query": _cmd_query,
    "demo": _cmd_demo,
    "export-mpeg7": _cmd_export_mpeg7,
    "build-site": _cmd_build_site,
    "stats": _cmd_stats,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
