"""Command-line interface for the digital library.

Subcommands::

    repro figure1
        Print the paper's Figure 1 (tennis FDE detector dependencies)
        as Graphviz DOT.

    repro index --seed S --videos N --out META.json [--resume] [--workers N]
        Build the synthetic tournament (seed S), index the first N
        planned videos through the tennis FDE, and save the meta-index.
        The snapshot is written atomically after *every* video and an
        append-only journal (META.json.journal) records begin/commit
        per video; after a crash, ``--resume`` restores the last good
        snapshot and re-indexes only uncommitted videos.  ``--workers``
        stages videos concurrently (snapshot bytes stay identical).

    repro query --seed S --metaindex META.json "SCENES WHERE ..."
        Rebuild the tournament from the same seed, restore the saved
        meta-index, and answer a combined query written in the query
        language of :mod:`repro.library.parser`.

    repro ann-build --seed S --metaindex META.json [--cells C] [--ann-seed R]
        Embed every indexed shot (histogram + moments + shape, schema
        v1), build the IVF ANN index and persist it into the snapshot's
        checksummed ``ann_*`` tables (validated by ``repro fsck``).

    repro search --seed S --metaindex META.json --like VIDEO[:START:STOP]
        Query by example: embed a clip of the named plan (optionally
        degraded with --noise/--brightness/--truncate), retrieve its
        nearest indexed shots from the ANN index, and — with --query —
        fuse them with the text/concept ranking by weighted late
        fusion (--w-text/--w-ann).

    repro demo --seed S
        The motivating query of the paper, end to end (indexes the
        qualifying videos on the fly).

    repro export-mpeg7 --metaindex META.json --out DOC.xml
        Convert a saved meta-index to MPEG-7-style XML.

    repro build-site --seed S --out DIR
        Write the generated tournament web site as HTML files.

    repro stats --metaindex META.json
        Summarise a saved meta-index (shots per category, events per
        label, track coverage, event density).

    repro health --seed S --videos N
        Index N videos under a chosen fault-tolerance policy and print
        the per-detector indexing health report.

    repro faults --seed S --videos N --rate R
        Fault-injection run: index N videos while randomly sabotaging
        detectors at rate R, then report health, degraded videos and
        meta-data completeness (see repro.faults).

    repro fsck --metaindex META.json
        Verify snapshot generations (checksum, format, column shape)
        and journal consistency; exits non-zero with a readable report
        when anything is corrupt.  Streaming chunk records are
        deep-checked against the snapshot: per-stream commit seqs must
        increase (gaps only where an orphaned chunk_begin explains
        them), watermarks must be monotone, generations must increase,
        and a chunk_commit ahead of the snapshot's resume state is
        fatal; orphaned chunk_begin tails are reported as recoverable.
        An ANN index built at an older generation than the journal's
        last chunk commit is flagged stale (warning — ``search`` labels
        such results ``ann_stale`` rather than hiding them).

    repro stream --seed S --videos N --out META.json [--chunk-frames F]
        Crash-safe chunk-append ingest: replay the first N planned
        videos as live streams through the bounded-queue ingestor.
        Every chunk lands as a journal chunk_begin/chunk_commit pair
        around an atomic snapshot delta, so a kill at any point resumes
        at the last committed chunk (``--resume``) with no lost or
        duplicated shots.  Prints the per-stream health table: chunks,
        shots, watermark, lag sheds and frame-arrival -> queryable
        freshness percentiles against the declared SLO.

    repro stream --soak --seconds S [--fault-mode M]
        Streaming chaos soak: concurrent reader threads query the
        service while the feeds are sabotaged (delayed / torn /
        duplicated chunks) and one mid-stream kill is simulated and
        recovered; asserts zero lost or duplicated shots (the final
        catalog must be byte-identical to a batch-indexed control),
        every degradation labeled, p95 freshness within the SLO and no
        reader errors, exiting non-zero on any violation.

    repro query-stats --seed S --metaindex META.json "QUERY" ["QUERY"...]
        Serve the given queries (each --repeat times) through the
        cached query-serving layer and print the QueryStats report:
        per-stage timers, cache hit/miss/eviction counters and
        postings-processed accounting.  With --shards N the queries go
        through shard workers instead; adding --chunk-frames F ingests
        the videos via the streaming chunk-append path first, so the
        report includes per-shard freshness percentiles.

    repro serve-bench --seed S --videos N --threads T --requests R
        Query-serving driver: index N videos, then measure cold
        (uncached) vs warm (cached) latency over a fixed query mix and
        multi-threaded reader throughput against the shared cache.
        With --budget-ms / --max-concurrent the service runs with
        deadlines, admission control and the degradation ladder.

    repro serve-bench --soak --seconds S --fault-ms MS
        Chaos soak: mixed reader threads, a concurrent writer and
        injected per-stage latency faults for S seconds; asserts no
        stuck threads, no unlabeled stale or degraded serving, bounded
        generation lag and a bounded served p99, exiting non-zero on
        any violation.

    repro serve-sharded --shards N --replicas R --videos V --requests Q
        Scatter-gather driver: partition V videos across N replica
        groups of R worker processes each, fan queries out with
        per-shard deadline slices to the healthiest replica of each
        group (failing over to siblings), merge the partial rankings
        and print the per-shard health table (generation vector,
        quarantine state, hedge/failover counts, per-replica rows).

    repro serve-sharded --soak --seconds S --fault-shard K --fault-mode M
        Sharded chaos soak: concurrent clients against the coordinator
        while shard K misbehaves (delay / error / kill /
        stale_generation); asserts every answer carries a coverage
        label, no unhandled exceptions, a bounded fan-out p99 and
        post-fault recovery, exiting non-zero on any violation.  With
        --replicas >= 2 and --fault-replica, a single-replica fault
        must cost zero coverage and the killed replica must rejoin
        rotation (per-replica health) before exit.

    repro profile --target {e6,e9,all} --out DIR
        Profile the retrieval (packed top-N vs the pure-Python
        reference) and indexing (tennis FDE pipeline) hot paths with a
        stack sampler + cProfile, and write a flamegraph SVG and a
        stats JSON per target — the artifacts the CI benchmark gate
        uploads next to benchmark-report.json.

All commands are deterministic in their seeds.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Content-based video indexing for digital library search (ICDE 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figure1", help="print Figure 1 as Graphviz DOT")

    index_cmd = sub.add_parser("index", help="index tournament videos into a meta-index file")
    index_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")
    index_cmd.add_argument("--videos", type=int, default=2, help="how many planned videos to index")
    index_cmd.add_argument("--out", required=True, help="output meta-index JSON path")
    index_cmd.add_argument(
        "--resume",
        action="store_true",
        help="restore the last good snapshot and re-index only videos "
        "without a journal commit record",
    )
    index_cmd.add_argument(
        "--journal",
        default=None,
        help="indexing journal path (default: <out>.journal)",
    )
    index_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="videos staged concurrently (and detector-wave pool width); "
        "results are byte-identical to --workers 1",
    )

    query_cmd = sub.add_parser("query", help="answer a combined query against a saved meta-index")
    query_cmd.add_argument("--seed", type=int, default=7, help="dataset seed (must match index run)")
    query_cmd.add_argument("--metaindex", required=True, help="meta-index JSON path")
    query_cmd.add_argument("text", help='query, e.g. \'SCENES WHERE event = net_play\'')

    ann_build_cmd = sub.add_parser(
        "ann-build", help="build the query-by-example ANN index into a saved meta-index"
    )
    ann_build_cmd.add_argument(
        "--seed", type=int, default=7, help="dataset seed (must match index run)"
    )
    ann_build_cmd.add_argument("--metaindex", required=True, help="meta-index JSON path")
    ann_build_cmd.add_argument(
        "--out", default=None, help="output snapshot path (default: --metaindex)"
    )
    ann_build_cmd.add_argument("--cells", type=int, default=8, help="IVF cells (k-means centroids)")
    ann_build_cmd.add_argument(
        "--ann-seed", type=int, default=0, help="k-means initialization seed"
    )
    ann_build_cmd.add_argument("--samples", type=int, default=3, help="frames sampled per shot")

    search_cmd = sub.add_parser(
        "search", help="query by example against a saved meta-index (ANN + late fusion)"
    )
    search_cmd.add_argument(
        "--seed", type=int, default=7, help="dataset seed (must match index run)"
    )
    search_cmd.add_argument("--metaindex", required=True, help="meta-index JSON path")
    search_cmd.add_argument(
        "--like",
        required=True,
        help="example clip as VIDEO[:START:STOP] (a planned video name plus "
        "an optional frame range)",
    )
    search_cmd.add_argument(
        "--query",
        default=None,
        help="optional text/concept query to fuse with, e.g. 'SCENES WHERE event = net_play'",
    )
    search_cmd.add_argument("--w-text", type=float, default=0.5, help="late-fusion text weight")
    search_cmd.add_argument("--w-ann", type=float, default=0.5, help="late-fusion ANN weight")
    search_cmd.add_argument("--k", type=int, default=10, help="nearest shots retrieved")
    search_cmd.add_argument(
        "--nprobe", type=int, default=None, help="IVF cells probed (default: all)"
    )
    search_cmd.add_argument(
        "--cells", type=int, default=8, help="IVF cells when building on the fly"
    )
    search_cmd.add_argument(
        "--ann-seed", type=int, default=0, help="k-means seed when building on the fly"
    )
    search_cmd.add_argument("--top", type=int, default=20, help="result scenes printed")
    search_cmd.add_argument(
        "--noise", type=float, default=0.0, help="Gaussian noise sigma applied to the query clip"
    )
    search_cmd.add_argument(
        "--brightness", type=float, default=0.0, help="brightness shift applied to the query clip"
    )
    search_cmd.add_argument(
        "--truncate",
        type=float,
        default=1.0,
        help="fraction of the query clip kept (truncated query robustness)",
    )
    search_cmd.add_argument(
        "--degrade-seed", type=int, default=0, help="rng seed of the query degradations"
    )

    demo_cmd = sub.add_parser("demo", help="run the paper's motivating query end to end")
    demo_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")

    export_cmd = sub.add_parser("export-mpeg7", help="convert a saved meta-index to MPEG-7 XML")
    export_cmd.add_argument("--metaindex", required=True, help="meta-index JSON path")
    export_cmd.add_argument("--out", required=True, help="output XML path")

    site_cmd = sub.add_parser("build-site", help="write the tournament web site as HTML files")
    site_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")
    site_cmd.add_argument("--out", required=True, help="output directory")

    stats_cmd = sub.add_parser("stats", help="summarise a saved meta-index")
    stats_cmd.add_argument("--metaindex", required=True, help="meta-index JSON path")

    fsck_cmd = sub.add_parser(
        "fsck", help="verify meta-index snapshot and journal integrity"
    )
    fsck_cmd.add_argument("--metaindex", required=True, help="meta-index JSON path")
    fsck_cmd.add_argument(
        "--journal",
        default=None,
        help="indexing journal path (default: <metaindex>.journal)",
    )

    stats_query_cmd = sub.add_parser(
        "query-stats", help="serve queries through the cache and report QueryStats"
    )
    stats_query_cmd.add_argument("--seed", type=int, default=7, help="dataset seed (must match index run)")
    stats_query_cmd.add_argument(
        "--metaindex", default=None, help="meta-index JSON path (required without --shards)"
    )
    stats_query_cmd.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve through N shard worker processes instead of one service "
        "(indexes --videos from the dataset; prints per-shard stats)",
    )
    stats_query_cmd.add_argument(
        "--videos", type=int, default=4, help="videos to index when --shards is used"
    )
    stats_query_cmd.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="worker processes per shard when --shards is used",
    )
    stats_query_cmd.add_argument(
        "--chunk-frames",
        type=int,
        default=None,
        help="with --shards: ingest the videos through the streaming "
        "chunk-append path in F-frame chunks (reports per-shard "
        "freshness percentiles)",
    )
    stats_query_cmd.add_argument(
        "--repeat", type=int, default=3, help="times each query is served"
    )
    stats_query_cmd.add_argument(
        "--cache-size", type=int, default=256, help="result-cache capacity (LRU)"
    )
    stats_query_cmd.add_argument(
        "queries", nargs="+", help="queries, e.g. 'SCENES WHERE event = net_play'"
    )

    serve_cmd = sub.add_parser(
        "serve-bench", help="measure warm/cold serving latency and reader throughput"
    )
    serve_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")
    serve_cmd.add_argument("--videos", type=int, default=2, help="videos to index first")
    serve_cmd.add_argument("--threads", type=int, default=4, help="concurrent readers")
    serve_cmd.add_argument(
        "--requests", type=int, default=50, help="requests per reader thread"
    )
    serve_cmd.add_argument(
        "--cache-size", type=int, default=256, help="result-cache capacity (LRU)"
    )
    serve_cmd.add_argument(
        "--budget-ms",
        type=float,
        default=None,
        help="per-query wall-clock budget in ms (enables the resilient path)",
    )
    serve_cmd.add_argument(
        "--max-concurrent",
        type=int,
        default=8,
        help="admission capacity (concurrent queries)",
    )
    serve_cmd.add_argument(
        "--queue", type=int, default=16, help="bounded admission wait-queue length"
    )
    serve_cmd.add_argument(
        "--queue-timeout-ms",
        type=float,
        default=50.0,
        help="max ms a request waits in the admission queue",
    )
    serve_cmd.add_argument(
        "--soak",
        action="store_true",
        help="run the chaos soak (readers + writer + faults) instead of the latency passes",
    )
    serve_cmd.add_argument(
        "--seconds", type=float, default=10.0, help="soak duration in seconds"
    )
    serve_cmd.add_argument(
        "--fault-stage",
        default="text_topn",
        help="query stage the soak injects latency into",
    )
    serve_cmd.add_argument(
        "--fault-ms",
        type=float,
        default=0.0,
        help="injected latency per fault delivery in ms",
    )
    serve_cmd.add_argument(
        "--p99-ms",
        type=float,
        default=None,
        help="served-p99 bound the soak asserts (default: 2x --budget-ms)",
    )

    sharded_cmd = sub.add_parser(
        "serve-sharded",
        help="scatter-gather serving over shard worker processes",
    )
    sharded_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")
    sharded_cmd.add_argument("--shards", type=int, default=2, help="shard worker processes")
    sharded_cmd.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="worker processes per shard (replica group size; reads fail "
        "over and hedge across siblings)",
    )
    sharded_cmd.add_argument("--videos", type=int, default=4, help="videos to partition")
    sharded_cmd.add_argument(
        "--requests", type=int, default=30, help="requests per client thread"
    )
    sharded_cmd.add_argument("--threads", type=int, default=2, help="concurrent clients")
    sharded_cmd.add_argument(
        "--budget-ms", type=float, default=1000.0, help="per-request wall budget in ms"
    )
    sharded_cmd.add_argument(
        "--worker-threads", type=int, default=2, help="evaluation threads per worker"
    )
    sharded_cmd.add_argument(
        "--min-coverage", type=int, default=1, help="fewest shards a partial answer needs"
    )
    sharded_cmd.add_argument(
        "--soak",
        action="store_true",
        help="run the sharded chaos soak instead of the latency pass",
    )
    sharded_cmd.add_argument(
        "--seconds", type=float, default=10.0, help="soak duration in seconds"
    )
    sharded_cmd.add_argument(
        "--fault-shard", type=int, default=None, help="shard the soak sabotages"
    )
    sharded_cmd.add_argument(
        "--fault-replica",
        type=int,
        default=None,
        help="replica index the fault is addressed to (default: the whole "
        "group; with --replicas >= 2 a single-replica fault must cost "
        "zero coverage)",
    )
    sharded_cmd.add_argument(
        "--fault-mode",
        choices=("delay", "error", "kill", "stale_generation"),
        default="delay",
        help="what the sabotaged shard does",
    )
    sharded_cmd.add_argument(
        "--fault-ms", type=float, default=200.0, help="delay per fault delivery in ms"
    )
    sharded_cmd.add_argument(
        "--fault-after",
        type=int,
        default=3,
        help="clean query deliveries before the fault starts landing",
    )
    sharded_cmd.add_argument(
        "--p99-ms",
        type=float,
        default=None,
        help="fan-out p99 bound the soak asserts (default: 2x --budget-ms)",
    )

    def add_policy_options(cmd, default_policy: str) -> None:
        cmd.add_argument(
            "--policy",
            choices=("fail_fast", "skip_subtree", "quarantine"),
            default=default_policy,
            help="failure-isolation policy",
        )
        cmd.add_argument("--retries", type=int, default=1, help="max retries per detector")
        cmd.add_argument(
            "--backoff", type=float, default=0.01, help="base retry backoff (seconds)"
        )
        cmd.add_argument(
            "--timeout", type=float, default=None, help="per-attempt budget (seconds)"
        )
        cmd.add_argument(
            "--deadline", type=float, default=None, help="per-video budget (seconds)"
        )
        cmd.add_argument(
            "--quarantine-after",
            type=int,
            default=3,
            help="consecutive failing videos before a detector is quarantined",
        )

    health_cmd = sub.add_parser(
        "health", help="index videos and report per-detector indexing health"
    )
    health_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")
    health_cmd.add_argument("--videos", type=int, default=2, help="how many videos to index")
    health_cmd.add_argument(
        "--shards",
        type=int,
        default=None,
        help="report shard-level serving health instead: spawn N shard "
        "workers, serve a probe mix, print the per-shard table",
    )
    health_cmd.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="worker processes per shard when --shards is used",
    )
    health_cmd.add_argument(
        "--chunk-frames",
        type=int,
        default=None,
        help="with --shards: ingest through the streaming chunk-append "
        "path in F-frame chunks before probing (reports per-shard "
        "freshness percentiles)",
    )
    add_policy_options(health_cmd, default_policy="skip_subtree")

    stream_cmd = sub.add_parser(
        "stream",
        help="crash-safe chunk-append streaming ingest (journaled, resumable)",
    )
    stream_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")
    stream_cmd.add_argument(
        "--videos", type=int, default=2, help="planned videos replayed as streams"
    )
    stream_cmd.add_argument(
        "--out", default=None, help="snapshot path (required without --soak)"
    )
    stream_cmd.add_argument(
        "--journal",
        default=None,
        help="indexing journal path (default: <out>.journal)",
    )
    stream_cmd.add_argument(
        "--chunk-frames", type=int, default=24, help="frames per ingest chunk"
    )
    stream_cmd.add_argument(
        "--queue-chunks",
        type=int,
        default=8,
        help="bounded per-stream queue depth (overflow sheds oldest, labeled)",
    )
    stream_cmd.add_argument(
        "--slo-ms",
        type=float,
        default=2000.0,
        help="declared p95 frame-arrival -> queryable freshness SLO in ms",
    )
    stream_cmd.add_argument(
        "--resume",
        action="store_true",
        help="restore the last good snapshot and resume interrupted "
        "streams from their committed watermark",
    )
    stream_cmd.add_argument(
        "--soak",
        action="store_true",
        help="run the streaming chaos soak (readers + chunk faults + "
        "mid-stream kill drill) instead of a plain ingest",
    )
    stream_cmd.add_argument(
        "--seconds", type=float, default=8.0, help="soak duration budget in seconds"
    )
    stream_cmd.add_argument(
        "--readers", type=int, default=2, help="concurrent reader threads in the soak"
    )
    stream_cmd.add_argument(
        "--fault-mode",
        choices=("delay", "torn", "duplicate", "none"),
        default="torn",
        help="chunk-feed sabotage the soak applies",
    )
    stream_cmd.add_argument(
        "--fault-delay-ms",
        type=float,
        default=20.0,
        help="delay per sabotaged chunk in ms (delay mode)",
    )
    stream_cmd.add_argument(
        "--kill-point",
        default="chunk-pre-commit",
        help="crash point of the soak's mid-stream kill drill",
    )

    profile_cmd = sub.add_parser(
        "profile",
        help="profile the IR and vision hot paths; write flamegraph + stats artifacts",
    )
    profile_cmd.add_argument(
        "--target",
        choices=("e6", "e9", "all"),
        default="all",
        help="hot path to profile: e6 (packed top-N), e9 (FDE pipeline), or all",
    )
    profile_cmd.add_argument(
        "--out", default="profile-artifacts", help="artifact output directory"
    )
    profile_cmd.add_argument("--seed", type=int, default=1234, help="dataset seed")
    profile_cmd.add_argument(
        "--copies",
        type=int,
        default=25,
        help="corpus replication factor for the e6 target",
    )
    profile_cmd.add_argument(
        "--shots", type=int, default=16, help="broadcast shots for the e9 target"
    )
    profile_cmd.add_argument(
        "--interval-ms",
        type=float,
        default=2.0,
        help="stack sampling interval in milliseconds",
    )

    faults_cmd = sub.add_parser(
        "faults", help="index videos with randomly injected detector failures"
    )
    faults_cmd.add_argument("--seed", type=int, default=7, help="dataset seed")
    faults_cmd.add_argument("--videos", type=int, default=2, help="how many videos to index")
    faults_cmd.add_argument(
        "--rate", type=float, default=0.25, help="fault probability per (detector, video)"
    )
    faults_cmd.add_argument(
        "--fault-seed", type=int, default=0, help="seed of the fault plan sampler"
    )
    faults_cmd.add_argument(
        "--error",
        choices=("transient", "permanent", "timeout"),
        default="transient",
        help="error class the injected faults raise",
    )
    faults_cmd.add_argument(
        "--times",
        type=int,
        default=1,
        help="attempts each fault sabotages (0 = every attempt, forever)",
    )
    add_policy_options(faults_cmd, default_policy="skip_subtree")

    return parser


def _policy_from_args(args):
    from repro.grammar.runtime import RunPolicy

    return RunPolicy(
        max_retries=args.retries,
        backoff_base=args.backoff,
        timeout=args.timeout,
        deadline=args.deadline,
        isolation=args.policy,
        quarantine_after=args.quarantine_after,
    )


def _cmd_figure1(_args) -> int:
    from repro.grammar.dot import figure_one

    print(figure_one())
    return 0


def _cmd_index(args) -> int:
    from repro.dataset import build_australian_open
    from repro.grammar.runtime import RunPolicy
    from repro.grammar.tennis import build_tennis_fde
    from repro.library import DigitalLibraryEngine
    from repro.library.indexing import default_journal_path
    from repro.storage.journal import IndexingJournal

    dataset = build_australian_open(seed=args.seed)
    fde = build_tennis_fde(policy=RunPolicy(max_workers=args.workers))
    engine = DigitalLibraryEngine(dataset, fde=fde)
    journal_path = args.journal or default_journal_path(args.out)
    journal = IndexingJournal(journal_path)

    restored = 0
    if args.resume:
        # load_catalog falls back to the .prev generation, so a crash in
        # the rotate window (current missing) still restores correctly.
        try:
            restored = engine.indexer.restore_snapshot(args.out)
        except FileNotFoundError:
            pass  # nothing saved yet: resume degenerates to a fresh run
        else:
            print(f"resume: restored {restored} committed video(s) from {args.out}")
            interrupted = journal.verify().interrupted
            if interrupted:
                print(f"resume: re-indexing interrupted video(s): {', '.join(interrupted)}")

    plans = dataset.video_plans[: args.videos]
    pending = [p.name for p in plans if p.name not in engine.indexer.indexed]
    if pending:
        print(f"indexing {len(pending)} video(s): {', '.join(pending)}")
    records = engine.indexer.index_checkpointed(
        args.out,
        journal=journal,
        limit=args.videos,
        resume=args.resume,
        workers=args.workers,
    )
    counts = engine.indexer.model.counts()
    print(
        f"saved {args.out}: {counts['raw']} videos, {counts['feature']} shots, "
        f"{counts['object']} objects, {counts['event']} events"
        + (f" ({len(records)} newly indexed)" if restored else "")
    )
    return 0


def _cmd_query(args) -> int:
    from repro.dataset import build_australian_open
    from repro.library import DigitalLibraryEngine, parse_query
    from repro.library.persistence import load_model

    dataset = build_australian_open(seed=args.seed)
    engine = DigitalLibraryEngine(dataset)
    restored = engine.indexer.restore(load_model(args.metaindex))
    print(f"restored {restored} indexed video(s)")
    query = parse_query(args.text)
    results = engine.search(query)
    if not results:
        print("no scenes found")
        return 1
    for scene in results:
        players = ", ".join(scene.players) if scene.players else "-"
        print(
            f"{scene.video_name}  frames [{scene.start},{scene.stop})  "
            f"{scene.event_label or 'whole video'}  score={scene.score:.2f}  {players}"
        )
    return 0


def _parse_like(spec: str) -> tuple[str, int | None, int | None]:
    """Split a ``VIDEO[:START:STOP]`` example-clip spec."""
    parts = spec.rsplit(":", 2)
    if len(parts) == 3 and parts[1].isdigit() and parts[2].isdigit():
        return parts[0], int(parts[1]), int(parts[2])
    return spec, None, None


def _materialise_query_clip(dataset, args) -> list:
    """The (possibly degraded) example frames named by ``--like``."""
    import numpy as np

    from repro.video.noise import add_gaussian_noise

    name, start, stop = _parse_like(args.like)
    plans = {plan.name: plan for plan in dataset.video_plans}
    if name not in plans:
        raise SystemExit(f"no planned video named {name!r} (seed {args.seed})")
    clip, _truth = plans[name].materialise()
    start = 0 if start is None else max(0, start)
    stop = len(clip) if stop is None else min(stop, len(clip))
    frames = [clip[i] for i in range(start, stop)]
    if not frames:
        raise SystemExit(f"--like range [{start},{stop}) selects no frames")
    if args.truncate < 1.0:
        frames = frames[: max(1, int(len(frames) * args.truncate))]
    rng = np.random.default_rng(args.degrade_seed)
    if args.noise > 0.0:
        frames = [add_gaussian_noise(f, args.noise, rng) for f in frames]
    if args.brightness != 0.0:
        frames = [
            np.clip(f.astype(np.float64) + args.brightness, 0, 255).astype(f.dtype)
            for f in frames
        ]
    return frames


def _restore_engine_with_ann(args):
    """An engine restored from ``--metaindex``, ANN adopted or built."""
    from repro.dataset import build_australian_open
    from repro.ir.ann import has_ann_tables, load_ann_from_catalog
    from repro.library import DigitalLibraryEngine
    from repro.library.persistence import catalog_to_model
    from repro.storage.persist import load_catalog

    dataset = build_australian_open(seed=args.seed)
    engine = DigitalLibraryEngine(dataset)
    catalog = load_catalog(args.metaindex)
    restored = engine.indexer.restore(catalog_to_model(catalog))
    print(f"restored {restored} indexed video(s)")
    if has_ann_tables(catalog):
        index, meta = load_ann_from_catalog(catalog)
        engine.adopt_ann(index, meta)
        print(f"ann: adopted snapshot index ({index.n_vectors} vectors, {index.n_cells} cells)")
    else:
        index = engine.build_ann_index(n_cells=args.cells, seed=args.ann_seed)
        print(f"ann: built on the fly ({index.n_vectors} vectors, {index.n_cells} cells)")
    return dataset, engine


def _cmd_ann_build(args) -> int:
    from repro.dataset import build_australian_open
    from repro.library import DigitalLibraryEngine
    from repro.library.persistence import load_model_with_state, save_model

    dataset = build_australian_open(seed=args.seed)
    engine = DigitalLibraryEngine(dataset)
    model, runner_state = load_model_with_state(args.metaindex)
    restored = engine.indexer.restore(model)
    print(f"restored {restored} indexed video(s)")
    index = engine.build_ann_index(
        n_cells=args.cells, seed=args.ann_seed, samples=args.samples
    )
    out = args.out or args.metaindex
    save_model(
        engine.indexer.model, out, runner_state=runner_state,
        ann=(index, engine.ann_meta),
    )
    print(
        f"wrote {out}: {index.n_vectors} shot vectors in {index.n_cells} cells "
        f"(dim {index.dim})"
    )
    return 0


def _cmd_search(args) -> int:
    from repro.ir.ann import AnnSnapshotError
    from repro.library import parse_query

    try:
        dataset, engine = _restore_engine_with_ann(args)
    except AnnSnapshotError as exc:
        print(f"search: corrupt ANN snapshot — {exc}")
        return 1
    frames = _materialise_query_clip(dataset, args)
    query = parse_query(args.query) if args.query else None
    results = engine.search_like(
        frames,
        query=query,
        weights=(args.w_text, args.w_ann),
        k=args.k,
        nprobe=args.nprobe,
        top_n=args.top,
    )
    if not results:
        print("no scenes found")
        return 1
    for scene in results:
        players = ", ".join(scene.players) if scene.players else "-"
        print(
            f"{scene.video_name}  frames [{scene.start},{scene.stop})  "
            f"{scene.event_label or 'ann match'}  score={scene.score:.3f}  {players}"
        )
    return 0


def _cmd_demo(args) -> int:
    from repro.dataset import build_australian_open
    from repro.library import DigitalLibraryEngine, LibraryQuery

    dataset = build_australian_open(seed=args.seed)
    engine = DigitalLibraryEngine(dataset)
    qualifying = engine.concept_players(
        {"handedness": "left", "gender": "female", "past_winner": True}
    )
    names = [p.get("name") for p in qualifying]
    print(f"left-handed female past champions: {names}")
    plans = [
        plan
        for plan in dataset.video_plans
        if any(name in plan.match_title for name in names)
    ][:2]
    for plan in plans:
        print(f"indexing {plan.name} ...")
        engine.indexer.index_plan(plan)
    query = LibraryQuery(
        player={"handedness": "left", "gender": "female", "past_winner": True},
        event="net_play",
    )
    results = engine.search(query)
    print(f"\n{len(results)} scene(s):")
    for scene in results:
        print(
            f"  {scene.video_name}  frames [{scene.start},{scene.stop})  "
            f"{', '.join(scene.players)}"
        )
    return 0


def _cmd_export_mpeg7(args) -> int:
    from pathlib import Path

    from repro.core.mpeg7 import export_mpeg7
    from repro.library.persistence import load_model

    model = load_model(args.metaindex)
    Path(args.out).write_text(export_mpeg7(model))
    print(f"wrote {args.out} ({model.counts()})")
    return 0


def _cmd_build_site(args) -> int:
    from repro.dataset import build_australian_open
    from repro.dataset.site import write_site

    dataset = build_australian_open(seed=args.seed)
    paths = write_site(dataset, args.out)
    print(f"wrote {len(paths)} pages under {args.out}")
    return 0


def _cmd_stats(args) -> int:
    from repro.library.persistence import load_model
    from repro.library.stats import collect_stats, format_stats

    model = load_model(args.metaindex)
    print(format_stats(collect_stats(model)))
    return 0


def _verify_chunk_records(report, metaindex) -> tuple[list[str], list[str]]:
    """Deep-check streaming chunk records against the snapshot.

    Returns ``(problems, lines)``: fatal inconsistencies (a committed
    chunk the snapshot does not cover, regressed watermarks, unexplained
    seq gaps) and human-readable report lines.  Orphaned ``chunk_begin``
    tails are *recoverable* — they appear in the lines, never in the
    problems.  Generation is a per-process counter, so a non-increasing
    generation across commits marks a crash-resume epoch boundary
    (reported as "N resume(s)"), not a fault.
    """
    from repro.library.persistence import catalog_to_model, load_stream_state
    from repro.storage.persist import load_catalog

    problems: list[str] = []
    lines: list[str] = []
    if not report.chunk_commits and not report.orphan_chunks:
        return problems, lines
    try:
        states = load_stream_state(metaindex)
        names = {v.name for v in catalog_to_model(load_catalog(metaindex)).videos}
    except (ValueError, FileNotFoundError):
        states, names = {}, None

    for stream in sorted(report.chunk_commits):
        commits = report.chunk_commits[stream]
        orphans = set(report.orphan_chunks.get(stream, []))
        last_seq = last_watermark = last_generation = None
        restarts = 0
        for record in commits:
            seq = int(record["seq"])
            watermark = int(record["watermark"])
            generation = int(record["generation"])
            if last_seq is not None:
                if seq <= last_seq:
                    problems.append(
                        f"stream {stream!r}: chunk seq {seq} not increasing "
                        f"after {last_seq}"
                    )
                else:
                    # A committed-seq gap is legal only when the missing
                    # seqs died in flight (crash between snapshot save
                    # and commit append) and left begin records behind.
                    unexplained = [
                        s for s in range(last_seq + 1, seq) if s not in orphans
                    ]
                    if unexplained:
                        problems.append(
                            f"stream {stream!r}: committed seq jumps "
                            f"{last_seq}->{seq} with no begin record for "
                            f"seq(s) {unexplained}"
                        )
                if watermark < last_watermark:
                    problems.append(
                        f"stream {stream!r}: watermark regressed "
                        f"{last_watermark}->{watermark} at seq {seq}"
                    )
                if generation <= last_generation:
                    # The generation counter is per process, so a
                    # non-increasing generation across a seq boundary is
                    # the signature of a crash-resume restart (the new
                    # epoch's counter starts over and may land at or
                    # below the old one).
                    restarts += 1
            last_seq, last_watermark, last_generation = seq, watermark, generation

        line = (
            f"  stream {stream}: {len(commits)} committed chunk(s), "
            f"watermark {last_watermark}"
        )
        if restarts:
            line += f", {restarts} resume(s)"
        state = states.get(stream)
        if state is not None:
            if int(state["watermark"]) < last_watermark:
                # chunk_commit promises the snapshot covers everything
                # below its watermark; a resume state behind that lost
                # committed frames.
                problems.append(
                    f"stream {stream!r}: snapshot resume state (watermark "
                    f"{state['watermark']}) is behind the last committed "
                    f"chunk (watermark {last_watermark})"
                )
            line += f", in flight (resumes at {state['watermark']})"
        elif names is not None and stream not in names:
            problems.append(
                f"stream {stream!r}: committed chunks but the snapshot has "
                "neither its video nor its resume state"
            )
        else:
            line += ", finalised"
        lines.append(line)

    for stream in sorted(report.orphan_chunks):
        if stream not in report.chunk_commits:
            lines.append(f"  stream {stream}: no committed chunks yet")
        seqs = report.orphan_chunks[stream]
        lines.append(
            f"  stream {stream}: orphaned chunk_begin seq(s) "
            f"{', '.join(map(str, seqs))} — in flight at a crash; "
            "recoverable, resume replays from the snapshot watermark"
        )
    return problems, lines


def _cmd_fsck(args) -> int:
    from pathlib import Path

    from repro.library.indexing import default_journal_path
    from repro.library.persistence import catalog_to_model
    from repro.storage.journal import IndexingJournal
    from repro.storage.persist import (
        load_catalog,
        snapshot_generations,
        verify_snapshot,
    )

    problems: list[str] = []
    current, prev = snapshot_generations(args.metaindex)

    def describe(report) -> str:
        if report.ok:
            return (
                f"OK (v{report.version}, checksum ok, "
                f"{report.n_tables} tables, {report.n_rows} rows)"
            )
        return f"CORRUPT — {report.error}"

    current_report = verify_snapshot(current)
    print(f"{current.name}: {describe(current_report)}")
    if not current_report.ok:
        problems.append(f"current snapshot: {current_report.error}")
    if prev.exists():
        prev_report = verify_snapshot(prev)
        print(f"{prev.name}: {describe(prev_report)}")
        if not current_report.ok and prev_report.ok:
            print(f"recovery: load_catalog falls back to {prev.name}")
        if not current_report.ok and not prev_report.ok:
            problems.append(f"previous snapshot: {prev_report.error}")
    elif not current_report.ok:
        problems.append("no previous generation to fall back to")

    ann_generation = None
    if current_report.ok or (prev.exists() and verify_snapshot(prev).ok):
        from repro.ir.ann import AnnSnapshotError, has_ann_tables, load_ann_from_catalog

        try:
            catalog = load_catalog(args.metaindex)
        except (ValueError, FileNotFoundError):
            catalog = None
        if catalog is not None and has_ann_tables(catalog):
            try:
                index, _meta = load_ann_from_catalog(catalog)
                print(
                    f"ann: OK ({index.n_vectors} vectors, {index.n_cells} cells, "
                    f"checksums ok)"
                )
                ann_generation = index.generation
            except AnnSnapshotError as exc:
                print(f"ann: CORRUPT — {exc}")
                problems.append(f"ann snapshot: {exc}")

    journal_path = Path(args.journal or default_journal_path(args.metaindex))
    if journal_path.exists():
        report = IndexingJournal(journal_path).verify()
        line = (
            f"{journal_path.name}: {len(report.records)} record(s), "
            f"{len(report.committed)} committed"
        )
        if report.torn_tail:
            line += ", torn tail (recoverable with --resume)"
            problems.append("journal has a torn final line")
        if report.corrupt_lines:
            line += f", CORRUPT line(s) {report.corrupt_lines}"
            problems.append(f"journal line(s) {report.corrupt_lines} unparseable")
        if report.interrupted:
            line += f", interrupted: {', '.join(report.interrupted)}"
            problems.append(
                f"video(s) {', '.join(report.interrupted)} began but never committed"
            )
        print(line)
        try:
            model = catalog_to_model(load_catalog(args.metaindex))
            names = {video.name for video in model.videos}
            missing = sorted(set(report.committed) - names)
            if missing:
                problems.append(
                    f"committed video(s) missing from snapshot: {', '.join(missing)}"
                )
                print(f"cross-check: committed but not in snapshot: {', '.join(missing)}")
        except (ValueError, FileNotFoundError):
            pass  # already reported above
        chunk_problems, chunk_lines = _verify_chunk_records(report, args.metaindex)
        for chunk_line in chunk_lines:
            print(chunk_line)
        problems.extend(chunk_problems)
        if ann_generation is not None and ann_generation >= 0:
            last_gen = max(
                (
                    int(record["generation"])
                    for records in report.chunk_commits.values()
                    for record in records
                ),
                default=None,
            )
            if last_gen is not None and last_gen > ann_generation:
                print(
                    f"ann: STALE — built at generation {ann_generation}, chunk "
                    f"commits reach generation {last_gen}; search labels such "
                    "results ann_stale (rebuild with 'repro ann-build')"
                )
    else:
        print(f"{journal_path.name}: no journal")

    if problems:
        print(f"fsck: {len(problems)} problem(s) found")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("fsck: clean")
    return 0


def _stream_health_lines(health) -> list[str]:
    """Readable per-stream rows from :meth:`StreamIngestor.health`."""
    lines = []
    for name, row in health.items():
        p95 = row.freshness.get("p95")
        fresh = (
            f"p95 freshness {p95 * 1e3:.1f} ms (slo {row.freshness_slo * 1e3:.0f} ms)"
            if p95 is not None
            else "no freshness samples"
        )
        flags = []
        if row.lag_sheds:
            flags.append(f"lag_sheds={row.lag_sheds} ({row.shed_frames} frames)")
        if row.duplicates_dropped:
            flags.append(f"duplicates_dropped={row.duplicates_dropped}")
        if row.degraded_freshness:
            flags.append("degraded_freshness")
        if row.last_error:
            flags.append(f"error: {row.last_error}")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        lines.append(
            f"  {name}: {row.state}, {row.chunks_committed} chunk(s), "
            f"{row.shots} shot(s), watermark {row.watermark}, {fresh}{suffix}"
        )
    return lines


def _feed_streams(ingestor, feeds, mangle=None) -> set:
    """Round-robin chunk feeds into the ingestor with flow control.

    The producer paces on :meth:`StreamIngestor.backlog` so a healthy
    run never sheds; *mangle* (a ``StreamFaultState.mangle``) sabotages
    each chunk on the way in.  Returns the streams whose offer was
    refused (quarantined or closed mid-feed).
    """
    import time

    refused = set()
    active = dict(feeds)
    while active:
        for name in list(active):
            chunk = next(active[name], None)
            if chunk is None:
                del active[name]
                continue
            parts = mangle(chunk) if mangle is not None else [chunk]
            for part in parts:
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if ingestor.health()[name].state != "live":
                        break  # quarantined/done: offer below will refuse
                    if ingestor.backlog(name) < ingestor.config.queue_chunks - 1:
                        break
                    time.sleep(0.005)
                if not ingestor.offer(part):
                    refused.add(name)
                    del active[name]
                    break
    return refused


def _cmd_stream(args) -> int:
    if args.soak:
        return _stream_soak(args)
    if args.out is None:
        print("stream: --out is required without --soak")
        return 2
    import time

    from repro.dataset import build_australian_open
    from repro.library import DigitalLibraryEngine, LibrarySearchService
    from repro.library.indexing import default_journal_path
    from repro.library.service import format_query_stats
    from repro.storage.journal import IndexingJournal
    from repro.streaming import StreamConfig, iter_chunks

    dataset = build_australian_open(seed=args.seed)
    engine = DigitalLibraryEngine(dataset)
    service = LibrarySearchService(engine)
    journal = IndexingJournal(args.journal or default_journal_path(args.out))
    config = StreamConfig(
        queue_chunks=args.queue_chunks, freshness_slo=args.slo_ms / 1e3
    )

    in_flight: set[str] = set()
    if args.resume:
        try:
            restored = engine.indexer.restore_snapshot(args.out)
        except FileNotFoundError:
            pass  # nothing saved yet: resume degenerates to a fresh run
        else:
            in_flight = set(engine.indexer.stream_states)
            print(
                f"resume: restored {restored} video(s), "
                f"{len(in_flight)} stream(s) in flight"
            )
    ingestor = service.ingestor(path=args.out, journal=journal, config=config)

    plans = [
        plan
        for plan in dataset.video_plans[: args.videos]
        if plan.name in in_flight or plan.name not in engine.indexer.indexed
    ]
    if not plans:
        print("nothing to stream (all videos committed)")
        return 0
    feeds = {}
    for plan in plans:
        resume = plan.name in in_flight
        ingestor.open_stream(plan, resume=resume)
        start = (
            int(engine.indexer.stream_states[plan.name]["watermark"]) if resume else 0
        )
        clip, _truth = plan.materialise()
        feeds[plan.name] = iter_chunks(
            clip, args.chunk_frames, stream=plan.name, start=start,
            clock=time.monotonic,
        )
        print(
            f"stream {plan.name}: {len(clip)} frames in "
            f"{args.chunk_frames}-frame chunks"
            + (f", resuming at frame {start}" if resume else "")
        )
    refused = _feed_streams(ingestor, feeds)
    drained = ingestor.drain()
    health = ingestor.health()
    for line in _stream_health_lines(health):
        print(line)
    counts = engine.indexer.model.counts()
    print(
        f"saved {args.out}: {counts['raw']} videos, {counts['feature']} shots, "
        f"{counts['object']} objects, {counts['event']} events"
    )
    print()
    print(format_query_stats(service.stats()))
    quarantined = sorted(
        name for name, row in health.items() if row.state == "quarantined"
    )
    if quarantined or refused or not drained:
        print(
            f"stream: trouble — quarantined {quarantined or '-'}, "
            f"refused {sorted(refused) or '-'}, drained {drained}"
        )
        return 1
    return 0


def _stream_soak(args) -> int:
    """Streaming chaos soak: chunk faults + readers + a kill drill.

    Invariants asserted (exit 1 on any violation): chaos streams finish,
    every shed/gap is labeled ``degraded_freshness``, duplicated chunks
    dedupe instead of double-indexing, p95 freshness stays within the
    SLO, concurrent readers never error, the killed stream resumes from
    its committed watermark, and the final snapshot is byte-identical
    to a batch-indexed control (zero lost or duplicated shots).
    """
    import tempfile
    import threading
    import time
    from pathlib import Path

    from repro.dataset import build_australian_open
    from repro.faults import StreamFaultPlan
    from repro.library import DigitalLibraryEngine, LibrarySearchService, parse_query
    from repro.storage.journal import IndexingJournal
    from repro.streaming import StreamConfig, iter_chunks

    violations: list[str] = []
    deadline = time.monotonic() + max(args.seconds, 1.0)

    with tempfile.TemporaryDirectory(prefix="repro-stream-soak-") as tmp:
        streamed_path = Path(tmp) / "streamed.json"
        batch_path = Path(tmp) / "batch.json"

        # The identity oracle: the same videos, batch-indexed.
        control = DigitalLibraryEngine(build_australian_open(seed=args.seed))
        control.indexer.index_checkpointed(
            batch_path,
            journal=IndexingJournal(Path(tmp) / "batch.journal"),
            limit=args.videos,
        )

        dataset = build_australian_open(seed=args.seed)
        engine = DigitalLibraryEngine(dataset)
        service = LibrarySearchService(engine)
        journal = IndexingJournal(Path(tmp) / "streamed.journal")
        config = StreamConfig(
            queue_chunks=args.queue_chunks, freshness_slo=args.slo_ms / 1e3
        )
        ingestor = service.ingestor(path=streamed_path, journal=journal, config=config)

        plans = dataset.video_plans[: args.videos]
        victim = plans[-1]
        chaos_plans = plans[:-1]
        chaos = None
        if args.fault_mode != "none":
            chaos = {
                "delay": StreamFaultPlan.late(args.fault_delay_ms / 1e3),
                "torn": StreamFaultPlan.torn(),
                "duplicate": StreamFaultPlan.duplicated(),
            }[args.fault_mode].state()

        stop = threading.Event()
        reader_errors: list[str] = []
        served = [0]

        def read_loop():
            parsed = [
                parse_query("SCENES WHERE event = net_play"),
                parse_query("SCENES WHERE player.handedness = left"),
            ]
            i = 0
            while not stop.is_set():
                try:
                    service.search(parsed[i % len(parsed)])
                except Exception as exc:  # noqa: BLE001 — any reader error fails the soak
                    reader_errors.append(f"{type(exc).__name__}: {exc}")
                    return
                served[0] += 1
                i += 1
                time.sleep(0.002)

        reader_threads = [
            threading.Thread(target=read_loop, daemon=True)
            for _ in range(max(args.readers, 1))
        ]
        for thread in reader_threads:
            thread.start()

        # Chaos phase: concurrent sabotaged streams.  The first chunk of
        # each stream lands in plan order so video rows match the batch
        # control (the identity gate compares snapshot bytes).
        feeds = {}
        for plan in chaos_plans:
            ingestor.open_stream(plan)
            clip, _truth = plan.materialise()
            feeds[plan.name] = iter_chunks(
                clip, args.chunk_frames, stream=plan.name, clock=time.monotonic
            )
            first = next(feeds[plan.name])
            for part in chaos.mangle(first) if chaos is not None else [first]:
                ingestor.offer(part)
            while (
                plan.name not in engine.indexer.indexed
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
        refused = _feed_streams(
            ingestor, feeds, mangle=chaos.mangle if chaos is not None else None
        )
        for plan in chaos_plans:
            budget = max(5.0, deadline - time.monotonic())
            if not ingestor.close_stream(plan.name, timeout=budget):
                violations.append(f"stream {plan.name}: failed to drain")
        if refused:
            violations.append(f"chaos feed refused for {sorted(refused)}")

        # Kill drill: sabotage the last stream with a simulated crash at
        # the chosen commit-protocol point, mid-stream.  The consumer
        # thread dies where it stood — expected, so its traceback is
        # silenced here.
        from repro.storage.crashpoints import SimulatedCrash

        clip, _truth = victim.materialise()
        kill = StreamFaultPlan.killed(
            point=args.kill_point, stream=victim.name, after=1
        )
        default_hook = threading.excepthook

        def quiet_hook(hook_args):
            if not issubclass(hook_args.exc_type, SimulatedCrash):
                default_hook(hook_args)

        threading.excepthook = quiet_hook
        try:
            with kill.state() as killer:
                ingestor.open_stream(victim)
                _feed_streams(
                    ingestor,
                    {
                        victim.name: iter_chunks(
                            clip, args.chunk_frames, stream=victim.name,
                            clock=time.monotonic,
                        )
                    },
                    mangle=killer.mangle,
                )
                waited = time.monotonic()
                while (
                    ingestor.health()[victim.name].state == "live"
                    and time.monotonic() - waited < 30.0
                ):
                    time.sleep(0.01)
        finally:
            threading.excepthook = default_hook
        stop.set()
        for thread in reader_threads:
            thread.join(timeout=5.0)

        health = ingestor.health()
        victim_row = health[victim.name]
        if victim_row.state != "quarantined":
            violations.append(
                f"kill drill: victim ended {victim_row.state!r}, expected quarantined"
            )

        # Recovery: a fresh "process" restores the snapshot and resumes
        # the killed stream from its committed watermark.
        engine2 = DigitalLibraryEngine(build_australian_open(seed=args.seed))
        service2 = LibrarySearchService(engine2)
        engine2.indexer.restore_snapshot(streamed_path)
        states = dict(engine2.indexer.stream_states)
        recovered_row = None
        if victim.name not in states:
            violations.append("recovery: snapshot lost the killed stream's resume state")
        else:
            ingestor2 = service2.ingestor(
                path=streamed_path, journal=journal, config=config
            )
            ingestor2.open_stream(victim, resume=True)
            start = int(states[victim.name]["watermark"])
            _feed_streams(
                ingestor2,
                {
                    victim.name: iter_chunks(
                        clip, args.chunk_frames, stream=victim.name,
                        start=start, clock=time.monotonic,
                    )
                },
            )
            if not ingestor2.drain():
                violations.append("recovery: resumed stream failed to drain")
            recovered_row = ingestor2.health()[victim.name]
            if recovered_row.state != "done":
                violations.append(
                    f"recovery: resumed stream ended {recovered_row.state!r} "
                    f"({recovered_row.last_error})"
                )

        # Invariants over the chaos streams.
        for name, row in health.items():
            if name == victim.name:
                continue
            if row.state != "done":
                violations.append(
                    f"stream {name}: ended {row.state!r} ({row.last_error})"
                )
            if (row.lag_sheds or row.shed_frames) and not row.degraded_freshness:
                violations.append(f"stream {name}: sheds without a degraded label")
            if row.lag_sheds:
                violations.append(
                    f"stream {name}: paced feed still shed {row.lag_sheds} chunk(s)"
                )
            p95 = row.freshness.get("p95")
            if p95 is not None and p95 > config.freshness_slo:
                violations.append(
                    f"stream {name}: p95 freshness {p95 * 1e3:.1f} ms over the "
                    f"{config.freshness_slo * 1e3:.0f} ms SLO"
                )
        if args.fault_mode == "duplicate" and chaos_plans:
            if not any(
                row.duplicates_dropped
                for name, row in health.items()
                if name != victim.name
            ):
                violations.append("duplicate faults injected but nothing deduped")
        if reader_errors:
            violations.append(
                f"readers: {len(reader_errors)} error(s), first: {reader_errors[0]}"
            )

        # The zero-lost/zero-duplicated-shots gate: after chaos + kill +
        # resume, the streamed snapshot must match the batch control
        # byte for byte.
        if streamed_path.read_bytes() != batch_path.read_bytes():
            violations.append(
                "identity: final streamed snapshot differs from the batch control"
            )

        print(
            f"soak: {len(chaos_plans)} chaos stream(s) [{args.fault_mode}], "
            f"kill drill on {victim.name} at {args.kill_point}, "
            f"{served[0]} queries by {len(reader_threads)} reader(s)"
        )
        for line in _stream_health_lines(health):
            print(line)
        if recovered_row is not None:
            for line in _stream_health_lines({victim.name: recovered_row}):
                print(f"  (recovered){line}")
        if not violations:
            print("identity: final snapshot byte-identical to the batch control")

    if violations:
        print(f"soak: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("soak: all invariants held")
    return 0


def _cmd_query_stats(args) -> int:
    from repro.dataset import build_australian_open
    from repro.library import DigitalLibraryEngine, LibrarySearchService, parse_query
    from repro.library.persistence import load_model
    from repro.library.service import format_query_stats

    if args.shards is not None:
        return _sharded_query_stats(args)
    if args.metaindex is None:
        print("query-stats: --metaindex is required without --shards")
        return 2

    dataset = build_australian_open(seed=args.seed)
    engine = DigitalLibraryEngine(dataset)
    restored = engine.indexer.restore(load_model(args.metaindex))
    print(f"restored {restored} indexed video(s)")
    service = LibrarySearchService(engine, cache_size=args.cache_size)

    queries = [parse_query(text) for text in args.queries]
    for text, query in zip(args.queries, queries):
        for _ in range(max(args.repeat, 1)):
            served = service.search(query)
        origin = "cache" if served.cache_hit else "engine"
        print(
            f"{text!r}: {len(served.results)} scene(s), "
            f"last served from {origin} in {served.seconds * 1e3:.2f} ms"
        )
    print()
    print(format_query_stats(service.stats()))
    return 0


def _sharded_query_stats(args) -> int:
    """``query-stats --shards N``: serve through shard workers, report."""
    from repro.dataset.build import build_australian_open
    from repro.library import parse_query
    from repro.library.sharding import (
        ShardedSearchService,
        ShardingConfig,
        format_sharded_stats,
    )

    dataset = build_australian_open(seed=args.seed)
    names = [plan.name for plan in dataset.video_plans[: args.videos]]
    config = ShardingConfig(n_shards=args.shards, replication=args.replicas)
    queries = [parse_query(text) for text in args.queries]
    chunked = getattr(args, "chunk_frames", None)
    initial = [] if chunked else names
    with ShardedSearchService(initial, seed=args.seed, config=config) as service:
        if chunked:
            result = service.stream_videos(names, chunk_frames=chunked)
            status = "ok" if result.ok else "PARTIAL"
            print(
                f"streamed {len(names)} video(s) in {chunked}-frame chunks: {status}"
            )
        for text, query in zip(args.queries, queries):
            for _ in range(max(args.repeat, 1)):
                served = service.search(query)
            origin = "cache" if served.cache_hit else "fan-out"
            print(
                f"{text!r}: {len(served.results)} scene(s), coverage "
                f"{served.coverage.label}, last served from {origin} "
                f"in {served.seconds * 1e3:.2f} ms"
            )
        print()
        print(format_sharded_stats(service.stats()))
    return 0


def _cmd_serve_bench(args) -> int:
    import time
    from concurrent.futures import ThreadPoolExecutor

    from repro.dataset import build_australian_open
    from repro.library import (
        DigitalLibraryEngine,
        LibraryQuery,
        LibrarySearchService,
        ResilienceConfig,
    )
    from repro.library.service import format_query_stats

    dataset = build_australian_open(seed=args.seed)
    engine = DigitalLibraryEngine(dataset)
    budget_ms = args.budget_ms
    if budget_ms is None and args.soak:
        budget_ms = 50.0
    resilience = None
    if budget_ms is not None:
        resilience = ResilienceConfig(
            max_concurrent=args.max_concurrent,
            max_queue=args.queue,
            queue_timeout=args.queue_timeout_ms / 1e3,
            budget_seconds=budget_ms / 1e3,
        )
    service = LibrarySearchService(
        engine, cache_size=args.cache_size, resilience=resilience
    )
    for plan in dataset.video_plans[: args.videos]:
        service.index_plan(plan)
    print(f"indexed {args.videos} video(s); generation {service.generation}")

    mix = [
        LibraryQuery(top_n=100),
        LibraryQuery(event="rally"),
        LibraryQuery(event="net_play", text="approach the net"),
        LibraryQuery(player={"gender": "female"}, event="service"),
        LibraryQuery(sequence=("service", "rally"), within=500),
        LibraryQuery(text="champion wins in straight sets"),
    ]

    if args.soak:
        return _run_soak(args, dataset, engine, service, mix, budget_ms)

    def run_pass(bypass_cache: bool) -> float:
        started = time.perf_counter()
        for query in mix:
            service.search(query, bypass_cache=bypass_cache)
        return (time.perf_counter() - started) / len(mix)

    cold = run_pass(bypass_cache=True)
    run_pass(bypass_cache=False)  # populate
    warm = run_pass(bypass_cache=False)
    speedup = cold / warm if warm > 0 else float("inf")
    print(
        f"cold latency {cold * 1e3:.3f} ms/query, "
        f"warm latency {warm * 1e3:.3f} ms/query, speedup {speedup:.1f}x"
    )

    def reader(reader_id: int) -> int:
        for step in range(args.requests):
            service.search(mix[(reader_id + step) % len(mix)])
        return args.requests

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=args.threads) as pool:
        served = sum(pool.map(reader, range(args.threads)))
    elapsed = time.perf_counter() - started
    print(
        f"{args.threads} reader(s) x {args.requests} request(s): "
        f"{served / elapsed:.0f} queries/s over {elapsed:.2f}s"
    )
    print()
    print(format_query_stats(service.stats()))
    return 0


def _query_mix():
    """The fixed serving mix every driver reuses."""
    from repro.library import LibraryQuery

    return [
        LibraryQuery(top_n=100),
        LibraryQuery(event="rally"),
        LibraryQuery(event="net_play", text="approach the net"),
        LibraryQuery(player={"gender": "female"}, event="service"),
        LibraryQuery(sequence=("service", "rally"), within=500),
        LibraryQuery(text="champion wins in straight sets"),
    ]


def _cmd_serve_sharded(args) -> int:
    import time

    from repro.dataset.build import build_australian_open
    from repro.faults import ShardFaultPlan, ShardFaultSpec
    from repro.library.sharding import (
        ShardedSearchService,
        ShardingConfig,
        format_sharded_stats,
    )

    dataset = build_australian_open(seed=args.seed)
    names = [plan.name for plan in dataset.video_plans[: args.videos]]
    config = ShardingConfig(
        n_shards=args.shards,
        replication=args.replicas,
        worker_threads=args.worker_threads,
        budget_seconds=args.budget_ms / 1e3,
        min_coverage=min(args.min_coverage, args.shards),
        quarantine_cooldown=0.3,
        probe_interval=0.1,
    )
    fault_plan = None
    if args.soak and args.fault_shard is not None:
        fault_plan = ShardFaultPlan(
            specs=(
                ShardFaultSpec(
                    shard=args.fault_shard,
                    mode=args.fault_mode,
                    after=args.fault_after,
                    delay_seconds=args.fault_ms / 1e3,
                    times=1 if args.fault_mode == "kill" else None,
                    replica=args.fault_replica,
                ),
            )
        )
        target = f"shard {args.fault_shard}"
        if args.fault_replica is not None:
            target += f" replica {args.fault_replica}"
        print(
            f"injecting {args.fault_mode!r} into {target} "
            f"after {args.fault_after} deliveries"
        )

    started = time.perf_counter()
    with ShardedSearchService(
        names, seed=args.seed, config=config, fault_plan=fault_plan
    ) as service:
        print(
            f"{args.shards} shard(s) x {args.replicas} replica(s) up in "
            f"{time.perf_counter() - started:.1f}s; "
            f"generation vector {list(service.generations)}"
        )
        if args.soak:
            return _run_sharded_soak(args, service)

        mix = _query_mix()
        for query in mix:
            service.search(query, bypass_cache=True)  # cold pass
        cold = time.perf_counter()
        for query in mix:
            service.search(query)
        print(f"cold pass done; warm pass {(time.perf_counter() - cold) * 1e3:.1f} ms")

        from concurrent.futures import ThreadPoolExecutor

        def client(client_id: int) -> int:
            for step in range(args.requests):
                service.search(mix[(client_id + step) % len(mix)])
            return args.requests

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.threads) as pool:
            served = sum(pool.map(client, range(args.threads)))
        elapsed = time.perf_counter() - started
        print(
            f"{args.threads} client(s) x {args.requests} request(s): "
            f"{served / elapsed:.0f} queries/s over {elapsed:.2f}s"
        )
        print()
        print(format_sharded_stats(service.stats()))
    return 0


def _run_sharded_soak(args, service) -> int:
    """Sharded chaos soak: concurrent clients while a shard misbehaves.

    Asserts the scatter-gather invariants for the whole run — every
    answer carries a full coverage label (k/N with k+missing == N), no
    unhandled exceptions, rejected answers are empty, partial answers
    only under injected faults, a bounded fan-out p99, and (with a
    recoverable fault) full coverage again by the end — and exits
    non-zero listing every violation.

    With ``--replicas >= 2`` and a replica-addressed fault
    (``--fault-replica``), the availability bar rises: a single-replica
    failure must cost *zero* coverage (any partial or rejected answer
    is a violation — the E18 guarantee), and every replica must be back
    in rotation (verified via per-replica health) before the harness
    exits.
    """
    import threading
    import time

    from repro.library.sharding import format_sharded_stats

    p99_bound_ms = args.p99_ms if args.p99_ms is not None else 2.0 * args.budget_ms
    single_replica_fault = (
        args.fault_shard is not None
        and getattr(args, "fault_replica", None) is not None
        and args.replicas >= 2
    )
    mix = _query_mix()
    deadline_t = time.monotonic() + args.seconds
    violations: list[str] = []
    latencies: list[list[float]] = [[] for _ in range(args.threads)]
    requests = [0] * args.threads
    last_coverage = [None] * args.threads

    def client(client_id: int) -> None:
        step = 0
        while time.monotonic() < deadline_t:
            query = mix[(client_id + step) % len(mix)]
            step += 1
            try:
                served = service.search(query, bypass_cache=(step % 3 == 0))
            except Exception as exc:
                violations.append(f"client {client_id}: unhandled {exc!r}")
                continue
            requests[client_id] += 1
            coverage = served.coverage
            if coverage is None or coverage.total != args.shards:
                violations.append(
                    f"client {client_id}: unlabeled partial result "
                    f"(coverage {coverage!r})"
                )
            elif sorted(coverage.responded + coverage.missing) != list(
                range(args.shards)
            ):
                violations.append(
                    f"client {client_id}: coverage does not partition the "
                    f"shards ({coverage!r})"
                )
            if served.rejected and served.results:
                violations.append(f"client {client_id}: rejected result with scenes")
            if not coverage.complete and args.fault_shard is None:
                violations.append(
                    f"client {client_id}: partial coverage {coverage.label} "
                    "with no fault injected"
                )
            if single_replica_fault and (not coverage.complete or served.rejected):
                violations.append(
                    f"client {client_id}: coverage loss ({served.status}, "
                    f"{coverage.label}) under a single-replica fault with "
                    f"{args.replicas} replicas"
                )
            last_coverage[client_id] = coverage
            if not served.rejected:
                latencies[client_id].append(served.seconds)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"soak-client-{i}", daemon=True)
        for i in range(args.threads)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=max(0.0, deadline_t - time.monotonic()) + 30.0)
    stuck = [thread.name for thread in threads if thread.is_alive()]
    if stuck:
        violations.append(f"stuck threads after deadline: {', '.join(stuck)}")
    elapsed = time.perf_counter() - started

    # Recovery: after the soak, a fresh fan-out must see every shard
    # (kill faults land once and the prober respawns; delay/error
    # faults quarantine, and half-open probes re-admit the shard).
    if args.fault_shard is not None and args.fault_mode in ("kill", "delay"):
        recovered = False
        recovery_deadline = time.monotonic() + 60.0
        while time.monotonic() < recovery_deadline:
            served = service.search(mix[0], bypass_cache=True)
            if served.coverage.complete:
                recovered = True
                break
            time.sleep(0.2)
        if not recovered:
            violations.append(
                f"shard {args.fault_shard} never recovered after the soak"
            )

    # Rejoin: with replication, every replica — including the killed
    # one — must be back in rotation, verified via per-replica health.
    if args.replicas >= 2 and args.fault_shard is not None:
        rejoined = False
        rejoin_deadline = time.monotonic() + 60.0
        while time.monotonic() < rejoin_deadline:
            rows = service.stats().shards
            if all(
                rep.alive and rep.in_rotation
                for row in rows
                for rep in row.replicas
            ):
                rejoined = True
                break
            time.sleep(0.2)
        if not rejoined:
            out = [
                f"{row.shard}.{rep.replica}"
                for row in service.stats().shards
                for rep in row.replicas
                if not (rep.alive and rep.in_rotation)
            ]
            violations.append(
                f"replica(s) never rejoined rotation after the soak: {out}"
            )
        if args.fault_mode == "kill" and service.stats().restarts < 1:
            violations.append("kill fault landed but no replica restart was recorded")

    merged = sorted(s for per_client in latencies for s in per_client)
    total = sum(requests)
    stats = service.stats()
    print(
        f"soak: {total} requests over {elapsed:.1f}s ({total / elapsed:.0f}/s), "
        f"{stats.full_served} full, {stats.partial_served} partial, "
        f"{stats.stale_served} stale, {stats.rejected} rejected, "
        f"{stats.hedges} hedges, {stats.failovers} failovers, "
        f"{stats.restarts} restarts"
    )
    if merged:
        rank = max(1, -(-len(merged) * 99 // 100))
        p99_ms = merged[rank - 1] * 1e3
        print(f"fan-out p99 {p99_ms:.1f} ms (bound {p99_bound_ms:.1f} ms)")
        if p99_ms > p99_bound_ms:
            violations.append(f"fan-out p99 {p99_ms:.1f} ms exceeds {p99_bound_ms:.1f} ms")
    print()
    print(format_sharded_stats(stats))
    if violations:
        print()
        print(f"{len(violations)} invariant violation(s):")
        for violation in violations[:20]:
            print(f"  {violation}")
        return 1
    print()
    print(
        "soak passed: every answer coverage-labeled, no unhandled exceptions, "
        "p99 within bound"
    )
    return 0


def _run_soak(args, dataset, engine, service, mix, budget_ms: float) -> int:
    """Chaos soak: mixed readers + a writer + injected stage latency.

    Asserts the serving invariants for the whole run — no stuck
    threads, no unlabeled stale or degraded results, bounded generation
    lag, empty rejected results, and a bounded served p99 — and exits
    non-zero listing every violation.
    """
    import threading
    import time

    from repro.faults import QueryFaultPlan
    from repro.library.service import format_query_stats

    p99_bound_ms = args.p99_ms if args.p99_ms is not None else 2.0 * budget_ms
    injector = None
    if args.fault_ms > 0:
        plan = QueryFaultPlan.latency(
            [args.fault_stage], args.fault_ms / 1e3, jitter=args.fault_ms / 4e3,
            seed=args.seed,
        )
        injector = plan.install(engine)
        print(
            f"injecting {args.fault_ms:.0f} ms latency into {args.fault_stage!r}"
        )

    deadline_t = time.monotonic() + args.seconds
    stop = threading.Event()
    violations: list[str] = []
    latencies: list[list[float]] = [[] for _ in range(args.threads)]
    requests = [0] * args.threads

    def reader(reader_id: int) -> None:
        step = 0
        while time.monotonic() < deadline_t:
            query = mix[(reader_id + step) % len(mix)]
            step += 1
            pre_gen = service.generation
            try:
                served = service.search(query)
            except Exception as exc:
                violations.append(f"reader {reader_id}: unexpected {exc!r}")
                continue
            requests[reader_id] += 1
            if served.generation < pre_gen - 1:
                violations.append(
                    f"reader {reader_id}: generation lag "
                    f"{served.generation} < {pre_gen} - 1"
                )
            if not served.rejected and not served.stale and served.generation < pre_gen:
                violations.append(
                    f"reader {reader_id}: unlabeled stale result "
                    f"(generation {served.generation} < {pre_gen})"
                )
            if served.degraded and not served.skipped_stages:
                violations.append(f"reader {reader_id}: degraded without skipped stages")
            if served.rejected and served.results:
                violations.append(f"reader {reader_id}: rejected result with scenes")
            if not served.rejected:
                latencies[reader_id].append(served.seconds)

    def writer() -> None:
        for plan in dataset.video_plans[args.videos:]:
            if time.monotonic() >= deadline_t or stop.is_set():
                return
            try:
                service.index_plan(plan)
            except Exception as exc:
                violations.append(f"writer: {exc!r}")
            stop.wait(0.2)
        while time.monotonic() < deadline_t and not stop.is_set():
            try:
                service.refresh_text_index()
            except Exception as exc:
                violations.append(f"writer: {exc!r}")
            stop.wait(0.25)

    threads = [
        threading.Thread(target=reader, args=(i,), name=f"soak-reader-{i}", daemon=True)
        for i in range(args.threads)
    ]
    threads.append(threading.Thread(target=writer, name="soak-writer", daemon=True))
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    join_slack = 5.0 + args.fault_ms / 1e3
    for thread in threads:
        thread.join(timeout=max(0.0, deadline_t - time.monotonic()) + join_slack)
    stop.set()
    stuck = [thread.name for thread in threads if thread.is_alive()]
    if stuck:
        violations.append(f"stuck threads after deadline: {', '.join(stuck)}")
    elapsed = time.perf_counter() - started
    if injector is not None:
        injector.uninstall()

    merged = sorted(s for per_reader in latencies for s in per_reader)
    total = sum(requests)
    stats = service.stats()
    print(
        f"soak: {total} requests over {elapsed:.1f}s "
        f"({total / elapsed:.0f}/s), {len(merged)} served, "
        f"{stats.shed_total} shed, {stats.stale_served} stale, "
        f"{stats.degraded_served} degraded"
    )
    if merged:
        rank = max(1, -(-len(merged) * 99 // 100))
        p99_ms = merged[rank - 1] * 1e3
        print(f"served p99 {p99_ms:.1f} ms (bound {p99_bound_ms:.1f} ms)")
        if p99_ms > p99_bound_ms:
            violations.append(f"served p99 {p99_ms:.1f} ms exceeds {p99_bound_ms:.1f} ms")
    print()
    print(format_query_stats(stats))
    if violations:
        print()
        print(f"{len(violations)} invariant violation(s):")
        for violation in violations[:20]:
            print(f"  {violation}")
        return 1
    print()
    print("soak passed: no stuck threads, no unlabeled results, p99 within bound")
    return 0


def _index_with_policy(args, make_fault_plan=None) -> int:
    """Shared driver of ``health`` and ``faults``: index and report."""
    from repro.dataset import build_australian_open
    from repro.grammar.runtime import format_health_table
    from repro.grammar.tennis import build_tennis_fde
    from repro.library import DigitalLibraryEngine

    dataset = build_australian_open(seed=args.seed)
    fde = build_tennis_fde(policy=_policy_from_args(args))
    engine = DigitalLibraryEngine(dataset, fde=fde)
    plans = dataset.video_plans[: args.videos]
    fault_plan = (
        make_fault_plan([plan.name for plan in plans]) if make_fault_plan else None
    )
    injector = fault_plan.install(fde.registry) if fault_plan is not None else None

    rolled_back = 0
    for plan in plans:
        try:
            engine.indexer.index_plan(plan)
        except Exception as exc:  # fail_fast rollback: the batch goes on
            rolled_back += 1
            print(f"{plan.name}: rolled back — {exc}")
    if injector is not None:
        print(f"injected {injector.injected} fault(s) from {len(fault_plan.specs)} spec(s)")

    reports = engine.indexing_health()
    print(format_health_table(reports))
    if rolled_back:
        print(f"rolled back: {rolled_back} video(s)")
    quarantined = fde.runner.quarantined_detectors
    if quarantined:
        print(f"quarantined detectors: {', '.join(quarantined)}")
    counts = engine.indexer.model.counts()
    print(
        f"meta-index: {counts['raw']} videos, {counts['feature']} shots, "
        f"{counts['object']} objects, {counts['event']} events"
    )
    return 0


def _cmd_health(args) -> int:
    if args.shards is not None:
        return _sharded_health(args)
    return _index_with_policy(args)


def _sharded_health(args) -> int:
    """``health --shards N``: probe the shard fleet and print its table."""
    from repro.dataset.build import build_australian_open
    from repro.library.sharding import (
        ShardedSearchService,
        ShardingConfig,
        format_sharded_stats,
    )

    dataset = build_australian_open(seed=args.seed)
    names = [plan.name for plan in dataset.video_plans[: args.videos]]
    config = ShardingConfig(n_shards=args.shards, replication=args.replicas)
    chunked = getattr(args, "chunk_frames", None)
    initial = [] if chunked else names
    with ShardedSearchService(initial, seed=args.seed, config=config) as service:
        if chunked:
            result = service.stream_videos(names, chunk_frames=chunked)
            status = "ok" if result.ok else "PARTIAL"
            print(
                f"streamed {len(names)} video(s) in {chunked}-frame chunks: {status}"
            )
        for query in _query_mix():
            service.search(query)
        stats = service.stats()
        print(format_sharded_stats(stats))
        sick = [
            row.shard
            for row in stats.shards
            if not row.alive or row.breaker_state != "closed"
        ]
        sick_replicas = [
            f"{row.shard}.{rep.replica}"
            for row in stats.shards
            for rep in row.replicas
            if not (rep.alive and rep.in_rotation)
        ]
        if sick or sick_replicas:
            if sick:
                print(f"unhealthy shard(s): {sick}")
            if sick_replicas:
                print(f"out-of-rotation replica(s): {sick_replicas}")
            return 1
        print("all shards healthy")
    return 0


def _profile_e6(args, out_dir) -> list:
    """Profile packed top-N retrieval on the replicated tournament corpus."""
    import time

    from repro.dataset import build_australian_open
    from repro.ir.inverted_index import InvertedIndex
    from repro.ir.reference import ReferenceFragmentedIndex, replicate_collection
    from repro.ir.topn import FragmentedIndex
    from repro.profiling import SamplingProfiler, profile_call, write_artifacts

    queries = [
        "net volley approach",
        "long rallies baseline",
        "serve percentage first",
        "Australian Open champion dream",
        "crowd Melbourne press conference",
    ]
    dataset = build_australian_open(seed=args.seed, video_shots=6)
    pages = replicate_collection(dataset.pages, args.copies)
    index = InvertedIndex(pages)
    packed = FragmentedIndex(index, n_fragments=4)
    reference = ReferenceFragmentedIndex(index, n_fragments=4)
    terms = [pages.query_terms(q) for q in queries]
    print(
        f"e6 corpus: {len(pages)} documents ({args.copies}x replicated), "
        f"{len(index.vocabulary)} terms"
    )

    def run_packed(rounds: int = 20):
        for _ in range(rounds):
            for q in terms:
                packed.search(q, 10)

    def run_reference(rounds: int = 20):
        for _ in range(rounds):
            for q in terms:
                reference.search(q, 10)

    run_packed(rounds=1)  # warm the weight caches
    started = time.perf_counter()
    run_reference()
    ref_seconds = time.perf_counter() - started

    sampler = SamplingProfiler(interval=args.interval_ms / 1e3)
    with sampler:
        started = time.perf_counter()
        run_packed()
        packed_seconds = time.perf_counter() - started
    _, report = profile_call(run_packed, 5)

    speedup = ref_seconds / packed_seconds if packed_seconds > 0 else float("inf")
    print(
        f"e6 top-N: reference {ref_seconds * 1e3:.0f}ms, packed "
        f"{packed_seconds * 1e3:.0f}ms -> {speedup:.1f}x "
        f"({sampler.samples} stack samples)"
    )
    return write_artifacts(
        out_dir,
        sampler.folded(),
        report,
        name="e6-packed-topn",
        meta={
            "documents": len(pages),
            "copies": args.copies,
            "reference_seconds": ref_seconds,
            "packed_seconds": packed_seconds,
            "speedup": speedup,
        },
    )


def _profile_e9(args, out_dir) -> list:
    """Profile the tennis FDE pipeline on the reference broadcast."""
    from repro.grammar.tennis import build_tennis_fde
    from repro.profiling import SamplingProfiler, profile_call, write_artifacts
    from repro.video.generator import BroadcastConfig, BroadcastGenerator

    generator = BroadcastGenerator(BroadcastConfig(gradual_fraction=0.25), seed=1001)
    clip, _truth = generator.generate(args.shots, name="profile_broadcast")
    build_tennis_fde().index_video(clip)  # warm imports and caches

    sampler = SamplingProfiler(interval=args.interval_ms / 1e3)
    with sampler:
        _, report = profile_call(lambda: build_tennis_fde().index_video(clip))

    fps = len(clip) / report.seconds if report.seconds > 0 else float("inf")
    print(
        f"e9 pipeline: {len(clip)} frames in {report.seconds * 1e3:.0f}ms "
        f"({fps:.0f} frames/s, {sampler.samples} stack samples)"
    )
    return write_artifacts(
        out_dir,
        sampler.folded(),
        report,
        name="e9-fde-pipeline",
        meta={
            "frames": len(clip),
            "shots": args.shots,
            "seconds": report.seconds,
            "fps": fps,
        },
    )


def _cmd_profile(args) -> int:
    paths = []
    if args.target in ("e6", "all"):
        paths += _profile_e6(args, args.out)
    if args.target in ("e9", "all"):
        paths += _profile_e9(args, args.out)
    for path in paths:
        print(f"wrote {path}")
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import FaultPlan
    from repro.grammar.runtime import (
        DetectorTimeoutError,
        PermanentDetectorError,
        TransientDetectorError,
    )

    error = {
        "transient": TransientDetectorError,
        "permanent": PermanentDetectorError,
        "timeout": DetectorTimeoutError,
    }[args.error]

    def make_fault_plan(names: list[str]) -> FaultPlan:
        return FaultPlan.random(
            detectors=["segment", "tennis", "shape", "rules"],
            videos=names,
            rate=args.rate,
            seed=args.fault_seed,
            error=error,
            times=args.times if args.times > 0 else None,
        )

    return _index_with_policy(args, make_fault_plan=make_fault_plan)


_COMMANDS = {
    "figure1": _cmd_figure1,
    "index": _cmd_index,
    "query": _cmd_query,
    "ann-build": _cmd_ann_build,
    "search": _cmd_search,
    "demo": _cmd_demo,
    "export-mpeg7": _cmd_export_mpeg7,
    "build-site": _cmd_build_site,
    "stats": _cmd_stats,
    "query-stats": _cmd_query_stats,
    "serve-bench": _cmd_serve_bench,
    "serve-sharded": _cmd_serve_sharded,
    "fsck": _cmd_fsck,
    "stream": _cmd_stream,
    "health": _cmd_health,
    "faults": _cmd_faults,
    "profile": _cmd_profile,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
